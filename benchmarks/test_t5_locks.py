"""T5 — lock and synchronisation verification across models: the
verdicts and the cost of obtaining them."""

import pytest

from repro.bench.harness import run_hmc
from repro.bench.workloads import (
    barrier,
    dekker,
    peterson,
    seqlock,
    ticket_lock,
    ttas_lock,
)
from repro.events import MemOrder

SAFE = {
    ("ticket-rlx", "sc"): True,
    ("ticket-rlx", "tso"): True,
    ("ticket-rlx", "imm"): False,
    ("ticket-acqrel", "imm"): True,
    ("peterson", "sc"): True,
    ("peterson", "tso"): False,
    ("peterson-fenced", "tso"): True,
    ("dekker", "tso"): False,
    ("dekker-fenced", "tso"): True,
    ("seqlock", "rc11"): True,
    ("seqlock", "power"): False,
    ("barrier", "ra"): True,
}

PROGRAMS = {
    "ticket-rlx": ticket_lock(2),
    "ticket-acqrel": ticket_lock(2, MemOrder.ACQ_REL),
    "ttas-rlx": ttas_lock(2),
    "peterson": peterson(False),
    "peterson-fenced": peterson(True),
    "dekker": dekker(False),
    "dekker-fenced": dekker(True),
    "seqlock": seqlock(1, 1),
    "barrier": barrier(2),
}

CASES = sorted(SAFE)


@pytest.mark.parametrize("name,model", CASES, ids=[f"{n}-{m}" for n, m in CASES])
def test_t5_verdicts(benchmark, name, model, record_rows):
    row = benchmark.pedantic(
        run_hmc, args=(PROGRAMS[name], model), rounds=1, iterations=1
    )
    record_rows(f"T5 {name} {model}", [row])
    assert (row.errors == 0) == SAFE[(name, model)], (name, model)


def test_t5_ticket_lock_scaling(benchmark, record_rows):
    row = benchmark.pedantic(
        run_hmc, args=(ticket_lock(3), "sc"), rounds=1, iterations=1
    )
    record_rows("T5 ticket(3) sc", [row])
    assert row.errors == 0
