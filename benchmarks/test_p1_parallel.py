"""P1 — serial vs parallel subtree sharding.

The correctness half of the parallel engine's claim is asserted
(identical execution counts); the timing half is recorded, not
asserted, because the speedup is hardware-dependent — on a single-CPU
host the pool is pure overhead and the ratio is honestly < 1 (see
docs/PARALLEL.md and EXPERIMENTS.md §P1).
"""

import pytest

from repro.bench.harness import serial_vs_parallel
from repro.bench.workloads import ainc, sb_n


@pytest.mark.parametrize(
    "name,program,model",
    [
        ("sb(4)", sb_n(4), "tso"),
        ("sb(5)", sb_n(5), "sc"),
        ("ainc(4)", ainc(4), "sc"),
    ],
)
def test_p1_serial_vs_parallel(benchmark, name, program, model, record_rows):
    rows = benchmark.pedantic(
        serial_vs_parallel,
        args=(program, model, 4),
        rounds=1,
        iterations=1,
    )
    serial, parallel = rows
    record_rows(f"P1 {name}", rows)
    assert parallel.executions == serial.executions
    assert parallel.errors == serial.errors
    assert "speedup" in parallel.extra
