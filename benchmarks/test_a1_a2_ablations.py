"""A1/A2 — ablations of the algorithm's ingredients.

A1: backward revisits off => incompleteness (measured as lost
executions); maximality check off => wasted revisit construction.
A2: incremental consistency checking off => identical counts, with
the filtering deferred to completion (more explored dead graphs).
"""

import pytest

from repro.bench.harness import run_hmc
from repro.bench.workloads import ainc, casrot, peterson, sb_n


@pytest.mark.parametrize("name,program", [("sb(3)", sb_n(3)), ("ainc(3)", ainc(3))])
def test_a1_revisits_off(benchmark, name, program, record_rows):
    full = run_hmc(program, "tso")
    crippled = benchmark.pedantic(
        run_hmc,
        args=(program, "tso"),
        kwargs={"tool_name": "no-revisits", "backward_revisits": False},
        rounds=1,
        iterations=1,
    )
    record_rows(f"A1 {name}", [full, crippled])
    assert crippled.executions < full.executions


def test_a1_revisits_off_misses_bugs(record_rows):
    program = peterson(False)
    full = run_hmc(program, "tso")
    crippled = run_hmc(
        program, "tso", tool_name="no-revisits", backward_revisits=False
    )
    record_rows("A1 peterson", [full, crippled])
    assert full.errors > crippled.errors


@pytest.mark.parametrize(
    "name,program", [("sb(3)", sb_n(3)), ("casrot(3)", casrot(3))]
)
def test_a1_maximality_off(benchmark, name, program, record_rows):
    strict = run_hmc(program, "imm")
    loose = benchmark.pedantic(
        run_hmc,
        args=(program, "imm"),
        kwargs={"tool_name": "no-maximality", "maximality_check": False},
        rounds=1,
        iterations=1,
    )
    record_rows(f"A1-max {name}", [strict, loose])
    assert loose.executions == strict.executions


@pytest.mark.parametrize(
    "name,program", [("ainc(3)", ainc(3)), ("casrot(3)", casrot(3))]
)
def test_a2_incremental_off(benchmark, name, program, record_rows):
    incremental = run_hmc(program, "imm")
    deferred = benchmark.pedantic(
        run_hmc,
        args=(program, "imm"),
        kwargs={"tool_name": "no-incremental", "incremental_checks": False},
        rounds=1,
        iterations=1,
    )
    record_rows(f"A2 {name}", [incremental, deferred])
    assert deferred.executions == incremental.executions
    # deferring the model check surfaces as extra blocked/abandoned work
    assert deferred.blocked >= incremental.blocked
