"""T2 — HMC vs herd-style axiomatic brute force.

Both enumerate the same set of consistent execution graphs (asserted);
the brute force pays for every *candidate* (rf x co x resolution),
HMC only for graphs it actually constructs.  The rows report both
counts so the table shows the candidate blowup.
"""

import pytest

from repro.bench.harness import run_brute_force, run_hmc
from repro.litmus import get_litmus

CASES = ["SB", "MP", "LB", "IRIW", "2+2W", "2xFAI"]


@pytest.mark.parametrize("name", CASES)
def test_t2_hmc(benchmark, name, record_rows):
    program = get_litmus(name).program
    row = benchmark(run_hmc, program, "imm")
    record_rows(f"T2 hmc {name}", [row])


@pytest.mark.parametrize("name", CASES)
def test_t2_bruteforce(benchmark, name, record_rows):
    program = get_litmus(name).program
    row = benchmark(run_brute_force, program, "imm")
    record_rows(f"T2 brute-force {name}", [row])


def test_t2_counts_agree(record_rows):
    for name in CASES:
        program = get_litmus(name).program
        hmc = run_hmc(program, "imm")
        bf = run_brute_force(program, "imm")
        record_rows(f"T2 {name}", [hmc, bf])
        assert hmc.executions == bf.executions, name
        # the brute force had to sift through far more candidates
        assert bf.extra["candidates"] >= hmc.executions
