"""I1 — incremental consistency checking vs from-scratch.

The claim: carrying derived-relation caches and topological-order
certificates across graph copies cuts the consistency-check phase
(the sum of ``check:*`` and ``relation:*`` phase self-times) by >= 2x
on the benchmark corpus, while producing byte-identical results —
same execution/blocked/duplicate counts and same outcome multiset.

The corpus spans all five axiomatic model families the speedup must
hold for (rc11, tso, sc, ra, imm); the aggregate is dominated by the
larger workloads, where lineages are deep and the incremental path
pays off most.  ``REPRO_INCREMENTAL=0`` is read per run by the
explorer, so flipping the environment variable is the whole ablation.
"""

import os

import pytest

from repro import verify
from repro.bench.workloads import ainc, barrier, fib_bench, seqlock, ticket_lock
from repro.obs import Observer
from repro.obs.metrics import MetricsRegistry

CORPUS = [
    ("seqlock(2,2)/rc11", seqlock(2, 2), "rc11"),
    ("fib(3)/tso", fib_bench(3), "tso"),
    ("ticket(3)/sc", ticket_lock(3), "sc"),
    ("barrier(3)/ra", barrier(3), "ra"),
    ("ainc(4)/imm", ainc(4), "imm"),
]

#: The acceptance threshold for the corpus aggregate; individual
#: workloads may sit below it (imm's axiom work is dominated by
#: non-acyclicity obligations on small graphs).
AGGREGATE_SPEEDUP = 2.0


def _run(program, model, incremental):
    previous = os.environ.get("REPRO_INCREMENTAL")
    os.environ["REPRO_INCREMENTAL"] = "1" if incremental else "0"
    try:
        observer = Observer(metrics=MetricsRegistry())
        result = verify(program, model, observer=observer)
    finally:
        if previous is None:
            del os.environ["REPRO_INCREMENTAL"]
        else:
            os.environ["REPRO_INCREMENTAL"] = previous
    check_time = sum(
        stats["self"]
        for name, stats in result.phase_times.items()
        if name.startswith("check:") or name.startswith("relation:")
    )
    identity = (
        result.executions,
        result.blocked,
        result.duplicates,
        tuple(sorted(result.outcomes.items())),
    )
    return check_time, identity


def test_i1_incremental_speedup(record_rows):
    rows = []
    total_incremental = 0.0
    total_scratch = 0.0
    for name, program, model in CORPUS:
        inc_time, inc_identity = _run(program, model, incremental=True)
        scratch_time, scratch_identity = _run(program, model, incremental=False)
        assert inc_identity == scratch_identity, name
        total_incremental += inc_time
        total_scratch += scratch_time
        rows.append(
            f"{name:20s} inc={1000 * inc_time:8.1f}ms "
            f"scratch={1000 * scratch_time:8.1f}ms "
            f"ratio={scratch_time / inc_time:4.2f}x"
        )
    ratio = total_scratch / total_incremental
    rows.append(f"{'aggregate':20s} ratio={ratio:4.2f}x")
    record_rows("I1 incremental consistency checking", rows)
    assert ratio >= AGGREGATE_SPEEDUP, rows


@pytest.mark.parametrize("name,program,model", CORPUS, ids=[c[0] for c in CORPUS])
def test_i1_identical_results(name, program, model):
    """Pure correctness leg: the two modes agree on every count."""
    _, inc_identity = _run(program, model, incremental=True)
    _, scratch_identity = _run(program, model, incremental=False)
    assert inc_identity == scratch_identity
