"""T1 — model validation: litmus verdicts across all nine models.

The quantity benchmarked is the full-matrix checking time (243 cells);
the regenerated table itself is the verdict matrix, asserted against
the literature as part of the run.
"""

from repro.litmus import MODELS, all_litmus_tests, allowed, run_litmus


def run_matrix():
    mismatches = 0
    cells = 0
    for test in all_litmus_tests():
        for model in MODELS:
            verdict = run_litmus(test, model)
            cells += 1
            if verdict.observed != allowed(test.name, model):
                mismatches += 1
    return cells, mismatches


def test_t1_full_matrix(benchmark):
    cells, mismatches = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    assert cells == len(all_litmus_tests()) * len(MODELS)
    assert mismatches == 0


def test_t1_single_model_tso(benchmark):
    def tso_column():
        return [run_litmus(t, "tso").observed for t in all_litmus_tests()]

    observed = benchmark(tso_column)
    assert len(observed) == len(all_litmus_tests())
