"""T6 — lock-free data structures across models: verdicts and cost
(the extension suite beyond the paper's synthetic benchmarks)."""

import pytest

from repro.bench.datastructures import (
    mp_queue,
    rw_lock,
    treiber_stack,
    xchg_spinlock,
)
from repro.bench.harness import run_hmc
from repro.events import MemOrder

SAFE = {
    ("treiber", "imm"): True,
    ("treiber-rlx", "imm"): False,
    ("mpq", "rc11"): True,
    ("mpq-rlx", "power"): False,
    ("xchg-lock", "imm"): True,
    ("xchg-lock-rlx", "imm"): False,
    ("rwlock", "armv8"): True,
    ("rwlock", "imm"): False,
}

PROGRAMS = {
    "treiber": treiber_stack(2, 1),
    "treiber-rlx": treiber_stack(2, 1, MemOrder.RLX),
    "mpq": mp_queue(1, 1),
    "mpq-rlx": mp_queue(1, 1, order=MemOrder.RLX),
    "xchg-lock": xchg_spinlock(2),
    "xchg-lock-rlx": xchg_spinlock(2, MemOrder.RLX),
    "rwlock": rw_lock(1, 1),
}

CASES = sorted(SAFE)


@pytest.mark.parametrize("name,model", CASES, ids=[f"{n}-{m}" for n, m in CASES])
def test_t6_verdicts(benchmark, name, model, record_rows):
    row = benchmark.pedantic(
        run_hmc, args=(PROGRAMS[name], model), rounds=1, iterations=1
    )
    record_rows(f"T6 {name} {model}", [row])
    assert (row.errors == 0) == SAFE[(name, model)], (name, model)
