"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each file regenerates one table/figure from DESIGN.md §5 and records
the measured rows via the ``rows`` fixture (printed at the end of the
session so EXPERIMENTS.md can be refreshed from the output).
"""

import pytest

_COLLECTED: list[str] = []


@pytest.fixture
def record_rows():
    """Collect formatted table rows for the end-of-session dump."""

    def _record(title, rows):
        _COLLECTED.append(f"\n== {title} ==")
        for row in rows:
            _COLLECTED.append(row.format() if hasattr(row, "format") else str(row))
        return rows

    return _record


def pytest_sessionfinish(session, exitstatus):
    if _COLLECTED:
        print("\n" + "\n".join(_COLLECTED))
