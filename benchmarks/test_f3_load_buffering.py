"""F3 — load-buffering capability: the executions only HMC-style
dependency prefixes can construct.

The figure: for LB rings of size n, the porf-acyclic models top out at
2^n - 1 executions; the hardware models reach 2^n, and the extra
execution disappears when backward revisits are disabled.
"""

import pytest

from repro import ProgramBuilder
from repro.bench.harness import run_hmc

def lb_ring(n: int):
    p = ProgramBuilder(f"lb-ring({n})")
    regs = []
    for i in range(n):
        t = p.thread()
        regs.append(t.load(f"x{i}"))
        t.store(f"x{(i + 1) % n}", 1)
    p.observe(*regs)
    return p.build()


@pytest.mark.parametrize("n", [2, 3])
@pytest.mark.parametrize("model", ["rc11", "imm", "armv8", "power"])
def test_f3_ring(benchmark, n, model, record_rows):
    row = benchmark.pedantic(
        run_hmc, args=(lb_ring(n), model), rounds=1, iterations=1
    )
    record_rows(f"F3 lb-ring({n}) {model}", [row])
    if model == "rc11":
        assert row.executions == 2**n - 1
    else:
        assert row.executions == 2**n


@pytest.mark.parametrize("n", [2, 3])
def test_f3_needs_revisits(benchmark, n, record_rows):
    def crippled():
        return run_hmc(
            lb_ring(n), "imm", tool_name="no-revisits", backward_revisits=False
        )

    row = benchmark.pedantic(crippled, rounds=1, iterations=1)
    record_rows(f"F3 lb-ring({n}) no-revisits", [row])
    assert row.executions < 2**n
