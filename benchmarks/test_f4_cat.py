"""F4 — interpretation overhead of declarative .cat models.

The shipped .cat twins are extensionally equal to the hand-coded
models (tests/test_cat_differential.py), so any wall-clock difference
between a pair of rows here is pure DSL-evaluator overhead: the cat
path re-derives its relations through the expression tree on every
consistency check instead of running fused Python.
"""

from pathlib import Path

import pytest

import repro.models
from repro.bench.harness import run_hmc
from repro.bench.workloads import sb_n
from repro.litmus import get_litmus
from repro.models import load_cat

CAT_DIR = Path(repro.models.__file__).parent / "cat"
MODELS = ["sc", "tso", "ra", "coherence"]
PROGRAMS = {
    "sb(3)": sb_n(3),
    "MP": get_litmus("MP").program,
    "IRIW": get_litmus("IRIW").program,
}


def cat_model(name):
    return load_cat(str(CAT_DIR / f"{name}.cat"))


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("name", list(PROGRAMS))
def test_f4_handcoded(benchmark, name, model, record_rows):
    row = benchmark.pedantic(
        run_hmc, args=(PROGRAMS[name], model), rounds=1, iterations=1
    )
    record_rows(f"F4 {name} {model} (hand-coded)", [row])


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("name", list(PROGRAMS))
def test_f4_cat(benchmark, name, model, record_rows):
    row = benchmark.pedantic(
        run_hmc,
        args=(PROGRAMS[name], cat_model(model)),
        kwargs={"tool_name": "hmc-cat"},
        rounds=1,
        iterations=1,
    )
    record_rows(f"F4 {name} {model} (.cat)", [row])


def test_f4_counts_identical(record_rows):
    """The overhead comparison is only honest if both sides explore
    the same space; pin that here too."""
    for name, program in PROGRAMS.items():
        for model in MODELS:
            hand = run_hmc(program, model)
            cat = run_hmc(program, cat_model(model), tool_name="hmc-cat")
            assert (hand.executions, hand.blocked) == (
                cat.executions,
                cat.blocked,
            ), (name, model)
