"""F1 — scaling with the parameter N: executions and time for HMC vs
the trace-based baselines.

The figure's shape: HMC's curve follows the number of consistent
executions; the interleaving and store-buffer curves grow by an extra
factorial/exponential factor in N.
"""

import pytest

from repro.bench.harness import run_hmc, run_interleaving, run_store_buffer
from repro.bench.workloads import ainc, sb_n

NS = [2, 3, 4]


@pytest.mark.parametrize("n", NS)
def test_f1_sb_hmc(benchmark, n, record_rows):
    row = benchmark.pedantic(run_hmc, args=(sb_n(n), "tso"), rounds=1, iterations=1)
    record_rows(f"F1 sb({n}) hmc/tso", [row])
    assert row.executions == 2**n


@pytest.mark.parametrize("n", NS)
def test_f1_sb_interleaving(benchmark, n, record_rows):
    row = benchmark.pedantic(
        run_interleaving, args=(sb_n(n),), rounds=1, iterations=1
    )
    record_rows(f"F1 sb({n}) interleaving", [row])


@pytest.mark.parametrize("n", [2, 3])
def test_f1_sb_store_buffer(benchmark, n, record_rows):
    row = benchmark.pedantic(
        run_store_buffer, args=(sb_n(n), "tso"), rounds=1, iterations=1
    )
    record_rows(f"F1 sb({n}) store-buffer", [row])


@pytest.mark.parametrize("n", [2, 3])
def test_f1_ainc_hmc(benchmark, n, record_rows):
    row = benchmark.pedantic(run_hmc, args=(ainc(n), "imm"), rounds=1, iterations=1)
    record_rows(f"F1 ainc({n}) hmc/imm", [row])


def test_f1_series_shape(record_rows):
    """The gap (traces / executions) must widen with n."""
    gaps = []
    for n in (2, 3):
        hmc = run_hmc(sb_n(n), "sc")
        il = run_interleaving(sb_n(n))
        record_rows(f"F1 shape sb({n})", [hmc, il])
        gaps.append(il.extra["traces"] / hmc.executions)
    assert gaps[1] > gaps[0]
