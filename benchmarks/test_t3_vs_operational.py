"""T3 — HMC vs the operational baselines (interleavings, DPOR,
store-buffer machines) on the workloads the paper's comparison uses.

The shape to reproduce: trace-based tools explore a superset of
states that grows much faster with the thread count; the store-buffer
machine is the worst (it also schedules buffer flushes).
"""

import pytest

from repro.bench.harness import (
    run_dpor,
    run_hmc,
    run_interleaving,
    run_store_buffer,
)
from repro.bench.workloads import ainc, readers, sb_n

PROGRAMS = {
    "sb(2)": sb_n(2),
    "sb(3)": sb_n(3),
    "ainc(2)": ainc(2),
    "readers(2)": readers(2),
}


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_t3_hmc_sc(benchmark, name, record_rows):
    row = benchmark(run_hmc, PROGRAMS[name], "sc")
    record_rows(f"T3 {name} hmc/sc", [row])


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_t3_interleaving(benchmark, name, record_rows):
    row = benchmark(run_interleaving, PROGRAMS[name])
    record_rows(f"T3 {name} interleaving", [row])


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_t3_dpor(benchmark, name, record_rows):
    row = benchmark(run_dpor, PROGRAMS[name])
    record_rows(f"T3 {name} dpor", [row])


@pytest.mark.parametrize("name", ["sb(2)", "sb(3)"])
def test_t3_store_buffer_tso(benchmark, name, record_rows):
    row = benchmark(run_store_buffer, PROGRAMS[name], "tso")
    record_rows(f"T3 {name} store-buffer", [row])


def test_t3_shape_holds(record_rows):
    """The crossover the table documents: graphs < dpor-traces <=
    interleavings < buffer-machine states."""
    program = PROGRAMS["sb(3)"]
    hmc = run_hmc(program, "sc")
    dpor = run_dpor(program)
    il = run_interleaving(program)
    sb = run_store_buffer(program, "tso")
    record_rows("T3 shape sb(3)", [hmc, dpor, il, sb])
    assert hmc.executions <= dpor.extra["traces"] <= il.extra["traces"]
    assert il.extra["traces"] < sb.extra["traces"]
