"""F2 — the same programs across progressively weaker models.

The figure's shape: execution counts grow monotonically along
sc -> tso -> pso -> hardware for the buffering family, and every
model's count sits between SC's and coherence-only's.
"""

import pytest

from repro.bench.harness import run_hmc
from repro.bench.workloads import casrot, sb_n
from repro.litmus import get_litmus

MODELS = ["sc", "tso", "pso", "ra", "rc11", "imm", "armv8", "power", "coherence"]
PROGRAMS = {
    "sb(3)": sb_n(3),
    "casrot(3)": casrot(3),
    "LB": get_litmus("LB").program,
    "MP": get_litmus("MP").program,
}


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("name", list(PROGRAMS))
def test_f2(benchmark, name, model, record_rows):
    row = benchmark.pedantic(
        run_hmc, args=(PROGRAMS[name], model), rounds=1, iterations=1
    )
    record_rows(f"F2 {name} {model}", [row])


def test_f2_bounds(record_rows):
    for name, program in PROGRAMS.items():
        sc = run_hmc(program, "sc").executions
        weakest = run_hmc(program, "coherence").executions
        for model in MODELS:
            count = run_hmc(program, model).executions
            assert sc <= count <= weakest, (name, model)


def test_f2_buffering_chain(record_rows):
    """sc <= tso <= pso on the store-buffering family."""
    program = PROGRAMS["sb(3)"]
    counts = [run_hmc(program, m).executions for m in ("sc", "tso", "pso")]
    assert counts == sorted(counts)
