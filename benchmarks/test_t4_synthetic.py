"""T4 — the synthetic suite (ainc, ninc, casrot, fib, lastzero,
indexer, readers) under TSO and IMM: executions, blocked, time."""

import pytest

from repro.bench.harness import run_hmc
from repro.bench.workloads import (
    ainc,
    casrot,
    fib_bench,
    indexer,
    lastzero,
    ninc,
    readers,
)

PROGRAMS = {
    "ainc(3)": ainc(3),
    "ninc(3)": ninc(3),
    "casrot(3)": casrot(3),
    "fib(2)": fib_bench(2),
    "lastzero(2)": lastzero(2),
    "indexer(2)": indexer(2),
    "readers(3)": readers(3),
}


@pytest.mark.parametrize("model", ["tso", "imm"])
@pytest.mark.parametrize("name", list(PROGRAMS))
def test_t4(benchmark, name, model, record_rows):
    row = benchmark.pedantic(
        run_hmc, args=(PROGRAMS[name], model), rounds=1, iterations=1
    )
    record_rows(f"T4 {name} {model}", [row])
    assert row.executions > 0


def test_t4_weaker_model_superset(record_rows):
    """IMM admits at least as many executions as TSO on every entry."""
    for name, program in PROGRAMS.items():
        tso = run_hmc(program, "tso")
        imm = run_hmc(program, "imm")
        record_rows(f"T4 {name}", [tso, imm])
        assert imm.executions >= tso.executions, name
