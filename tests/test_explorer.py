"""Unit and behavioural tests for the HMC explorer."""

import pytest

from repro import ExplorationOptions, Explorer, count_executions, verify
from repro.lang import ProgramBuilder


def sb():
    p = ProgramBuilder("SB")
    t1 = p.thread(); t1.store("x", 1); a = t1.load("y")
    t2 = p.thread(); t2.store("y", 1); b = t2.load("x")
    p.observe(a, b)
    return p.build()


def lb():
    p = ProgramBuilder("LB")
    t1 = p.thread(); a = t1.load("x"); t1.store("y", 1)
    t2 = p.thread(); b = t2.load("y"); t2.store("x", 1)
    p.observe(a, b)
    return p.build()


class TestCounts:
    def test_sb_counts_per_model(self):
        assert count_executions(sb(), "sc") == 3
        for model in ("tso", "pso", "ra", "rc11", "imm", "armv8", "power"):
            assert count_executions(sb(), model) == 4, model

    def test_lb_counts_per_model(self):
        for model in ("sc", "tso", "rc11"):
            assert count_executions(lb(), model) == 3, model
        for model in ("imm", "armv8", "power", "coherence"):
            assert count_executions(lb(), model) == 4, model

    def test_single_thread_single_execution(self):
        p = ProgramBuilder("seq")
        t = p.thread()
        t.store("x", 1)
        a = t.load("x")
        p.observe(a)
        result = verify(p.build(), "sc", stop_on_error=False)
        assert result.executions == 1
        assert result.outcomes == {((f"{a.name}@0", 1),): 1}

    def test_empty_program(self):
        p = ProgramBuilder("empty")
        p.thread()
        assert count_executions(p.build(), "sc") == 1


class TestOutcomesAndStates:
    def test_sb_outcomes(self):
        result = verify(sb(), "tso", stop_on_error=False)
        values = {tuple(v for _, v in key) for key in result.outcomes}
        assert values == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_final_states(self):
        result = verify(sb(), "sc", stop_on_error=False)
        assert set(result.final_states) == {(("x", 1), ("y", 1))}

    def test_summary_mentions_counts(self):
        result = verify(sb(), "sc", stop_on_error=False)
        assert "executions: 3" in result.summary()


class TestErrors:
    def error_prog(self):
        p = ProgramBuilder("err")
        t1 = p.thread()
        t1.store("x", 1)
        t2 = p.thread()
        a = t2.load("x")
        t2.assert_(a.eq(0), "saw the store")
        return p.build()

    def test_error_reported_with_witness(self):
        result = verify(self.error_prog(), "sc")
        assert not result.ok
        assert result.errors[0].message == "saw the store"
        assert result.errors[0].thread == 1
        assert "thread 1" in result.errors[0].witness

    def test_stop_on_error_halts(self):
        result = verify(self.error_prog(), "sc", stop_on_error=True)
        assert result.truncated
        assert len(result.errors) == 1

    def test_keep_going_counts_all(self):
        result = verify(self.error_prog(), "sc", stop_on_error=False)
        assert len(result.errors) == 1  # one erroneous execution
        assert result.executions == 1  # plus the safe one (read 0)

    def test_assume_blocks_execution(self):
        p = ProgramBuilder("blocked")
        t1 = p.thread()
        a = t1.load("x")
        t1.assume(a.eq(1))
        t2 = p.thread()
        t2.store("x", 1)
        result = verify(p.build(), "sc", stop_on_error=False)
        assert result.executions == 1  # read 1
        assert result.blocked == 1  # read 0 then blocked


class TestOptions:
    def test_max_executions_truncates(self):
        result = verify(sb(), "tso", stop_on_error=False, max_executions=2)
        assert result.executions == 2 and result.truncated

    def test_no_backward_revisits_loses_executions(self):
        full = count_executions(sb(), "tso")
        partial = count_executions(sb(), "tso", backward_revisits=False)
        assert partial < full

    def test_no_maximality_same_set_more_work(self):
        base = verify(sb(), "tso", stop_on_error=False, collect_executions=True)
        loose = verify(
            sb(),
            "tso",
            stop_on_error=False,
            collect_executions=True,
            maximality_check=False,
        )
        from repro.graphs import canonical_key

        k1 = {canonical_key(g) for g in base.execution_graphs}
        k2 = {canonical_key(g) for g in loose.execution_graphs}
        assert k1 == k2
        assert loose.duplicates >= base.duplicates

    def test_incremental_off_same_counts(self):
        a = count_executions(sb(), "tso")
        b = count_executions(sb(), "tso", incremental_checks=False)
        assert a == b

    def test_options_and_overrides_conflict(self):
        with pytest.raises(ValueError):
            verify(sb(), "sc", options=ExplorationOptions(), stop_on_error=False)

    def test_explorer_accepts_model_instance(self):
        from repro.models import TSO

        result = Explorer(sb(), TSO()).run()
        assert result.model == "tso"

    def test_stats_populated(self):
        result = verify(sb(), "tso", stop_on_error=False)
        stats = result.stats.as_dict()
        assert stats["reads_added"] > 0
        assert stats["writes_added"] > 0
        assert stats["revisits_considered"] > 0


class TestDeterminism:
    def test_runs_are_reproducible(self):
        r1 = verify(sb(), "imm", stop_on_error=False)
        r2 = verify(sb(), "imm", stop_on_error=False)
        assert r1.executions == r2.executions
        assert r1.duplicates == r2.duplicates
        assert r1.outcomes == r2.outcomes
