"""Fault-tolerance and budget-correctness tests for the parallel engine.

Covers the PR-3 fault model (docs/PARALLEL.md): global
``max_executions``/``max_explored`` budgets shared across workers,
crash/hang/exception injection with bounded retry and serial fallback,
merge-layer bugfixes (boolean meta, keyed/unkeyed mixing), and
truncated-worker-trace folding.

Fault injection uses the ``REPRO_FAULT_INJECT`` hook in
``repro.core.parallel._run_subtree`` (documented there): workers crash
(SIGKILL themselves), hang, or raise — once (marker file) or on every
attempt (no marker, exercising the serial-fallback path).
"""

import os

import pytest

from repro.core import (
    ExplorationOptions,
    Explorer,
    GlobalBudget,
    VerificationResult,
    verify,
    verify_parallel,
)
from repro.core.result import _merge_meta
from repro.lang import ProgramBuilder
from repro.litmus import get_litmus
from repro.obs import Observer, read_trace_prefix, summarize_file
from repro.bench.workloads import FAMILIES


def sharded_program():
    """A workload big enough that the split phase actually carves out
    subtree tasks for a 2-job pool (sb(3): 8 executions, 8+ tasks)."""
    return FAMILIES["sb"](3)


def serial_result(program, model="tso", **overrides):
    options = ExplorationOptions(stop_on_error=False, **overrides)
    return Explorer(program, model, options).run()


@pytest.fixture
def inject(monkeypatch, tmp_path):
    """Set REPRO_FAULT_INJECT, returning a helper that builds specs."""

    def _set(kind, tasks="", once=True):
        marker = str(tmp_path / f"{kind}-marker") if once else ""
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", f"{kind}:{tasks}:{marker}"
        )

    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    return _set


# -- satellite: merge-layer bugfixes ---------------------------------------


class TestMergeMeta:
    def test_booleans_not_summed(self):
        merged = _merge_meta({"flag": True, "n": 1}, {"flag": True, "n": 2})
        assert merged["flag"] is True  # was 2 before the fix
        assert merged["n"] == 3

    def test_booleans_left_biased(self):
        assert _merge_meta({"flag": False}, {"flag": True})["flag"] is False

    def test_bool_numeric_mix_left_biased(self):
        merged = _merge_meta({"x": True}, {"x": 5})
        assert merged["x"] is True
        merged = _merge_meta({"x": 5}, {"x": True})
        assert merged["x"] == 5

    def test_result_merge_keeps_boolean_meta(self):
        a = VerificationResult(program="p", model="sc")
        b = VerificationResult(program="p", model="sc")
        a.meta = {"converged": True, "traces": 3}
        b.meta = {"converged": True, "traces": 4}
        merged = a.merge(b)
        assert merged.meta["converged"] is True
        assert merged.meta["traces"] == 7


class TestKeyedUnkeyedMix:
    def test_mixing_raises(self):
        keyed = serial_result(sharded_program(), collect_keys=True)
        stripped = serial_result(sharded_program(), collect_keys=True)
        stripped.execution_records = []  # what an API-boundary strip does
        with pytest.raises(ValueError, match="keyed"):
            keyed.merge(stripped)
        with pytest.raises(ValueError, match="keyed"):
            stripped.merge(keyed)

    def test_empty_side_is_fine(self):
        keyed = serial_result(sharded_program(), collect_keys=True)
        empty = VerificationResult(program=keyed.program, model=keyed.model)
        assert keyed.merge(empty).executions == keyed.executions

    def test_verify_parallel_result_stays_keyed(self):
        result = verify_parallel(
            sharded_program(),
            "tso",
            ExplorationOptions(stop_on_error=False),
            jobs=2,
        )
        assert result.keyed
        # merging the parallel result with itself reconciles by key
        # instead of silently double-counting (the PR-2 bug)
        remerged = result.merge(result)
        assert remerged.executions == result.executions

    def test_verify_strips_at_boundary(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        result = verify(
            sharded_program(), "tso", stop_on_error=False, jobs=2
        )
        assert result.meta.get("jobs") == 2
        assert result.execution_records == []


# -- satellite: truncated worker traces ------------------------------------


class TestTruncatedTraces:
    def _write(self, path, lines):
        path.write_text("\n".join(lines) + "\n")

    def test_read_trace_prefix_clean(self, tmp_path):
        p = tmp_path / "t.jsonl"
        self._write(p, ['{"t":"trace_start","seq":1}', '{"t":"run_end","seq":2}'])
        records, truncated = read_trace_prefix(str(p))
        assert [r["t"] for r in records] == ["trace_start", "run_end"]
        assert not truncated

    def test_read_trace_prefix_truncated_line(self, tmp_path):
        p = tmp_path / "t.jsonl"
        self._write(
            p,
            [
                '{"t":"trace_start","seq":1}',
                '{"t":"graph_complete","seq":2}',
                '{"t":"graph_blo',  # killed mid-write
            ],
        )
        records, truncated = read_trace_prefix(str(p))
        assert len(records) == 2
        assert truncated

    def test_fold_keeps_valid_prefix_and_marks(self, tmp_path):
        from repro.core.parallel import _fold_worker_traces

        worker = tmp_path / "run.jsonl.worker0"
        self._write(
            worker,
            [
                '{"t":"trace_start","seq":1,"ts":0.0,"schema":1}',
                '{"t":"graph_complete","seq":2,"ts":0.1,"events":4}',
                '{"t":"graph_comp',
            ],
        )
        obs = Observer.in_memory()
        _fold_worker_traces(obs, [(0, str(worker))])
        types = [r["t"] for r in obs.records()]
        assert "graph_complete" in types  # valid prefix folded, not lost
        assert "trace_truncated" in types
        marker = next(r for r in obs.records() if r["t"] == "trace_truncated")
        assert marker["worker"] == 0 and marker["kept"] == 2

    def test_missing_file_still_skipped(self, tmp_path):
        from repro.core.parallel import _fold_worker_traces

        obs = Observer.in_memory()
        _fold_worker_traces(obs, [(0, str(tmp_path / "nope.jsonl"))])
        assert [r["t"] for r in obs.records()] == ["trace_start"]


# -- tentpole: global budgets ----------------------------------------------


class TestGlobalBudget:
    def test_take_execution_drains(self):
        budget = GlobalBudget(max_executions=2)
        assert budget.take_execution()
        assert not budget.limit_hit
        assert budget.take_execution()  # the Nth take succeeds...
        assert budget.limit_hit  # ...and latches the limit
        assert not budget.take_execution()

    def test_preconsumed_budget(self):
        budget = GlobalBudget(max_executions=3, executions_used=3)
        assert budget.limit_hit
        assert not budget.take_execution()

    def test_unlimited_dimension_free(self):
        budget = GlobalBudget(max_explored=1)
        assert budget.take_execution()  # no execution limit set
        assert budget.take_explored()
        assert not budget.take_explored()
        assert budget.limit_hit

    def test_parallel_run_never_exceeds_budget(self):
        program = sharded_program()
        total = serial_result(program).executions
        for limit in (1, 3, total - 1):
            result = verify_parallel(
                program,
                "tso",
                ExplorationOptions(stop_on_error=False, max_executions=limit),
                jobs=2,
            )
            assert result.executions <= limit, limit
            assert result.truncated, limit  # the limit bit

    def test_truncated_false_when_limit_never_bites(self):
        program = sharded_program()
        total = serial_result(program).executions
        result = verify_parallel(
            program,
            "tso",
            ExplorationOptions(
                stop_on_error=False, max_executions=total + 100
            ),
            jobs=2,
        )
        assert result.executions == total
        assert not result.truncated

    def test_max_explored_holds_globally(self):
        program = sharded_program()
        result = verify_parallel(
            program,
            "tso",
            ExplorationOptions(stop_on_error=False, max_explored=4),
            jobs=2,
        )
        assert result.explored <= 4
        assert result.truncated

    def test_budget_consumption_reported(self):
        result = verify_parallel(
            sharded_program(),
            "tso",
            ExplorationOptions(stop_on_error=False, max_executions=3),
            jobs=2,
        )
        assert result.meta["budget_executions"] <= 3


# -- tentpole: worker supervision ------------------------------------------


class TestWorkerFaults:
    def assert_matches_serial(self, result, serial, label):
        assert result.executions == serial.executions, label
        assert result.outcomes == serial.outcomes, label
        assert result.final_states == serial.final_states, label

    def test_crashed_worker_retried(self, inject):
        """A SIGKILLed worker is detected and its task re-run."""
        program = sharded_program()
        serial = serial_result(program)
        inject("crash", once=True)
        result = verify_parallel(
            program, "tso", ExplorationOptions(stop_on_error=False), jobs=2
        )
        self.assert_matches_serial(result, serial, "crash")
        assert result.meta["workers_lost"] >= 1
        assert result.meta["tasks_retried"] >= 1

    def test_raising_worker_retried(self, inject):
        program = sharded_program()
        serial = serial_result(program)
        inject("raise", tasks="1", once=True)
        result = verify_parallel(
            program, "tso", ExplorationOptions(stop_on_error=False), jobs=2
        )
        self.assert_matches_serial(result, serial, "raise")
        assert result.meta["tasks_failed"] >= 1
        assert result.meta["tasks_retried"] >= 1

    def test_persistent_failure_falls_back_serially(self, inject):
        """A task that fails every attempt is re-explored in the
        coordinator: complete result, no exception."""
        program = sharded_program()
        serial = serial_result(program)
        inject("raise", tasks="0", once=False)
        result = verify_parallel(
            program, "tso", ExplorationOptions(stop_on_error=False), jobs=2
        )
        self.assert_matches_serial(result, serial, "fallback")
        assert result.meta["tasks_fallback"] == 1
        assert result.meta["tasks_failed"] >= 1

    def test_hung_worker_times_out_and_retries(self, inject):
        program = sharded_program()
        serial = serial_result(program)
        inject("hang", tasks="1", once=True)
        result = verify_parallel(
            program,
            "tso",
            ExplorationOptions(stop_on_error=False, task_timeout=1.0),
            jobs=2,
        )
        self.assert_matches_serial(result, serial, "hang")
        assert result.meta["tasks_timeout"] >= 1
        assert result.meta["tasks_retried"] >= 1

    def test_persistent_hang_falls_back(self, inject):
        program = sharded_program()
        serial = serial_result(program)
        inject("hang", tasks="0", once=False)
        result = verify_parallel(
            program,
            "tso",
            ExplorationOptions(
                stop_on_error=False, task_timeout=0.5, task_retries=1
            ),
            jobs=2,
        )
        self.assert_matches_serial(result, serial, "hang-fallback")
        assert result.meta["tasks_fallback"] >= 1

    def test_crash_with_budget_stays_bounded(self, inject):
        """Faults must not let a bounded run overshoot its budget."""
        program = sharded_program()
        inject("crash", once=True)
        result = verify_parallel(
            program,
            "tso",
            ExplorationOptions(stop_on_error=False, max_executions=4),
            jobs=2,
        )
        assert result.executions <= 4

    def test_litmus_determinism_under_crash(self, inject):
        """The acceptance assertion: injected crashes leave litmus
        verdicts identical to serial ones."""
        inject("crash", once=True)
        for name in ("SB", "MP", "LB"):
            program = get_litmus(name).program
            serial = serial_result(program, "tso")
            result = verify_parallel(
                program,
                "tso",
                ExplorationOptions(stop_on_error=False),
                jobs=2,
            )
            self.assert_matches_serial(result, serial, name)


class TestCancellationAccounting:
    def test_cancelled_consistent_with_folded_traces(self, tmp_path):
        """stop_on_error: collected + cancelled == dispatched, and only
        collected workers' traces are folded back."""
        p = ProgramBuilder("racy-wide")
        for i in range(4):
            t = p.thread()
            t.store(f"x{i}", 1)
            t.load(f"x{(i + 1) % 4}")
        t = p.thread()
        r = t.load("x0")
        t.assert_(r.eq(0), "saw the store")
        program = p.build()
        trace = tmp_path / "run.jsonl"
        obs = Observer.to_file(str(trace))
        result = verify_parallel(
            program, "sc", ExplorationOptions(stop_on_error=True),
            observer=obs, jobs=2,
        )
        obs.close()
        assert result.errors and result.truncated
        meta = result.meta
        collected = meta["tasks"] - meta["tasks_cancelled"]
        assert 0 <= meta["tasks_cancelled"] <= meta["tasks"]
        summary = summarize_file(str(trace))
        assert summary.tasks_dispatched == meta["tasks"]
        # each collected worker's folded trace carries its own run_end
        # (tagged worker=N); cancelled workers are never folded, so the
        # folded count must equal tasks - tasks_cancelled
        from repro.obs import read_trace

        folded_runs = sum(
            1
            for rec in read_trace(str(trace))
            if rec["t"] == "run_end" and "worker" in rec
        )
        assert folded_runs == collected


class TestOptionValidation:
    def test_task_timeout_positive(self):
        with pytest.raises(ValueError, match="task_timeout"):
            ExplorationOptions(task_timeout=0)
        with pytest.raises(ValueError, match="task_timeout"):
            ExplorationOptions(task_timeout=-1.0)
        assert ExplorationOptions(task_timeout=2.5).task_timeout == 2.5

    def test_task_retries_non_negative(self):
        with pytest.raises(ValueError, match="task_retries"):
            ExplorationOptions(task_retries=-1)
        assert ExplorationOptions(task_retries=0).task_retries == 0
