"""Differential validation: HMC vs the herd-style brute force.

The brute force enumerates *all* (resolution, rf, co) candidates and
filters by the axioms, so it is ground truth for the set of consistent
execution graphs.  These tests assert exact set equality on random
programs across every model — the soundness+completeness claim of the
paper, checked end to end.  (A much larger sweep of the same shape ran
offline; see EXPERIMENTS.md.)
"""

import pytest

from repro import verify
from repro.baselines import brute_force
from repro.graphs import canonical_key
from repro.util.randprog import RandomProgramGenerator

MODELS = ("sc", "tso", "pso", "ra", "rc11", "imm", "armv8", "power", "coherence")


def _check(program, model, budget=150_000):
    """Compare HMC against the ground truth; returns None when the
    program's candidate space exceeds the unit-test budget (the big
    offline sweeps cover those — see EXPERIMENTS.md)."""
    try:
        bf = brute_force(program, model, max_candidates=budget)
    except RuntimeError:
        return None
    result = verify(program, model, stop_on_error=False, collect_executions=True)
    keys = {canonical_key(g) for g in result.execution_graphs}
    assert keys == bf.keys, (
        f"{program.name} under {model}: hmc found {len(keys)}, "
        f"brute force {len(bf.keys)} "
        f"(missing {len(bf.keys - keys)}, spurious {len(keys - bf.keys)})"
    )
    return result, bf


@pytest.mark.parametrize("model", MODELS)
def test_random_programs_match_ground_truth(model):
    gen = RandomProgramGenerator(seed=1234, max_threads=3, max_stmts=3)
    checked = sum(
        _check(program, model) is not None for program in gen.programs(12)
    )
    assert checked >= 8  # most programs must fit the oracle budget


@pytest.mark.parametrize("model", MODELS)
def test_dependency_heavy_programs(model):
    gen = RandomProgramGenerator(
        seed=77, with_fences=False, max_threads=2, max_stmts=4
    )
    checked = sum(
        _check(program, model) is not None for program in gen.programs(8)
    )
    assert checked >= 5


@pytest.mark.parametrize("model", ("sc", "imm", "power"))
def test_rmw_heavy_programs(model):
    gen = RandomProgramGenerator(
        seed=31, with_fences=False, with_deps=False, max_stmts=2
    )
    checked = sum(
        _check(program, model) is not None for program in gen.programs(8)
    )
    assert checked >= 5


def test_outcome_sets_match_too():
    gen = RandomProgramGenerator(seed=5, max_threads=2, max_stmts=3)
    checked = 0
    for program in gen.programs(6):
        pair = _check(program, "tso")
        if pair is None:
            continue
        result, bf = pair
        assert set(result.outcomes) == bf.outcomes
        assert set(result.final_states) == bf.final_states
        checked += 1
    assert checked >= 4


def test_soundness_no_spurious_graphs_ever():
    """Every graph HMC emits is model-consistent (checked directly)."""
    from repro.models import get_model

    gen = RandomProgramGenerator(seed=400)
    for program in gen.programs(6):
        for model in ("tso", "imm"):
            result = verify(
                program, model, stop_on_error=False, collect_executions=True
            )
            checker = get_model(model)
            for graph in result.execution_graphs:
                assert checker.is_consistent(graph)


@pytest.mark.parametrize("model", ("sc", "tso", "imm"))
def test_programs_with_assumes(model):
    """Blocked executions must be excluded identically on both sides."""
    gen = RandomProgramGenerator(
        seed=55, with_assumes=True, max_threads=2, max_stmts=3
    )
    checked = sum(
        _check(program, model) is not None for program in gen.programs(8)
    )
    assert checked >= 5
