"""The public API surface: the façade export list is pinned, every
symbol imports, and the deprecated engine wrappers warn."""

import subprocess
import sys

import pytest

import repro

#: the golden export list — an accidental addition or removal on the
#: façade fails here before it reaches users; change it deliberately,
#: together with docs/API.md
PUBLIC_API = [
    # verification
    "verify",
    "count_executions",
    "estimate_explorations",
    "compare_models",
    "synthesize_fences",
    "Explorer",
    "ExplorationOptions",
    "resolve_options",
    "VerificationResult",
    "ModelComparison",
    "RepairResult",
    "Estimate",
    # programs and models
    "Program",
    "ProgramBuilder",
    "MemOrder",
    "FenceKind",
    "MemoryModel",
    "get_model",
    "load_cat",
    "model_names",
    "all_models",
    # litmus
    "LitmusTest",
    "LitmusVerdict",
    "run_litmus",
    "get_litmus",
    "litmus_names",
    "all_litmus_tests",
    "parse_litmus",
    # suites
    "run_suite",
    "SuiteTask",
    "SuiteResult",
    "TaskResult",
    "litmus_task",
    "program_task",
    "litmus_matrix",
    # observability
    "Observer",
    "ProgressReporter",
    "SpanTracer",
    # the verification service
    "ServiceClient",
    "ServiceError",
    "serve",
    "__version__",
]


class TestFacade:
    def test_export_list_is_exactly_the_golden_list(self):
        assert sorted(repro.__all__) == sorted(PUBLIC_API)

    def test_every_symbol_resolves(self):
        for name in PUBLIC_API:
            assert getattr(repro, name, None) is not None, name

    def test_star_import_matches(self):
        namespace = {}
        exec("from repro import *", namespace)
        exported = {n for n in namespace if not n.startswith("__")}
        assert exported == set(PUBLIC_API) - {"__version__"}

    def test_facade_verify_roundtrip(self):
        from repro import ProgramBuilder, run_suite, verify

        p = ProgramBuilder("api-surface")
        t1 = p.thread()
        t1.store("x", 1)
        a = t1.load("y")
        t2 = p.thread()
        t2.store("y", 1)
        b = t2.load("x")
        p.observe(a, b)
        program = p.build()
        assert verify(program, "tso").ok
        suite = run_suite(
            [repro.program_task(program, "sc")], jobs=1, cache=False
        )
        assert suite.tasks[0].ok


class TestDeprecatedShims:
    BACKEND_SHIMS = [
        "explore_interleavings",
        "explore_dpor",
        "explore_store_buffers",
        "explore_with_state_hashing",
        "brute_force",
    ]

    @pytest.mark.parametrize("name", BACKEND_SHIMS)
    def test_backends_attribute_warns(self, name):
        import repro.backends as backends

        with pytest.warns(DeprecationWarning, match="removed in repro 2.0"):
            shim = getattr(backends, name)
        assert callable(shim)

    def test_backends_unknown_attribute_raises(self):
        import repro.backends as backends

        with pytest.raises(AttributeError):
            backends.explore_nonsense

    def test_baselines_call_warns_with_removal_note(self):
        from repro.baselines import explore_dpor
        from repro.bench.workloads import sb_n

        with pytest.warns(DeprecationWarning, match="removed in repro 2.0"):
            explore_dpor(sb_n(2))

    def test_backends_shim_delegates_to_raw_impl(self):
        import repro.backends as backends
        from repro.baselines.dpor import explore_dpor as raw
        from repro.bench.workloads import sb_n

        with pytest.warns(DeprecationWarning):
            shim = backends.explore_dpor
        assert shim is raw
        result = shim(sb_n(2))
        assert result.traces > 0

    def test_importing_backends_is_warning_free(self):
        code = (
            "import warnings\n"
            "with warnings.catch_warnings():\n"
            "    warnings.simplefilter('error')\n"
            "    import repro.backends\n"
            "    import repro.baselines\n"
        )
        subprocess.run(
            [sys.executable, "-c", code], check=True, capture_output=True
        )


class TestOptionConvention:
    """One shared options/overrides convention across entry points."""

    ENTRY_POINTS = "verify count_executions compare_models synthesize_fences run_litmus".split()

    def test_options_and_overrides_conflict_uniformly(self):
        from repro import (
            ExplorationOptions,
            compare_models,
            count_executions,
            get_litmus,
            run_litmus,
            synthesize_fences,
            verify,
        )

        program = get_litmus("SB").program
        options = ExplorationOptions()
        calls = [
            lambda: verify(program, "sc", options=options, max_events=5),
            lambda: count_executions(
                program, "sc", options=options, max_events=5
            ),
            lambda: compare_models(
                program, "sc", "tso", options=options, max_events=5
            ),
            lambda: synthesize_fences(
                program, "tso", options=options, max_events=5
            ),
            lambda: run_litmus(
                get_litmus("SB"), "sc", options=options, max_events=5
            ),
        ]
        for call in calls:
            with pytest.raises(ValueError, match="not both"):
                call()

    def test_overrides_alone_work(self):
        from repro import get_litmus, run_litmus, verify

        program = get_litmus("SB").program
        assert verify(program, "sc", max_events=1_000).ok
        verdict = run_litmus(get_litmus("SB"), "tso", max_events=1_000)
        assert verdict.observed
