"""Unit tests for the relation calculus."""

import pytest

from repro.relations import (
    Relation,
    bracket,
    cross,
    from_order,
    optional,
    same,
    seq,
    union,
)


class TestConstruction:
    def test_empty(self):
        rel = Relation()
        assert len(rel) == 0
        assert not rel
        assert rel.nodes() == frozenset()

    def test_pairs_roundtrip(self):
        pairs = {(1, 2), (2, 3), (1, 3)}
        rel = Relation(pairs)
        assert set(rel.pairs()) == pairs
        assert len(rel) == 3
        assert rel

    def test_identity(self):
        rel = Relation.identity([1, 2, 3])
        assert set(rel.pairs()) == {(1, 1), (2, 2), (3, 3)}

    def test_product(self):
        rel = Relation.product([1, 2], ["a", "b"])
        assert len(rel) == 4
        assert (1, "a") in rel and (2, "b") in rel

    def test_total_order(self):
        rel = Relation.total_order([3, 1, 2])
        assert (3, 1) in rel and (3, 2) in rel and (1, 2) in rel
        assert (2, 1) not in rel
        assert len(rel) == 3

    def test_copy_is_independent(self):
        rel = Relation([(1, 2)])
        dup = rel.copy()
        dup.add(2, 3)
        assert (2, 3) not in rel


class TestQueries:
    def test_contains(self):
        rel = Relation([(1, 2)])
        assert (1, 2) in rel
        assert (2, 1) not in rel

    def test_successors(self):
        rel = Relation([(1, 2), (1, 3)])
        assert rel.successors(1) == frozenset({2, 3})
        assert rel.successors(9) == frozenset()

    def test_domain_range(self):
        rel = Relation([(1, 2), (3, 2)])
        assert rel.domain() == frozenset({1, 3})
        assert rel.range() == frozenset({2})

    def test_equality(self):
        assert Relation([(1, 2)]) == Relation([(1, 2)])
        assert Relation([(1, 2)]) != Relation([(2, 1)])


class TestAlgebra:
    def test_union(self):
        rel = Relation([(1, 2)]) | Relation([(2, 3)])
        assert set(rel.pairs()) == {(1, 2), (2, 3)}

    def test_intersection(self):
        rel = Relation([(1, 2), (2, 3)]) & Relation([(2, 3), (3, 4)])
        assert set(rel.pairs()) == {(2, 3)}

    def test_difference(self):
        rel = Relation([(1, 2), (2, 3)]) - Relation([(2, 3)])
        assert set(rel.pairs()) == {(1, 2)}

    def test_compose(self):
        rel = Relation([(1, 2)]).compose(Relation([(2, 3), (2, 4)]))
        assert set(rel.pairs()) == {(1, 3), (1, 4)}

    def test_compose_empty_when_disjoint(self):
        assert not Relation([(1, 2)]).compose(Relation([(3, 4)]))

    def test_inverse(self):
        assert set(Relation([(1, 2)]).inverse().pairs()) == {(2, 1)}

    def test_restrict(self):
        rel = Relation([(1, 2), (2, 3)]).restrict({1, 2})
        assert set(rel.pairs()) == {(1, 2)}

    def test_filter(self):
        rel = Relation([(1, 2), (2, 4), (3, 6)])
        odd_sources = rel.filter(source=lambda n: n % 2 == 1)
        assert set(odd_sources.pairs()) == {(1, 2), (3, 6)}

    def test_without_self_loops(self):
        rel = Relation([(1, 1), (1, 2)]).without_self_loops()
        assert set(rel.pairs()) == {(1, 2)}


class TestClosures:
    def test_transitive_closure(self):
        rel = Relation([(1, 2), (2, 3)]).transitive_closure()
        assert (1, 3) in rel
        assert (3, 1) not in rel

    def test_transitive_closure_cycle(self):
        rel = Relation([(1, 2), (2, 1)]).transitive_closure()
        assert (1, 1) in rel and (2, 2) in rel

    def test_reflexive_transitive_closure(self):
        rel = Relation([(1, 2)]).reflexive_transitive_closure([1, 2, 3])
        assert (3, 3) in rel and (1, 2) in rel and (1, 1) in rel

    def test_is_acyclic(self):
        assert Relation([(1, 2), (2, 3)]).is_acyclic()
        assert not Relation([(1, 2), (2, 1)]).is_acyclic()
        assert not Relation([(1, 1)]).is_acyclic()

    def test_is_irreflexive(self):
        assert Relation([(1, 2)]).is_irreflexive()
        assert not Relation([(1, 1)]).is_irreflexive()

    def test_is_transitive(self):
        assert Relation([(1, 2), (2, 3), (1, 3)]).is_transitive()
        assert not Relation([(1, 2), (2, 3)]).is_transitive()

    def test_is_total_on(self):
        rel = Relation([(1, 2), (2, 3), (1, 3)])
        assert rel.is_total_on([1, 2, 3])
        assert not rel.is_total_on([1, 2, 3, 4])

    def test_topological_sort(self):
        rel = Relation([(1, 2), (2, 3)])
        assert rel.topological_sort([3, 2, 1]) == [1, 2, 3]

    def test_topological_sort_cycle_raises(self):
        with pytest.raises(ValueError):
            Relation([(1, 2), (2, 1)]).topological_sort([1, 2])

    def test_topological_sort_ignores_outside_edges(self):
        rel = Relation([(1, 2), (5, 6)])
        assert rel.topological_sort([1, 2]) == [1, 2]


class TestBuilders:
    def test_seq(self):
        rel = seq(Relation([(1, 2)]), Relation([(2, 3)]), Relation([(3, 4)]))
        assert set(rel.pairs()) == {(1, 4)}

    def test_seq_requires_args(self):
        with pytest.raises(ValueError):
            seq()

    def test_union_many(self):
        rel = union(Relation([(1, 2)]), Relation([(2, 3)]), Relation([(1, 2)]))
        assert len(rel) == 2

    def test_bracket(self):
        assert set(bracket([1, 2]).pairs()) == {(1, 1), (2, 2)}

    def test_optional(self):
        rel = optional(Relation([(1, 2)]), [1, 2, 3])
        assert (3, 3) in rel and (1, 2) in rel

    def test_cross(self):
        assert len(cross([1, 2], [3, 4])) == 4

    def test_from_order(self):
        assert (1, 3) in from_order([1, 2, 3])

    def test_same(self):
        rel = same(lambda n: n % 2, [1, 2, 3, 4])
        assert (1, 3) in rel and (3, 1) in rel and (2, 4) in rel
        assert (1, 2) not in rel and (1, 1) not in rel
