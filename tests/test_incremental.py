"""Incremental consistency checking: delta logs, cache hand-off across
graph copies, the Pearce–Kelly-style acyclicity checker, and the
differential guarantees (incremental verdicts and relations bit-identical
to from-scratch computation, serial and parallel, hand-coded and .cat
models).  Also pins the satellite bugfixes: ``atomicity_ok`` on
``from_parts`` graphs with inconsistent inputs, the heap-based
``topological_sort`` order, and the monotonic version lineage across
``copy()``.
"""

import pytest

from repro import ProgramBuilder, verify
from repro.cat import CatModel
from repro.events import Event, ReadLabel, WriteLabel
from repro.graphs import ExecutionGraph
from repro.graphs.derived import co, eco, fr, po, rf
from repro.graphs.incremental import (
    AcyclicFamily,
    IncrementalMismatch,
    acyclic_check,
    check_equal,
    configure_from_env,
    set_differential,
    set_incremental,
)
from repro.models import all_models, get_model
from repro.models.common import atomicity_ok
from repro.obs import Observer
from repro.relations import Relation, union
from repro.util.randprog import RandomProgramGenerator


@pytest.fixture(autouse=True)
def _restore_flags():
    yield
    set_incremental(True)
    set_differential(False)


def sb_program(n: int = 2):
    p = ProgramBuilder("SB")
    locations = [f"x{i}" for i in range(n)]
    for i in range(n):
        t = p.thread()
        t.store(locations[i], 1)
        t.load(locations[(i + 1) % n])
    return p.build()


def mp_graph() -> ExecutionGraph:
    g = ExecutionGraph(["d", "f"])
    g.add_write(0, WriteLabel(loc="d", value=1))
    wf = g.add_write(0, WriteLabel(loc="f", value=1))
    g.add_read(1, ReadLabel(loc="f"), wf)
    g.add_read(1, ReadLabel(loc="d"), g.init_write("d"))
    return g


# -- satellite regressions ---------------------------------------------------


class TestAtomicityFromParts:
    def _graph(self, co_writes):
        """T0: W x 9  |  T1: R x (exclusive); W x 1 (exclusive), with
        the coherence order of x given explicitly by ``co_writes``
        (indices into the flat event list below)."""
        rd = ReadLabel(loc="x", exclusive=True)
        wr = WriteLabel(loc="x", value=1, exclusive=True)
        base = WriteLabel(loc="x", value=9)
        g = ExecutionGraph.from_parts(
            {0: [base], 1: [rd, wr]},
            rf_map={Event(1, 0): Event(0, 0)},
            co_orders={"x": co_writes},
        )
        return g

    def test_missing_exclusive_write_in_co_returns_false(self):
        # the exclusive write never appears in x's coherence order:
        # inconsistent input must be inconsistent, not a ValueError
        g = self._graph([Event(0, 0)])
        assert atomicity_ok(g) is False

    def test_missing_rf_source_in_co_returns_false(self):
        g = self._graph([Event(1, 1)])
        assert atomicity_ok(g) is False

    def test_consistent_rmw_still_passes(self):
        g = ExecutionGraph(["x"])
        w0 = g.init_write("x")
        r = g.add_read(0, ReadLabel(loc="x", exclusive=True), w0)
        g.add_write(0, WriteLabel(loc="x", value=1, exclusive=True))
        assert atomicity_ok(g) is True


class TestTopologicalSort:
    def test_emits_lexicographically_smallest_order(self):
        rel = Relation([("y", "x")])
        # FIFO would emit y, z, x; the heap emits y then x (index 0)
        assert rel.topological_sort(["x", "y", "z"]) == ["y", "x", "z"]

    def test_no_edges_preserves_universe_order(self):
        rel = Relation()
        assert rel.topological_sort([3, 1, 2]) == [3, 1, 2]

    def test_cycle_raises(self):
        rel = Relation([("a", "b"), ("b", "a")])
        with pytest.raises(ValueError):
            rel.topological_sort(["a", "b"])

    def test_order_respects_relation(self):
        rel = Relation([(1, 5), (5, 2), (2, 8)])
        out = rel.topological_sort([8, 5, 2, 1])
        assert out.index(1) < out.index(5) < out.index(2) < out.index(8)


class TestVersionLineage:
    def test_copy_inherits_version(self):
        g = mp_graph()
        assert g.copy()._version == g._version

    def test_mutation_after_copy_bumps_version(self):
        g = mp_graph()
        child = g.copy()
        v = child._version
        child.add_write(0, WriteLabel(loc="d", value=2))
        # one bump per delta record: ("event", ev) then ("co", ev)
        assert child._version == v + 2
        assert g._version == v

    def test_no_stale_relations_after_copy_mutation(self):
        g = mp_graph()
        po(g), rf(g), co(g), fr(g), eco(g)  # warm the caches
        child = g.copy()
        w = child.add_write(1, WriteLabel(loc="d", value=7))
        a, b = child.thread_events(1)[:2]
        assert (b, w) in po(child)
        assert (a, w) in po(child)
        # and the parent's relations are untouched
        assert w not in po(g).nodes()

    def test_relation_extension_matches_scratch(self):
        g = mp_graph()
        for fn in (po, rf, co, fr, eco):
            fn(g)
        child = g.copy()
        child.add_write(1, WriteLabel(loc="d", value=7))
        child.add_read(0, ReadLabel(loc="d"), child.thread_events(1)[-1])
        for fn in (po, rf, co, fr, eco):
            incremental = fn(child)
            scratch = fn.__wrapped__(child)
            assert incremental == scratch, fn.__name__


class TestRelationExtended:
    def test_extended_adds_pairs_without_mutating_original(self):
        base = Relation([(1, 2)])
        ext = base.extended([(1, 3), (4, 5)])
        assert (1, 3) in ext and (4, 5) in ext and (1, 2) in ext
        assert (1, 3) not in base and (4, 5) not in base

    def test_extended_shares_untouched_sources(self):
        base = Relation([(1, 2), (6, 7)])
        ext = base.extended([(1, 3)])
        assert ext._succ[6] is base._succ[6]
        assert ext._succ[1] is not base._succ[1]


class TestDeltaLog:
    def test_deltas_since_covers_mutations(self):
        g = ExecutionGraph(["x"])
        v = g._version
        g.add_write(0, WriteLabel(loc="x", value=1))
        deltas = g.deltas_since(v)
        assert deltas is not None
        assert [d[0] for d in deltas] == ["event", "co"]

    def test_set_rf_resets_log(self):
        g = mp_graph()
        v = g._version
        read = g.thread_events(1)[1]
        g.set_rf(read, g.thread_events(0)[0])
        assert g._version == v + 1
        assert g.deltas_since(v) is None
        assert g.deltas_since(g._version) == []

    def test_restricted_starts_fresh_log(self):
        g = mp_graph()
        kept = [e for e in g.events() if e.tid != 1]
        sub = g.restricted(kept)
        assert sub._version == g._version
        assert sub.deltas_since(sub._version) == []
        assert not sub._derived


# -- the incremental acyclicity checker --------------------------------------


COHERENCEISH = AcyclicFamily(
    "test-porf", (po, rf), build=lambda g: union(po(g), rf(g))
)


class TestAcyclicCheck:
    def test_matches_full_dfs(self):
        g = mp_graph()
        assert acyclic_check(g, COHERENCEISH) is union(
            po(g), rf(g)
        ).is_acyclic()

    def test_incremental_across_copy(self):
        obs = Observer()
        from repro.obs.profile import activation

        g = mp_graph()
        assert acyclic_check(g, COHERENCEISH)
        child = g.copy()
        child.add_write(0, WriteLabel(loc="d", value=3))
        with activation(obs):
            assert acyclic_check(child, COHERENCEISH)
        assert obs.metrics.counters.get("acyclic:incremental_hit", 0) == 1

    def test_disabled_mode_bypasses_state(self):
        set_incremental(False)
        g = mp_graph()
        assert acyclic_check(g, COHERENCEISH)
        assert not any(k.startswith("acyc:") for k in g._aux)

    def test_family_requires_delta_components(self):
        def plain(graph):
            return Relation()

        with pytest.raises(TypeError):
            AcyclicFamily("bad", (plain,), build=plain)

    def test_check_equal_raises_with_sample(self):
        with pytest.raises(IncrementalMismatch):
            check_equal("demo", Relation([(1, 2)]), Relation([(1, 3)]))


# -- differential property tests ---------------------------------------------


CAT_RC11ISH = """(* repro: name=cat-rc11ish *)
let sync = [W & REL] ; rf ; [R & ACQ]
let hb = (po | sync)+
acyclic po | rf as porf
irreflexive hb ; eco as coherence
"""


def _outcome(program, model, **kw):
    r = verify(program, model, **kw)
    return (
        r.executions,
        r.blocked,
        r.duplicates,
        sorted((str(k), v) for k, v in r.outcomes.items()),
    )


def _programs():
    yield sb_program(2)
    yield sb_program(3)
    gen = RandomProgramGenerator(seed=11, max_threads=3, max_stmts=4)
    for program in gen.programs(6):
        yield program


class TestDifferential:
    @pytest.mark.parametrize("model", sorted(m.name for m in all_models()))
    def test_models_identical_serial(self, model, monkeypatch):
        for flip, program in enumerate(_programs()):
            if flip % 2:
                monkeypatch.setenv("REPRO_CHECK_INCREMENTAL", "1")
            monkeypatch.setenv("REPRO_INCREMENTAL", "1")
            inc = _outcome(program, model)
            monkeypatch.setenv("REPRO_INCREMENTAL", "0")
            monkeypatch.setenv("REPRO_CHECK_INCREMENTAL", "0")
            scratch = _outcome(program, model)
            assert inc == scratch, program.name

    def test_cat_model_identical(self, monkeypatch):
        model = CatModel.from_source(CAT_RC11ISH)
        for program in _programs():
            monkeypatch.setenv("REPRO_INCREMENTAL", "1")
            monkeypatch.setenv("REPRO_CHECK_INCREMENTAL", "1")
            inc = _outcome(program, model)
            monkeypatch.setenv("REPRO_INCREMENTAL", "0")
            monkeypatch.setenv("REPRO_CHECK_INCREMENTAL", "0")
            scratch = _outcome(program, model)
            assert inc == scratch, program.name

    def test_parallel_identical(self, monkeypatch):
        program = sb_program(3)
        for model in ("sc", "tso", "rc11"):
            monkeypatch.setenv("REPRO_INCREMENTAL", "1")
            inc = _outcome(program, model, jobs=2)
            monkeypatch.setenv("REPRO_INCREMENTAL", "0")
            scratch = _outcome(program, model, jobs=2)
            serial = _outcome(program, model)
            assert inc == scratch == serial

    def test_differential_mode_clean_on_litmus(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INCREMENTAL", "1")
        from repro import all_litmus_tests, run_litmus

        for lt in list(all_litmus_tests())[:4]:
            for model in ("sc", "tso", "ra", "imm"):
                run_litmus(lt, model=model)  # IncrementalMismatch on bug


class TestCounters:
    def test_incremental_hits_recorded(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "1")
        obs = Observer()
        verify(sb_program(3), "tso", observer=obs)
        counters = obs.metrics.counters
        assert any(
            k.startswith("relation:") and k.endswith(":incremental_hit")
            for k in counters
        )
        assert counters.get("acyclic:incremental_hit", 0) > 0

    def test_incremental_hits_have_matching_phase(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "1")
        obs = Observer()
        verify(sb_program(3), "rc11", observer=obs)
        phases = obs.metrics.phase_stats()
        for key in obs.metrics.counters:
            if key.startswith("relation:") and key.endswith(":incremental_hit"):
                name = key[len("relation:"):-len(":incremental_hit")]
                assert f"relation:{name}" in phases, key

    def test_scratch_mode_records_no_incremental_hits(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        obs = Observer()
        verify(sb_program(3), "tso", observer=obs)
        counters = obs.metrics.counters
        assert not any(k.endswith(":incremental_hit") for k in counters)
        assert "acyclic:incremental_hit" not in counters


class TestConfigureFromEnv:
    def test_env_round_trip(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        monkeypatch.setenv("REPRO_CHECK_INCREMENTAL", "1")
        configure_from_env()
        from repro.graphs.incremental import (
            differential_enabled,
            incremental_enabled,
        )

        assert incremental_enabled() is False
        assert differential_enabled() is True
        monkeypatch.delenv("REPRO_INCREMENTAL")
        monkeypatch.delenv("REPRO_CHECK_INCREMENTAL")
        configure_from_env()
        assert incremental_enabled() is True
        assert differential_enabled() is False
