"""Unit tests for events, labels and orderings."""

from repro.events import (
    Event,
    FenceKind,
    FenceLabel,
    INIT_TID,
    InitLabel,
    MemOrder,
    ReadLabel,
    WriteLabel,
    init_event,
    labels_match,
)


class TestEvent:
    def test_ordering_by_thread_then_index(self):
        assert Event(0, 1) < Event(1, 0)
        assert Event(1, 0) < Event(1, 1)

    def test_po_prev_next(self):
        ev = Event(2, 3)
        assert ev.po_prev() == Event(2, 2)
        assert ev.po_next() == Event(2, 4)
        assert Event(2, 0).po_prev() is None

    def test_initial(self):
        assert init_event(0).is_initial
        assert init_event(0).tid == INIT_TID
        assert not Event(0, 0).is_initial

    def test_repr(self):
        assert repr(Event(1, 2)) == "E1.2"
        assert repr(init_event(3)) == "I3"

    def test_hashable_identity(self):
        assert Event(1, 2) == Event(1, 2)
        assert len({Event(1, 2), Event(1, 2), Event(1, 3)}) == 2


class TestMemOrder:
    def test_acquire_hierarchy(self):
        assert MemOrder.ACQ.is_acquire()
        assert MemOrder.ACQ_REL.is_acquire()
        assert MemOrder.SC.is_acquire()
        assert not MemOrder.RLX.is_acquire()
        assert not MemOrder.REL.is_acquire()

    def test_release_hierarchy(self):
        assert MemOrder.REL.is_release()
        assert MemOrder.ACQ_REL.is_release()
        assert MemOrder.SC.is_release()
        assert not MemOrder.ACQ.is_release()

    def test_sc(self):
        assert MemOrder.SC.is_sc()
        assert not MemOrder.ACQ_REL.is_sc()


class TestFenceKind:
    def test_full_fences(self):
        assert FenceKind.MFENCE.is_full()
        assert FenceKind.SYNC.is_full()
        assert not FenceKind.LWSYNC.is_full()
        assert not FenceKind.DMB_ST.is_full()


class TestLabels:
    def test_read_classification(self):
        lab = ReadLabel(loc="x")
        assert lab.is_read and lab.is_access
        assert not lab.is_write and not lab.is_fence
        assert lab.location == "x"

    def test_write_classification(self):
        lab = WriteLabel(loc="x", value=3)
        assert lab.is_write and lab.is_access
        assert lab.location == "x"

    def test_fence_classification(self):
        lab = FenceLabel(kind=FenceKind.SYNC)
        assert lab.is_fence and not lab.is_access
        assert lab.location is None

    def test_deps_union(self):
        a, b, c = Event(0, 0), Event(0, 1), Event(0, 2)
        lab = ReadLabel(
            loc="x",
            addr_deps=frozenset([a]),
            data_deps=frozenset([b]),
            ctrl_deps=frozenset([c]),
        )
        assert lab.deps == {a, b, c}

    def test_labels_match_ignores_deps(self):
        a = ReadLabel(loc="x", addr_deps=frozenset([Event(0, 0)]))
        b = ReadLabel(loc="x")
        assert labels_match(a, b)

    def test_labels_match_respects_content(self):
        assert not labels_match(ReadLabel(loc="x"), ReadLabel(loc="y"))
        assert not labels_match(
            WriteLabel(loc="x", value=1), WriteLabel(loc="x", value=2)
        )
        assert not labels_match(ReadLabel(loc="x"), WriteLabel(loc="x"))
        assert not labels_match(
            ReadLabel(loc="x", exclusive=True), ReadLabel(loc="x")
        )

    def test_init_is_write(self):
        lab = InitLabel(loc="x", value=0)
        assert lab.is_write
        assert "Init" in repr(lab)
