"""Tests for the benchmark harness and experiment drivers."""

from repro.bench import workloads as W
from repro.bench.harness import (
    Row,
    run_brute_force,
    run_dpor,
    run_hmc,
    run_interleaving,
    run_store_buffer,
)


class TestRunners:
    def test_run_hmc_row(self):
        row = run_hmc(W.sb_n(2), "tso")
        assert row.tool == "hmc"
        assert row.model == "tso"
        assert row.executions == 4
        assert row.time >= 0
        assert "duplicates" in row.extra

    def test_run_hmc_overrides(self):
        row = run_hmc(
            W.sb_n(2), "tso", tool_name="no-revisits", backward_revisits=False
        )
        assert row.tool == "no-revisits"
        assert row.executions < 4

    def test_run_brute_force_row(self):
        row = run_brute_force(W.sb_n(2), "tso")
        assert row.executions == 4
        assert row.extra["candidates"] >= 4

    def test_run_interleaving_row(self):
        row = run_interleaving(W.sb_n(2))
        assert row.extra["traces"] == 6
        assert row.executions == 3

    def test_run_dpor_row(self):
        row = run_dpor(W.sb_n(2))
        assert row.executions == 3
        assert row.extra["traces"] <= 6

    def test_run_store_buffer_row(self):
        row = run_store_buffer(W.sb_n(2), "tso")
        assert row.executions == 4

    def test_row_format(self):
        row = Row("b", "sc", "t", 1, 2, 3, 0.5, {"k": 7})
        text = row.format()
        assert "execs=1" in text and "errors=3" in text and "k=7" in text


class TestExperimentDrivers:
    def test_f3_distinguishes_models(self, capsys):
        from repro.bench.tables import f3_load_buffering

        rows = f3_load_buffering()
        by_key = {(r.bench, r.model, r.tool): r.executions for r in rows}
        assert by_key[("lb-chain(2)", "rc11", "hmc")] == 3
        assert by_key[("lb-chain(2)", "imm", "hmc")] == 4
        assert by_key[("lb-chain(2)", "imm", "hmc-no-revisit")] < 4

    def test_a1_shows_incompleteness(self, capsys):
        from repro.bench.tables import a1_ablation_revisits

        rows = a1_ablation_revisits()
        full = [r for r in rows if r.tool == "hmc"]
        crippled = [r for r in rows if r.tool == "no-revisits"]
        for f, c in zip(full, crippled):
            assert c.executions <= f.executions

    def test_all_experiments_registered(self):
        from repro.bench.tables import ALL_EXPERIMENTS

        assert set(ALL_EXPERIMENTS) == {
            "t1", "t2", "t3", "t4", "t5", "t6",
            "f1", "f2", "f3", "a1", "a2", "p1",
        }
