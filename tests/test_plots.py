"""Tests for the ASCII figure renderer."""

from repro.bench.harness import Row
from repro.bench.plots import f1_figure, render_series


class TestRenderSeries:
    def test_empty(self):
        assert "(no data)" in render_series({}, title="t")

    def test_marks_and_legend(self):
        chart = render_series(
            {"a": [(2, 10), (3, 100)], "b": [(2, 1000), (3, 100000)]},
            title="demo",
        )
        assert chart.startswith("demo")
        assert "o = a" in chart and "x = b" in chart
        assert "10^" in chart
        assert chart.count("o") >= 2  # both points plotted (plus legend)

    def test_higher_values_plot_higher(self):
        chart = render_series({"a": [(1, 1), (2, 100000)]})
        rows = [line for line in chart.splitlines() if "|" in line]
        first_mark = next(i for i, line in enumerate(rows) if "o" in line)
        last_mark = max(i for i, line in enumerate(rows) if "o" in line)
        assert first_mark < last_mark  # big value near the top


class TestF1Figure:
    def test_from_rows(self):
        rows = [
            Row("sb(2)", "sc", "hmc", 3, 0, 0, 0.0, {}),
            Row("sb(3)", "sc", "hmc", 7, 0, 0, 0.0, {}),
            Row("sb(2)", "sc", "interleaving", 3, 0, 0, 0.0, {"traces": 6}),
            Row("sb(3)", "sc", "interleaving", 7, 0, 0, 0.0, {"traces": 90}),
            Row("ainc(2)", "sc", "hmc", 6, 0, 0, 0.0, {}),  # ignored
        ]
        chart = f1_figure(rows)
        assert "hmc (sc)" in chart and "interleaving" in chart
        assert "vs n" in chart
