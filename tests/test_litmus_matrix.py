"""The model-validation suite: every litmus test against every model,
checked against the literature verdicts (experiment T1).

This is the single most load-bearing test in the repository: it pins
all nine memory models simultaneously.
"""

import pytest

from repro.litmus import MODELS, all_litmus_tests, allowed, litmus_names, run_litmus

CASES = [(name, model) for name in litmus_names() for model in MODELS]


@pytest.mark.parametrize("name,model", CASES, ids=[f"{n}-{m}" for n, m in CASES])
def test_litmus_verdict_matches_literature(name, model):
    from repro.litmus import get_litmus

    test = get_litmus(name)
    verdict = run_litmus(test, model)
    expected = allowed(name, model)
    assert verdict.observed == expected, (
        f"{name} under {model}: got "
        f"{'allowed' if verdict.observed else 'forbidden'}, literature says "
        f"{'allowed' if expected else 'forbidden'}"
    )


def test_corpus_covers_every_family():
    names = litmus_names()
    for family in ("SB", "MP", "LB", "IRIW", "WRC", "CoRR", "2xFAI"):
        assert any(n.startswith(family) for n in names)


def test_sc_never_allows_any_probe():
    """SC is the strongest model: every probed relaxation is forbidden."""
    for test in all_litmus_tests():
        assert not allowed(test.name, "sc")


def test_coherence_shapes_forbidden_everywhere():
    for name in ("CoRR", "CoWW", "CoWR", "CoRW1", "2xFAI", "CAS-race"):
        for model in MODELS:
            assert not allowed(name, model)


def test_monotonicity_tso_weaker_than_sc():
    """Everything SC allows, TSO allows (witnessed via the corpus)."""
    for test in all_litmus_tests():
        if allowed(test.name, "sc"):
            assert allowed(test.name, "tso")


def test_verdict_has_executions():
    from repro.litmus import get_litmus

    verdict = run_litmus(get_litmus("SB"), "tso")
    assert verdict.executions == 4
    assert str(verdict).startswith("SB")
