"""Unit tests for execution graphs."""

import pytest

from repro.events import Event, ReadLabel, WriteLabel
from repro.graphs import ExecutionGraph, GraphError


def simple_graph() -> ExecutionGraph:
    """T0: W x 1; R x  |  T1: W x 2."""
    g = ExecutionGraph(["x"])
    w0 = g.add_write(0, WriteLabel(loc="x", value=1))
    w1 = g.add_write(1, WriteLabel(loc="x", value=2))
    g.add_read(0, ReadLabel(loc="x"), w1)
    return g


class TestConstruction:
    def test_init_events(self):
        g = ExecutionGraph(["x", "y"])
        assert len(g.init_events()) == 2
        assert g.locations() == ["x", "y"]
        assert g.final_value("x") == 0

    def test_ensure_location_idempotent(self):
        g = ExecutionGraph()
        first = g.ensure_location("x")
        assert g.ensure_location("x") == first
        assert len(g.init_events()) == 1

    def test_add_write_coherence_positions(self):
        g = ExecutionGraph(["x"])
        w1 = g.add_write(0, WriteLabel(loc="x", value=1))
        w2 = g.add_write(1, WriteLabel(loc="x", value=2), co_index=1)
        order = g.co_order("x")
        assert order.index(w2) < order.index(w1)

    def test_add_write_bad_index(self):
        g = ExecutionGraph(["x"])
        with pytest.raises(GraphError):
            g.add_write(0, WriteLabel(loc="x", value=1), co_index=0)

    def test_add_read_requires_same_loc_write(self):
        g = ExecutionGraph(["x", "y"])
        wy = g.add_write(0, WriteLabel(loc="y", value=1))
        with pytest.raises(GraphError):
            g.add_read(1, ReadLabel(loc="x"), wy)

    def test_stamps_monotone(self):
        g = simple_graph()
        stamps = [g.stamp(e) for e in g.events_by_stamp()]
        assert stamps == sorted(stamps)


class TestAccessors:
    def test_thread_events_in_po(self):
        g = simple_graph()
        events = g.thread_events(0)
        assert [e.index for e in events] == [0, 1]

    def test_value_of(self):
        g = simple_graph()
        read = g.reads("x")[0]
        assert g.value_of(read) == 2

    def test_read_values_in_program_order(self):
        g = simple_graph()
        assert g.read_values(0) == [2]
        assert g.read_values(1) == []

    def test_readers_of(self):
        g = simple_graph()
        w1 = g.thread_events(1)[0]
        assert g.readers_of(w1) == g.reads("x")

    def test_final_value_tracks_co(self):
        g = ExecutionGraph(["x"])
        g.add_write(0, WriteLabel(loc="x", value=1))
        g.add_write(1, WriteLabel(loc="x", value=2), co_index=1)
        assert g.final_value("x") == 1

    def test_exclusive_pair(self):
        g = ExecutionGraph(["x"])
        r = g.add_read(0, ReadLabel(loc="x", exclusive=True), g.init_write("x"))
        w = g.add_write(0, WriteLabel(loc="x", value=1, exclusive=True))
        assert g.exclusive_pair(r) == w
        assert g.exclusive_pair(w) == r

    def test_exclusive_pair_absent(self):
        g = ExecutionGraph(["x"])
        r = g.add_read(0, ReadLabel(loc="x", exclusive=True), g.init_write("x"))
        assert g.exclusive_pair(r) is None


class TestCopy:
    def test_copy_independent(self):
        g = simple_graph()
        dup = g.copy()
        dup.add_write(1, WriteLabel(loc="x", value=3))
        assert len(dup) == len(g) + 1

    def test_copy_preserves_stamps(self):
        g = simple_graph()
        dup = g.copy()
        for ev in g.events():
            assert dup.stamp(ev) == g.stamp(ev)


class TestRestriction:
    def test_restrict_drops_suffix(self):
        g = simple_graph()
        read = g.reads("x")[0]
        kept = [e for e in g.events() if e != read]
        sub = g.restricted(kept)
        assert read not in sub
        assert len(sub) == len(g) - 1

    def test_restrict_rejects_po_gap(self):
        g = simple_graph()
        w0 = g.thread_events(0)[0]
        keep = [e for e in g.events() if e != w0]  # drops E0.0, keeps E0.1
        with pytest.raises(GraphError):
            g.restricted(keep)

    def test_restrict_rejects_dangling_rf(self):
        g = simple_graph()
        w1 = g.thread_events(1)[0]
        keep = [e for e in g.events() if e != w1]
        with pytest.raises(GraphError):
            g.restricted(keep)

    def test_restrict_keeps_co_order(self):
        g = ExecutionGraph(["x"])
        a = g.add_write(0, WriteLabel(loc="x", value=1))
        b = g.add_write(1, WriteLabel(loc="x", value=2), co_index=1)
        sub = g.restricted([a, b])
        assert sub.co_order("x") == g.co_order("x")

    def test_touch_moves_stamp_to_end(self):
        g = simple_graph()
        read = g.reads("x")[0]
        g.touch(read)
        assert g.events_by_stamp()[-1] == read

    def test_renumber_compacts(self):
        g = simple_graph()
        g.touch(g.reads("x")[0])
        g.renumber_stamps()
        stamps = sorted(g.stamp(e) for e in g.events())
        assert stamps == list(range(len(g)))


class TestFromParts:
    def test_roundtrip(self):
        labels = {
            0: [WriteLabel(loc="x", value=1), ReadLabel(loc="x")],
            1: [WriteLabel(loc="x", value=2)],
        }
        g = ExecutionGraph.from_parts(
            labels,
            rf_map={},
            co_orders={"x": [Event(0, 0), Event(1, 0)]},
        )
        assert g.thread_size(0) == 2
        assert g.final_value("x") == 2
        assert g.co_order("x")[0].is_initial

    def test_rejects_unknown_rf(self):
        with pytest.raises(GraphError):
            ExecutionGraph.from_parts(
                {0: [ReadLabel(loc="x")]},
                rf_map={Event(0, 0): Event(5, 5)},
                co_orders={},
            )

    def test_pretty_contains_events(self):
        g = simple_graph()
        text = g.pretty()
        assert "thread 0" in text and "co[x]" in text
