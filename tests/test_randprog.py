"""Tests for the random program generator used in differential testing."""

from repro.lang import Program
from repro.util.randprog import RandomProgramGenerator


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = RandomProgramGenerator(seed=3).program(0)
        b = RandomProgramGenerator(seed=3).program(0)
        assert repr(a.threads) == repr(b.threads)

    def test_different_seeds_differ(self):
        programs = {
            str(RandomProgramGenerator(seed=s).program(0).threads)
            for s in range(10)
        }
        assert len(programs) > 1

    def test_respects_thread_bound(self):
        gen = RandomProgramGenerator(seed=1, max_threads=2)
        for program in gen.programs(20):
            assert 2 <= program.num_threads <= 2 or program.num_threads == 2

    def test_feature_toggles(self):
        from repro.lang import Cas, Fai, Fence

        gen = RandomProgramGenerator(
            seed=1, with_rmws=False, with_fences=False, max_stmts=4
        )
        for program in gen.programs(20):
            for thread in program.threads:
                for st in thread:
                    assert not isinstance(st, (Cas, Fai, Fence))

    def test_programs_are_programs(self):
        gen = RandomProgramGenerator(seed=9)
        for program in gen.programs(5):
            assert isinstance(program, Program)
            assert program.location_bases()

    def test_programs_verifiable(self):
        from repro import verify

        gen = RandomProgramGenerator(seed=11, max_stmts=2)
        for program in gen.programs(5):
            result = verify(program, "sc", stop_on_error=False)
            assert result.executions >= 1
