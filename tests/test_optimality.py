"""Exploration-efficiency guarantees.

The paper's headline: the number of explored complete graphs tracks
the number of consistent executions, not the (exponentially larger)
number of interleavings.  These tests pin (a) zero duplicates on the
standard corpora for the porf-acyclic models, (b) bounded duplicate
overhead elsewhere (reported, suppressed), and (c) the exponential
separation against trace-based exploration.
"""

import pytest

from repro import verify
from repro.baselines import explore_interleavings, explore_store_buffers
from repro.bench import workloads as W
from repro.litmus import all_litmus_tests


class TestNoDuplicatesOnCorpus:
    # jobs=1: duplicate-freedom is a property of the serial DFS; the
    # parallel engine legitimately reports cross-worker re-discoveries
    # as duplicates (docs/PARALLEL.md), so these pins must not be
    # routed through a REPRO_JOBS pool

    @pytest.mark.parametrize("model", ["sc", "tso", "ra", "rc11"])
    def test_litmus_corpus_duplicate_free(self, model):
        for test in all_litmus_tests():
            result = verify(test.program, model, stop_on_error=False, jobs=1)
            assert result.duplicates == 0, (test.name, model)

    @pytest.mark.parametrize("model", ["sc", "tso"])
    def test_workloads_duplicate_free_without_rmws(self, model):
        for program in (W.sb_n(3), W.readers(3), W.ninc(2), W.fib_bench(2)):
            result = verify(program, model, stop_on_error=False, jobs=1)
            assert result.duplicates == 0, (program.name, model)


class TestBoundedDuplicates:
    def test_rmw_heavy_duplicates_bounded(self):
        """RMW revisit chains may retread graphs; the overhead must stay
        within a small multiple of the useful work."""
        for program in (W.ainc(3), W.casrot(3)):
            result = verify(program, "imm", stop_on_error=False, jobs=1)
            assert result.duplicates <= result.executions, program.name

    def test_duplicates_reported_not_counted(self):
        result = verify(W.ainc(3), "imm", stop_on_error=False, jobs=1)
        assert result.executions == 24  # 3! orders x 4 checker reads
        assert result.explored == result.executions + result.duplicates


class TestSeparationFromTraces:
    def test_interleaving_blowup_sb(self):
        for n in (2, 3):
            program = W.sb_n(n)
            hmc = verify(program, "sc", stop_on_error=False)
            traces = explore_interleavings(program)
            assert hmc.executions < traces.traces
        # the gap widens with n
        gap2 = explore_interleavings(W.sb_n(2)).traces / 3
        gap3 = explore_interleavings(W.sb_n(3)).traces / 7
        assert gap3 > gap2

    def test_store_buffer_blowup_tso(self):
        program = W.sb_n(2)
        hmc = verify(program, "tso", stop_on_error=False)
        op = explore_store_buffers(program, "tso")
        assert op.traces >= 10 * hmc.executions

    def test_exploration_work_scales_with_executions(self):
        small = verify(W.sb_n(2), "tso", stop_on_error=False)
        large = verify(W.sb_n(3), "tso", stop_on_error=False)
        assert large.stats.events_added < 40 * small.stats.events_added
