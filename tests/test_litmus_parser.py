"""Tests for the column-style litmus parser."""

import pytest

from repro.litmus.parser import LitmusParseError, parse_litmus
from repro.litmus.runner import run_litmus

SB = """
// the classic store-buffering test
SB-parsed
{ x=0; y=0 }
P0          | P1          ;
x = 1       | y = 1       ;
r0 = y      | r0 = x      ;
exists (0:r0=0 /\\ 1:r0=0)
"""

MP_FENCES = """
MP+fences-parsed
P0          | P1          ;
d = 1       | r0 = f      ;
mfence      | mfence      ;
f = 1       | r1 = d      ;
exists (1:r0=1 /\\ 1:r1=0)
"""

RMW = """
2xFAI-parsed
P0              | P1              ;
r0 = FAI(c, 1)  | r0 = FAI(c, 1)  ;
exists (0:r0=0 /\\ 1:r0=0)
"""

REL_ACQ = """
MP+rel+acq-parsed
P0          | P1          ;
d = 1       | r0 =acq f   ;
f =rel 1    | r1 = d      ;
exists (1:r0=1 /\\ 1:r1=0)
"""

COND = """
ctrl-parsed
P0                  | P1        ;
r0 = y              | y = 1     ;
if r0 == 1: x = 1   | -         ;
exists (x=1)
"""


class TestParsing:
    def test_sb_shape(self):
        test = parse_litmus(SB)
        assert test.name == "SB-parsed"
        assert test.program.num_threads == 2
        assert len(test.program.threads[0]) == 2

    def test_verdicts_match_builtin(self):
        test = parse_litmus(SB)
        assert run_litmus(test, "sc").observed is False
        assert run_litmus(test, "tso").observed is True

    def test_fences(self):
        test = parse_litmus(MP_FENCES)
        assert run_litmus(test, "tso").observed is False
        assert run_litmus(test, "power").observed is False

    def test_rmw(self):
        test = parse_litmus(RMW)
        for model in ("sc", "imm"):
            assert run_litmus(test, model).observed is False

    def test_orderings(self):
        test = parse_litmus(REL_ACQ)
        assert run_litmus(test, "rc11").observed is False
        assert run_litmus(test, "power").observed is True

    def test_conditional_and_state_probe(self):
        test = parse_litmus(COND)
        assert run_litmus(test, "sc").observed is True


class TestErrors:
    def test_empty(self):
        with pytest.raises(LitmusParseError):
            parse_litmus("")

    def test_bad_header(self):
        with pytest.raises(LitmusParseError):
            parse_litmus("t\nP1 | P0 ;\nx = 1 | y = 1 ;")

    def test_ragged_rows(self):
        with pytest.raises(LitmusParseError):
            parse_litmus("t\nP0 | P1 ;\nx = 1 ;")

    def test_unknown_register_in_exists(self):
        bad = "t\nP0 ;\nx = 1 ;\nexists (0:r9=1)"
        with pytest.raises(LitmusParseError):
            parse_litmus(bad)

    def test_register_before_set(self):
        with pytest.raises(LitmusParseError):
            parse_litmus("t\nP0 ;\nx = r0 ;")

    def test_bad_ordering_suffix(self):
        with pytest.raises(LitmusParseError):
            parse_litmus("t\nP0 ;\nx =wild 1 ;")
