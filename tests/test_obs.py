"""Tests for the observability layer (repro.obs).

Covers the metrics registry semantics, phase-timer nesting, the trace
round-trip (emit → JSONL → parse → aggregate), the null backend's
no-record guarantee, the progress heartbeat, and the CLI surfacing
(`--stats/--trace-out`, `trace-summary`, `--version`).
"""

import io
import json

import pytest

from repro import ExplorationOptions, ProgramBuilder, verify
from repro.cli import main
from repro.obs import (
    NULL_OBSERVER,
    Histogram,
    MemorySink,
    MetricsRegistry,
    NullObserver,
    Observer,
    ProgressReporter,
    TraceWriter,
    format_summary,
    parse_trace,
    read_trace,
    summarize_file,
    summarize_records,
)


def sb_program():
    p = ProgramBuilder("SB")
    t0 = p.thread()
    t0.store("x", 1)
    a = t0.load("y")
    t1 = p.thread()
    t1.store("y", 1)
    b = t1.load("x")
    p.observe(a, b)
    return p.build()


class TestMetricsRegistry:
    def test_counters(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2)
        reg.inc("b", 0.5)
        assert reg.counters == {"a": 3, "b": 0.5}

    def test_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.gauge("depth", 3)
        reg.gauge("depth", 7)
        assert reg.gauges["depth"] == 7

    def test_histogram_stats_and_buckets(self):
        reg = MetricsRegistry()
        for v in (1, 2, 3, 100, 1000):
            reg.observe("sizes", v)
        hist = reg.histograms["sizes"]
        assert hist.count == 5
        assert hist.min == 1 and hist.max == 1000
        assert hist.total == 1106
        data = hist.as_dict()
        assert data["buckets"]["le_1"] == 1
        assert data["buckets"]["le_128"] == 1  # the 100
        assert data["buckets"]["inf"] == 1  # the 1000
        assert sum(data["buckets"].values()) == 5

    def test_histogram_overflow_bucket(self):
        h = Histogram(bounds=(1, 2))
        for v in (0.5, 1.5, 99):
            h.observe(v)
        assert h.counts == [1, 1, 1]
        assert h.mean == pytest.approx((0.5 + 1.5 + 99) / 3)

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with reg.phase("p"):
            pass
        snap = reg.snapshot()
        assert snap["counters"] == {"x": 1}
        assert "p" in snap["phases"]


class TestPhaseTimers:
    def test_single_phase_accumulates(self):
        t = [0.0]

        def clock():
            t[0] += 1.0
            return t[0]

        reg = MetricsRegistry(clock=clock)
        with reg.phase("work"):
            pass  # enter at 1, exit at 2 → 1s
        stat = reg.phase_stats()["work"]
        assert stat.calls == 1
        assert stat.total == pytest.approx(1.0)
        assert stat.self_time == pytest.approx(1.0)

    def test_nesting_attributes_self_time_to_inner(self):
        t = [0.0]

        def clock():
            t[0] += 1.0
            return t[0]

        reg = MetricsRegistry(clock=clock)
        with reg.phase("outer"):      # enter: t=1
            with reg.phase("inner"):  # enter: t=2
                pass                  # exit:  t=3 → inner total/self = 1
        # outer exit: t=4 → outer total 3, self 3 - 1 = 2
        outer = reg.phase_stats()["outer"]
        inner = reg.phase_stats()["inner"]
        assert inner.total == pytest.approx(1.0)
        assert inner.self_time == pytest.approx(1.0)
        assert outer.total == pytest.approx(3.0)
        assert outer.self_time == pytest.approx(2.0)
        # sum of self times never exceeds the outermost total
        assert inner.self_time + outer.self_time == pytest.approx(outer.total)

    def test_sibling_phases_both_charged_to_parent(self):
        t = [0.0]

        def clock():
            t[0] += 1.0
            return t[0]

        reg = MetricsRegistry(clock=clock)
        with reg.phase("parent"):
            with reg.phase("a"):
                pass
            with reg.phase("b"):
                pass
        parent = reg.phase_stats()["parent"]
        assert parent.self_time == pytest.approx(
            parent.total
            - reg.phase_stats()["a"].total
            - reg.phase_stats()["b"].total
        )

    def test_phase_report_is_json_ready(self):
        reg = MetricsRegistry()
        with reg.phase("p"):
            pass
        json.dumps(reg.phase_report())  # must not raise


class TestTraceRoundTrip:
    def test_emit_parse_aggregate(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = Observer.to_file(str(path))
        result = verify(sb_program(), "tso", observer=obs)
        obs.close()
        records = read_trace(str(path))
        # every line parsed back as a dict with a type and a sequence
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs)
        assert records[0]["t"] == "trace_start"
        assert records[-1]["t"] == "run_end"
        summary = summarize_records(records)
        assert summary.executions == result.executions == 4
        assert summary.blocked == result.blocked
        assert summary.duplicates == result.duplicates
        assert summary.events_added == result.stats.events_added
        assert summary.revisits_performed == result.stats.revisits_performed
        assert summary.phases  # run_end embeds the phase report
        assert summary.elapsed is not None

    def test_summary_matches_result_on_blocked_run(self, tmp_path):
        p = ProgramBuilder("assume-block")
        t0 = p.thread()
        t0.store("x", 1)
        t1 = p.thread()
        r = t1.load("x")
        t1.assume(r.eq(1))
        program = p.build()
        path = tmp_path / "run.jsonl"
        obs = Observer.to_file(str(path))
        result = verify(program, "sc", observer=obs)
        obs.close()
        summary = summarize_file(str(path))
        assert result.blocked > 0
        assert summary.blocked == result.blocked
        assert summary.executions == result.executions

    def test_memory_sink_bounds_records(self):
        sink = MemorySink(capacity=3)
        writer = TraceWriter(sink)  # writes trace_start
        for i in range(5):
            writer.emit("event_added", tid=0)
        assert len(sink.records) == 3
        assert sink.dropped == 3  # trace_start + 2 events displaced

    def test_parse_trace_rejects_garbage(self):
        with pytest.raises(ValueError, match="line 2"):
            list(parse_trace(['{"t": "ok"}', "not json"]))
        with pytest.raises(ValueError, match="not a trace record"):
            list(parse_trace(['["no", "type"]']))

    def test_format_summary_is_text(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs = Observer.to_file(str(path))
        verify(sb_program(), "tso", observer=obs)
        obs.close()
        text = format_summary(summarize_file(str(path)))
        assert "executions : 4" in text
        assert "time by phase:" in text


class TestNullBackend:
    def test_null_observer_records_nothing(self):
        obs = NULL_OBSERVER
        obs.emit("event_added", tid=0)
        obs.inc("x")
        obs.tick(executions=1)
        with obs.phase("p"):
            pass
        assert obs.phase_report() == {}
        assert obs.metrics_snapshot() == {}

    def test_default_run_has_no_phase_times(self):
        result = verify(sb_program(), "tso")
        assert result.phase_times == {}
        assert result.executions == 4

    def test_null_and_observed_runs_agree(self):
        plain = verify(sb_program(), "tso")
        obs = Observer.in_memory()
        watched = verify(sb_program(), "tso", observer=obs)
        assert plain.executions == watched.executions
        assert plain.blocked == watched.blocked
        assert plain.stats.as_dict() == watched.stats.as_dict()

    def test_observer_without_trace_adds_no_records(self):
        # metrics-only observer: phases are timed but nothing is traced
        obs = Observer()
        result = verify(sb_program(), "tso", observer=obs)
        assert obs.records() == []
        assert not obs.trace_enabled
        assert result.phase_times  # timing still collected

    def test_model_observer_detached_after_run(self):
        from repro.models import get_model

        obs = Observer()
        verify(sb_program(), "tso", observer=obs)
        assert get_model("tso")._observer is NULL_OBSERVER

    def test_null_observer_is_shared_and_disabled(self):
        assert isinstance(NULL_OBSERVER, NullObserver)
        assert not NULL_OBSERVER.enabled
        assert not NULL_OBSERVER.trace_enabled


class TestProgress:
    def test_heartbeat_every_n_graphs(self):
        stream = io.StringIO()
        rep = ProgressReporter(every_graphs=2, every_seconds=None, stream=stream)
        for i in range(5):
            rep.tick(executions=i)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2  # after ticks 2 and 4
        assert "graphs" in lines[0] and "executions=1" in lines[0]

    def test_heartbeat_every_t_seconds(self):
        t = [0.0]

        def clock():
            return t[0]

        stream = io.StringIO()
        rep = ProgressReporter(
            every_seconds=1.0, stream=stream, clock=clock
        )
        rep.tick()          # t=0: not due
        t[0] = 1.5
        rep.tick()          # due
        assert rep.beats == 1

    def test_finish_emits_final_line_even_without_beats(self):
        # a run short enough to finish inside one interval still gets
        # its one summary line (previously finish() was silent here)
        stream = io.StringIO()
        rep = ProgressReporter(every_graphs=100, every_seconds=None, stream=stream)
        rep.tick()
        rep.finish(executions=1)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert "done" in lines[0] and "executions=1" in lines[0]

    def test_progress_env_cadence(self, monkeypatch):
        from repro.obs.progress import PROGRESS_ENV, parse_progress_spec

        assert parse_progress_spec("500") == (500, None)
        assert parse_progress_spec("2s") == (None, 2.0)
        assert parse_progress_spec("1000,5s") == (1000, 5.0)
        assert parse_progress_spec("5s 1000") == (1000, 5.0)
        with pytest.raises(ValueError):
            parse_progress_spec("abc")
        with pytest.raises(ValueError):
            parse_progress_spec("-3")
        monkeypatch.setenv(PROGRESS_ENV, "2")
        stream = io.StringIO()
        rep = ProgressReporter(stream=stream)
        assert rep.every_graphs == 2 and rep.every_seconds is None
        for i in range(4):
            rep.tick()
        assert rep.beats == 2
        # explicit arguments win over the environment
        rep = ProgressReporter(every_graphs=7, stream=stream)
        assert rep.every_graphs == 7

    def test_explorer_ticks_progress(self):
        stream = io.StringIO()
        rep = ProgressReporter(every_graphs=1, every_seconds=None, stream=stream)
        obs = Observer(progress=rep)
        verify(sb_program(), "tso", observer=obs)
        assert rep.beats >= 4  # one per completed graph, plus the final line

    def test_baselines_tick_progress(self):
        from repro.baselines import (
            explore_dpor,
            explore_interleavings,
            explore_store_buffers,
        )

        for explore in (explore_interleavings, explore_dpor):
            stream = io.StringIO()
            rep = ProgressReporter(
                every_graphs=1, every_seconds=None, stream=stream
            )
            explore(sb_program(), progress=rep)
            assert rep.beats > 0, explore.__name__
        stream = io.StringIO()
        rep = ProgressReporter(every_graphs=1, every_seconds=None, stream=stream)
        explore_store_buffers(sb_program(), "tso", progress=rep)
        assert rep.beats > 0


class TestOptionsValidation:
    def test_rejects_nonpositive_max_events(self):
        with pytest.raises(ValueError, match="max_events"):
            ExplorationOptions(max_events=0)
        with pytest.raises(ValueError, match="max_events"):
            ExplorationOptions(max_events=-5)

    def test_rejects_negative_limits(self):
        with pytest.raises(ValueError, match="max_executions"):
            ExplorationOptions(max_executions=-1)
        with pytest.raises(ValueError, match="max_explored"):
            ExplorationOptions(max_explored=-1)

    def test_accepts_valid_options(self):
        opts = ExplorationOptions(
            max_events=10, max_executions=0, max_explored=None
        )
        assert opts.max_events == 10


class TestCliSurface:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        from repro import __version__

        assert __version__ in capsys.readouterr().out

    def test_verify_stats_and_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        code = main(
            [
                "verify",
                "SB",
                "--model",
                "tso",
                "--stats",
                "--trace-out",
                str(trace),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "executions: 4" in out
        assert "time by phase:" in out
        assert trace.exists()
        assert summarize_file(str(trace)).executions == 4

    def test_verify_litmus_name_fallback(self, capsys):
        assert main(["verify", "SB", "--model", "sc"]) == 0
        assert "executions: 3" in capsys.readouterr().out

    def test_trace_summary_command(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        main(["verify", "SB", "--model", "tso", "--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["trace-summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "executions : 4" in out

    def test_trace_summary_json(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        main(["verify", "SB", "--model", "tso", "--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["trace-summary", str(trace), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["executions"] == 4
        assert data["model"] == "tso"

    def test_trace_summary_missing_file(self, capsys):
        assert main(["trace-summary", "/nonexistent/x.jsonl"]) == 2

    def test_verify_progress_flag(self, capsys):
        assert main(["verify", "SB", "--model", "tso", "--progress", "0"]) == 0


class TestBenchTelemetry:
    def test_instrumented_row_carries_phases(self):
        from repro.bench import run_hmc, rows_to_json

        row = run_hmc(sb_program(), "tso", instrument=True)
        assert "phases" in row.extra
        assert row.extra["phases"]  # at least one phase timed
        data = json.loads(rows_to_json([row]))
        assert data[0]["extra"]["phases"]

    def test_uninstrumented_row_has_no_phases(self):
        from repro.bench import run_hmc

        row = run_hmc(sb_program(), "tso")
        assert "phases" not in row.extra

    def test_format_phases_shares(self):
        from repro.bench import format_phases

        text = format_phases({"a": 3.0, "b": 1.0})
        assert "a 75%" in text and "b 25%" in text
        assert format_phases({}) == ""

    def test_markdown_report_formats_phases(self):
        from repro.bench.harness import Row
        from repro.bench.report import _rows_to_markdown

        row = Row(
            bench="x",
            model="sc",
            tool="hmc",
            executions=1,
            blocked=0,
            errors=0,
            time=0.1,
            extra={"duplicates": 0, "phases": {"check:coherence": 1.0}},
        )
        text = "\n".join(_rows_to_markdown([row]))
        # per-phase self-times surface as dedicated columns now
        assert "checks (s)" in text
        assert "| 1.000 |" in text
        assert "duplicates=0" in text
