"""Tests for inconsistency diagnosis and cycle extraction."""

from repro.events import Event, ReadLabel, WriteLabel
from repro.graphs import ExecutionGraph
from repro.models import explain_inconsistency, get_model
from repro.relations import Relation


class TestFindCycle:
    def test_acyclic_returns_none(self):
        assert Relation([(1, 2), (2, 3)]).find_cycle() is None

    def test_two_cycle(self):
        cycle = Relation([(1, 2), (2, 1)]).find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {1, 2}

    def test_self_loop(self):
        cycle = Relation([(5, 5)]).find_cycle()
        assert cycle == [5, 5]

    def test_cycle_is_a_real_path(self):
        rel = Relation([(1, 2), (2, 3), (3, 1), (0, 1)])
        cycle = rel.find_cycle()
        for a, b in zip(cycle, cycle[1:]):
            assert (a, b) in rel

    def test_consistent_with_is_acyclic(self):
        import random

        rng = random.Random(5)
        for _ in range(50):
            pairs = [
                (rng.randrange(6), rng.randrange(6)) for _ in range(8)
            ]
            rel = Relation(pairs)
            assert (rel.find_cycle() is None) == rel.is_acyclic()


class TestExplain:
    def test_consistent_graph(self):
        g = ExecutionGraph(["x"])
        g.add_write(0, WriteLabel(loc="x", value=1))
        diagnosis = explain_inconsistency(g, get_model("sc"))
        assert diagnosis.consistent
        assert str(diagnosis) == "consistent"

    def test_coherence_violation_names_cycle(self):
        g = ExecutionGraph(["x"])
        g.ensure_location("x")
        g._labels[Event(0, 0)] = ReadLabel(loc="x")
        g._labels[Event(0, 1)] = WriteLabel(loc="x", value=1)
        g._threads[0] = [Event(0, 0), Event(0, 1)]
        g._stamp[Event(0, 0)] = 50
        g._stamp[Event(0, 1)] = 51
        g._co["x"].append(Event(0, 1))
        g._rf[Event(0, 0)] = Event(0, 1)  # reads own po-later write
        diagnosis = explain_inconsistency(g, get_model("sc"))
        assert not diagnosis.consistent
        assert "coherence" in diagnosis.axiom
        assert diagnosis.cycle is not None

    def test_atomicity_violation_named(self):
        g = ExecutionGraph(["x"])
        g.add_read(0, ReadLabel(loc="x", exclusive=True), g.init_write("x"))
        g.add_write(1, WriteLabel(loc="x", value=9))  # co index 1
        g.add_write(0, WriteLabel(loc="x", value=1, exclusive=True))
        diagnosis = explain_inconsistency(g, get_model("sc"))
        assert diagnosis.axiom == "atomicity"
        assert "intervenes" in diagnosis.detail

    def test_global_axiom_fallback(self):
        # relaxed SB graph: coherent and atomic but not SC
        g = ExecutionGraph(["x", "y"])
        g.add_write(0, WriteLabel(loc="x", value=1))
        g.add_read(0, ReadLabel(loc="y"), g.init_write("y"))
        g.add_write(1, WriteLabel(loc="y", value=1))
        g.add_read(1, ReadLabel(loc="x"), g.init_write("x"))
        diagnosis = explain_inconsistency(g, get_model("sc"))
        assert "sc global axiom" in diagnosis.axiom
        # the same graph is fine one model down
        assert explain_inconsistency(g, get_model("tso")).consistent
