"""Odds and ends: option limits, report strings, small branches."""

import pytest

from repro import ExplorationOptions, Explorer, verify
from repro.core.result import ErrorReport, Stats
from repro.lang import ProgramBuilder
from repro.models import get_model


class TestLimits:
    def test_max_events_safety_bound(self):
        p = ProgramBuilder("wide")
        for _ in range(3):
            t = p.thread()
            for v in (1, 2):
                t.store("x", v)
        result = verify(p.build(), "sc", stop_on_error=False, max_events=4)
        assert result.truncated

    def test_max_explored_counts_duplicates(self):
        from repro.bench.workloads import ainc

        result = verify(
            ainc(3), "sc", stop_on_error=False, max_explored=10
        )
        assert result.truncated
        assert result.explored >= 10


class TestStrings:
    def test_error_report_str(self):
        report = ErrorReport("boom", 2, "witness text")
        assert "thread 2" in str(report) and "boom" in str(report)

    def test_stats_as_dict_complete(self):
        stats = Stats()
        d = stats.as_dict()
        assert d["events_added"] == 0
        assert "revisits_performed" in d

    def test_summary_lists_first_error(self):
        p = ProgramBuilder("e")
        t = p.thread()
        a = t.load("x")
        t.assert_(a.eq(1), "nope")
        result = verify(p.build(), "sc")
        assert "first error" in result.summary()

    def test_model_repr(self):
        assert repr(get_model("imm")) == "<model imm>"


class TestEmptyAndDegenerate:
    def test_zero_thread_program(self):
        p = ProgramBuilder("none")
        result = verify(p.build(), "sc", stop_on_error=False)
        assert result.executions == 1

    def test_fence_only_thread(self):
        from repro.events import FenceKind

        p = ProgramBuilder("fences")
        t = p.thread()
        t.fence(FenceKind.SYNC)
        t.fence(FenceKind.LWSYNC)
        result = verify(p.build(), "power", stop_on_error=False)
        assert result.executions == 1

    def test_read_only_program_all_models(self):
        p = ProgramBuilder("reads")
        regs = []
        for _ in range(2):
            t = p.thread()
            regs.append(t.load("x"))
        p.observe(*regs)
        for model in ("sc", "power"):
            result = verify(p.build(), model, stop_on_error=False)
            assert result.executions == 1  # only the initial value exists

    def test_assume_false_always_blocked(self):
        p = ProgramBuilder("never")
        t = p.thread()
        r = t.fresh_reg()
        t.assign(r, 0)
        t.assume(r.eq(1))
        result = verify(p.build(), "sc", stop_on_error=False)
        assert result.executions == 0 and result.blocked == 1


class TestExplorerApiEdges:
    def test_unknown_model_raises(self):
        p = ProgramBuilder("x")
        p.thread().store("x", 1)
        with pytest.raises(KeyError):
            Explorer(p.build(), "not-a-model", ExplorationOptions())

    def test_collect_executions_graphs_are_complete(self):
        p = ProgramBuilder("g")
        t = p.thread()
        t.store("x", 1)
        result = verify(
            p.build(), "sc", stop_on_error=False, collect_executions=True
        )
        (graph,) = result.execution_graphs
        assert graph.thread_size(0) == 1
