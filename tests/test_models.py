"""Unit tests for the memory-model layer on hand-built graphs."""

import pytest

from repro.events import (
    Event,
    FenceKind,
    FenceLabel,
    MemOrder,
    ReadLabel,
    WriteLabel,
)
from repro.graphs import ExecutionGraph
from repro.models import all_models, get_model, model_names
from repro.models.common import (
    atomicity_ok,
    fence_orders,
    hardware_prefix_preds,
    sc_per_location,
)


class TestRegistry:
    def test_all_models_present(self):
        assert model_names() == [
            "armv8", "coherence", "imm", "power", "pso",
            "ra", "rc11", "sc", "tso",
        ]

    def test_lookup_case_insensitive(self):
        assert get_model("TSO").name == "tso"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_model("x86-but-wrong")

    def test_porf_acyclicity_flags(self):
        porf_acyclic = {m.name for m in all_models() if m.porf_acyclic}
        assert porf_acyclic == {"sc", "tso", "pso", "ra", "rc11"}


def sb_graph(stale_both: bool) -> ExecutionGraph:
    """SB with both reads stale (the relaxed outcome) or one fresh."""
    g = ExecutionGraph(["x", "y"])
    wx = g.add_write(0, WriteLabel(loc="x", value=1))
    g.add_read(0, ReadLabel(loc="y"), g.init_write("y"))
    g.add_write(1, WriteLabel(loc="y", value=1))
    g.add_read(
        1, ReadLabel(loc="x"), g.init_write("x") if stale_both else wx
    )
    return g


def coherence_violation() -> ExecutionGraph:
    """A read observing a po-later same-location write."""
    g = ExecutionGraph(["x"])
    g.ensure_location("x")
    # build manually: R x then W x in one thread, read from own later write
    w_label = WriteLabel(loc="x", value=1)
    g._labels[Event(0, 0)] = ReadLabel(loc="x")
    g._labels[Event(0, 1)] = w_label
    g._threads[0] = [Event(0, 0), Event(0, 1)]
    g._stamp[Event(0, 0)] = 100
    g._stamp[Event(0, 1)] = 101
    g._co["x"].append(Event(0, 1))
    g._rf[Event(0, 0)] = Event(0, 1)
    return g


class TestCommonAxioms:
    def test_sc_per_location_accepts_sb(self):
        assert sc_per_location(sb_graph(True))

    def test_sc_per_location_rejects_corw(self):
        assert not sc_per_location(coherence_violation())

    def test_atomicity_accepts_adjacent(self):
        g = ExecutionGraph(["x"])
        r = g.add_read(0, ReadLabel(loc="x", exclusive=True), g.init_write("x"))
        g.add_write(0, WriteLabel(loc="x", value=1, exclusive=True))
        assert atomicity_ok(g)

    def test_atomicity_rejects_intervening_write(self):
        g = ExecutionGraph(["x"])
        g.add_read(0, ReadLabel(loc="x", exclusive=True), g.init_write("x"))
        g.add_write(1, WriteLabel(loc="x", value=9))  # squeezes in at co 1
        g.add_write(0, WriteLabel(loc="x", value=1, exclusive=True))
        assert not atomicity_ok(g)

    def test_every_model_shares_coherence(self):
        bad = coherence_violation()
        for model in all_models():
            assert not model.is_consistent(bad), model.name


class TestModelSeparation:
    """SB with both reads stale is *the* separating example."""

    def test_sc_rejects_relaxed_sb(self):
        assert not get_model("sc").is_consistent(sb_graph(True))

    def test_sc_accepts_sequential_sb(self):
        assert get_model("sc").is_consistent(sb_graph(False))

    @pytest.mark.parametrize(
        "name", ["tso", "pso", "ra", "rc11", "imm", "armv8", "power", "coherence"]
    )
    def test_weak_models_accept_relaxed_sb(self, name):
        assert get_model(name).is_consistent(sb_graph(True))


class TestFenceOrders:
    def test_full_fences_order_everything(self):
        for before in "RW":
            for after in "RW":
                assert fence_orders(FenceKind.SYNC, MemOrder.SC, before, after)
                assert fence_orders(FenceKind.MFENCE, MemOrder.SC, before, after)

    def test_lwsync_skips_store_load(self):
        assert not fence_orders(FenceKind.LWSYNC, MemOrder.SC, "W", "R")
        assert fence_orders(FenceKind.LWSYNC, MemOrder.SC, "R", "R")
        assert fence_orders(FenceKind.LWSYNC, MemOrder.SC, "W", "W")

    def test_dmb_variants(self):
        assert fence_orders(FenceKind.DMB_LD, MemOrder.SC, "R", "W")
        assert not fence_orders(FenceKind.DMB_LD, MemOrder.SC, "W", "W")
        assert fence_orders(FenceKind.DMB_ST, MemOrder.SC, "W", "W")
        assert not fence_orders(FenceKind.DMB_ST, MemOrder.SC, "W", "R")

    def test_c11_fence_orders_by_strength(self):
        assert fence_orders(FenceKind.C11, MemOrder.SC, "W", "R")
        assert fence_orders(FenceKind.C11, MemOrder.ACQ, "R", "W")
        assert not fence_orders(FenceKind.C11, MemOrder.ACQ, "W", "W")
        assert fence_orders(FenceKind.C11, MemOrder.REL, "W", "W")
        assert not fence_orders(FenceKind.C11, MemOrder.REL, "W", "R")
        assert not fence_orders(FenceKind.C11, MemOrder.RLX, "W", "W")


class TestHardwarePrefix:
    def test_independent_po_pred_absent(self):
        g = ExecutionGraph(["x", "y"])
        g.add_read(0, ReadLabel(loc="x"), g.init_write("x"))
        w = g.add_write(0, WriteLabel(loc="y", value=1))
        preds = hardware_prefix_preds(g, w)
        assert preds == []  # no dep, different location: reorderable

    def test_data_dependent_pred_present(self):
        g = ExecutionGraph(["x", "y"])
        r = g.add_read(0, ReadLabel(loc="x"), g.init_write("x"))
        w = g.add_write(
            0, WriteLabel(loc="y", value=0, data_deps=frozenset([r]))
        )
        assert r in hardware_prefix_preds(g, w)

    def test_same_location_pred_present(self):
        g = ExecutionGraph(["x"])
        r = g.add_read(0, ReadLabel(loc="x"), g.init_write("x"))
        w = g.add_write(0, WriteLabel(loc="x", value=1))
        assert r in hardware_prefix_preds(g, w)

    def test_fence_between_orders(self):
        g = ExecutionGraph(["x", "y"])
        r = g.add_read(0, ReadLabel(loc="x"), g.init_write("x"))
        g.add_fence(0, FenceLabel(kind=FenceKind.SYNC))
        w = g.add_write(0, WriteLabel(loc="y", value=1))
        assert r in hardware_prefix_preds(g, w)

    def test_release_write_ordered_after_everything(self):
        g = ExecutionGraph(["x", "y"])
        r = g.add_read(0, ReadLabel(loc="x"), g.init_write("x"))
        w = g.add_write(0, WriteLabel(loc="y", value=1, order=MemOrder.REL))
        assert r in hardware_prefix_preds(g, w)
        # ... unless the model ignores annotations (POWER)
        assert r not in hardware_prefix_preds(g, w, annotations=False)

    def test_rf_source_always_present(self):
        g = ExecutionGraph(["x"])
        w = g.add_write(0, WriteLabel(loc="x", value=1))
        r = g.add_read(1, ReadLabel(loc="x"), w)
        assert w in hardware_prefix_preds(g, r)
