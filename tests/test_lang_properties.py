"""Property-based tests of the interpreter (hypothesis).

The stateless-model-checking contract: per-thread execution is a pure,
prefix-stable function of the read-value history.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import ReadLabel, labels_match
from repro.lang import ProgramBuilder, ReplayStatus, replay
from repro.util.randprog import RandomProgramGenerator

seeds = st.integers(min_value=0, max_value=10_000)
values = st.lists(st.integers(min_value=0, max_value=3), max_size=8)


def random_thread(seed: int):
    gen = RandomProgramGenerator(seed=seed, max_threads=2, max_stmts=4)
    return gen.program(0).threads[0]


@given(seeds, values)
@settings(max_examples=80)
def test_replay_deterministic(seed, vals):
    stmts = random_thread(seed)
    assert replay(stmts, 0, vals) == replay(stmts, 0, vals)


@given(seeds, values)
@settings(max_examples=80)
def test_replay_prefix_stable(seed, vals):
    """Extending the value history never changes already-emitted labels."""
    stmts = random_thread(seed)
    short = replay(stmts, 0, vals[: max(0, len(vals) - 1)])
    full = replay(stmts, 0, vals)
    for a, b in zip(short.labels, full.labels):
        assert labels_match(a, b)


@given(seeds, values)
@settings(max_examples=80)
def test_reads_consumed_in_order(seed, vals):
    stmts = random_thread(seed)
    rep = replay(stmts, 0, vals)
    n_reads = sum(1 for lab in rep.labels if isinstance(lab, ReadLabel))
    assert n_reads <= len(vals) + (
        1 if rep.status is ReplayStatus.NEEDS_VALUE else 0
    )
    if rep.status is ReplayStatus.NEEDS_VALUE:
        assert n_reads == len(vals)


@given(seeds, values)
@settings(max_examples=80)
def test_max_events_is_a_prefix(seed, vals):
    stmts = random_thread(seed)
    full = replay(stmts, 0, vals)
    for cut in range(len(full.labels) + 1):
        part = replay(stmts, 0, vals, max_events=cut)
        assert len(part.labels) <= cut
        for a, b in zip(part.labels, full.labels):
            assert labels_match(a, b)


@given(seeds, values)
@settings(max_examples=60)
def test_dependencies_point_at_earlier_reads(seed, vals):
    stmts = random_thread(seed)
    rep = replay(stmts, 0, vals)
    read_positions = {
        i for i, lab in enumerate(rep.labels) if isinstance(lab, ReadLabel)
    }
    for i, lab in enumerate(rep.labels):
        for dep in lab.deps:
            assert dep.index < i
            assert dep.index in read_positions


@given(values)
def test_straight_line_thread_ignores_values(vals):
    p = ProgramBuilder("w")
    t = p.thread()
    t.store("x", 1)
    t.store("y", 2)
    stmts = p.build().threads[0]
    assert replay(stmts, 0, vals).labels == replay(stmts, 0, []).labels
