"""Unit tests for the repro.cat DSL: lexer, parser, evaluator,
CatModel adapter, linter, and registry integration."""

import pickle

import pytest

from repro.cat import (
    CatError,
    CatEvalError,
    CatModel,
    CatSyntaxError,
    CatTypeError,
    lint_source,
    load_cat_file,
    parse_cat,
)
from repro.cat.ast import Binary, Postfix, Var
from repro.cat.eval import Env
from repro.cat.lexer import tokenize
from repro.core import verify
from repro.litmus import get_litmus, run_litmus
from repro.models import get_model, register_file, unregister
from repro.relations import Relation

SC_SOURCE = '"plain SC"\nlet com = rf | co | fr\nacyclic po | com as sc\n'


def graphs_of(name="SB", model="coherence"):
    """All consistent execution graphs of a litmus test."""
    result = verify(
        get_litmus(name).program,
        model,
        stop_on_error=False,
        collect_executions=True,
    )
    assert result.execution_graphs
    return result.execution_graphs


# -- lexer ----------------------------------------------------------------


class TestLexer:
    def test_tokens_and_positions(self):
        tokens, _ = tokenize("let x = po ; rf")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "ident", "=", "ident", ";", "ident", "eof"]
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[3].text == "po"

    def test_nested_comments_preserved(self):
        tokens, comments = tokenize("(* a (* nested *) b *) po")
        assert [t.kind for t in tokens] == ["ident", "eof"]
        assert "nested" in comments[0].text

    def test_line_comments(self):
        tokens, _ = tokenize("po // trailing\n# full line\nrf")
        assert [t.text for t in tokens if t.kind == "ident"] == ["po", "rf"]

    def test_inverse_operator(self):
        tokens, _ = tokenize("rf^-1")
        assert [t.kind for t in tokens] == ["ident", "^-1", "eof"]

    def test_unterminated_comment(self):
        with pytest.raises(CatSyntaxError):
            tokenize("(* never closed")


# -- parser ---------------------------------------------------------------


class TestParser:
    def test_title_and_directives(self):
        spec = parse_cat('"My model"\n(* repro: name=m porf_acyclic=false *)\nacyclic po as x\n')
        assert spec.title == "My model"
        assert spec.directives == {"name": "m", "porf_acyclic": "false"}

    def test_union_binds_loosest(self):
        spec = parse_cat("acyclic a | b ; c as t")
        expr = spec.constraints[0].expr
        assert isinstance(expr, Binary) and expr.op == "|"
        assert isinstance(expr.right, Binary) and expr.right.op == ";"

    def test_difference_between_seq_and_inter(self):
        # \ binds tighter than ; and looser than &
        spec = parse_cat("acyclic a ; b \\ c & d as t")
        expr = spec.constraints[0].expr
        assert expr.op == ";"
        assert expr.right.op == "\\"
        assert expr.right.right.op == "&"

    def test_postfix_tightest(self):
        spec = parse_cat("acyclic po | rf+ as t")
        expr = spec.constraints[0].expr
        assert expr.op == "|"
        assert isinstance(expr.right, Postfix) and expr.right.op == "+"

    def test_star_binary_vs_postfix(self):
        # `W * R` is cartesian; trailing `rf*` is a closure
        binary = parse_cat("acyclic W * R as t").constraints[0].expr
        assert isinstance(binary, Binary) and binary.op == "*"
        postfix = parse_cat("acyclic rf* as t").constraints[0].expr
        assert isinstance(postfix, Postfix) and postfix.op == "*"

    def test_let_rec_and_groups(self):
        spec = parse_cat("let rec a = po | (a ; a) and b = a\nacyclic b as t")
        let = spec.lets[0]
        assert let.recursive
        assert [binding.name for binding in let.bindings] == ["a", "b"]

    def test_error_position(self):
        with pytest.raises(CatSyntaxError) as err:
            parse_cat("let x =\nacyclic po as t")
        assert err.value.line == 2

    def test_include_unsupported(self):
        with pytest.raises(CatSyntaxError, match="include"):
            parse_cat('include "sc.cat"')

    def test_unknown_directive_rejected(self):
        with pytest.raises(CatSyntaxError, match="frobnicate"):
            CatModel.from_source("(* repro: frobnicate=1 *)\nacyclic po as t")


# -- evaluator ------------------------------------------------------------


class TestEval:
    def eval_str(self, graph, text):
        spec = parse_cat(f"acyclic {text} as probe")
        return Env(graph, spec).eval(spec.constraints[0].expr)

    def test_base_relations_match_derived(self):
        from repro.graphs.derived import po, rf

        for graph in graphs_of():
            assert self.eval_str(graph, "po") == po(graph)
            assert self.eval_str(graph, "rf") == rf(graph)

    def test_rf_within_write_read_product(self):
        for graph in graphs_of():
            rf_rel = self.eval_str(graph, "rf")
            wr = self.eval_str(graph, "W * R")
            assert set(rf_rel.pairs()) <= set(wr.pairs())

    def test_bracket_equals_set_lift(self):
        for graph in graphs_of():
            assert self.eval_str(graph, "[W] ; po") == self.eval_str(
                graph, "W ; po"
            )

    def test_inverse_and_optional(self):
        graph = graphs_of()[0]
        rf_rel = self.eval_str(graph, "rf")
        assert self.eval_str(graph, "rf^-1") == rf_rel.inverse()
        opt = self.eval_str(graph, "rf?")
        assert opt == rf_rel | Relation.identity(graph.events())

    def test_fixpoint_rec_equals_closure(self):
        graph = graphs_of()[0]
        spec = parse_cat(
            "let rec hb = po | rf | (hb ; hb)\nacyclic hb as t"
        )
        env = Env(graph, spec)
        direct = self.eval_str(graph, "(po | rf)+")
        assert env.eval(spec.constraints[0].expr) == direct

    def test_self_reference_without_rec(self):
        graph = graphs_of()[0]
        spec = parse_cat("let x = x | po\nacyclic x as t")
        with pytest.raises(CatEvalError, match="let rec"):
            Env(graph, spec).eval(spec.constraints[0].expr)

    def test_type_errors(self):
        graph = graphs_of()[0]
        for bad in ("po | W", "[po]", "W+", "rf * po", "R & po"):
            with pytest.raises(CatTypeError):
                self.eval_str(graph, bad)

    def test_unknown_name_lists_known(self):
        graph = graphs_of()[0]
        with pytest.raises(CatEvalError, match="known names"):
            self.eval_str(graph, "nonsense")

    def test_empty_constraint_on_set_and_relation(self):
        graph = graphs_of()[0]
        spec = parse_cat("empty MFENCE as no-fences\nempty rmw as no-rmw")
        env = Env(graph, spec)
        assert env.check(spec.constraints[0])
        assert env.check(spec.constraints[1])


# -- CatModel -------------------------------------------------------------


class TestCatModel:
    def test_from_source_runs_litmus(self):
        model = CatModel.from_source(SC_SOURCE, name="my-sc")
        verdict = run_litmus(get_litmus("SB"), model)
        reference = run_litmus(get_litmus("SB"), "sc")
        assert verdict.observed == reference.observed
        assert verdict.executions == reference.executions

    def test_defaults(self):
        model = CatModel.from_source("acyclic po as t")
        assert model.name == "cat"
        assert model.porf_acyclic is True
        assert model.prefix_mode == "porf"

    def test_porf_false_defaults_hardware_prefix(self):
        model = CatModel.from_source(
            "(* repro: porf_acyclic=false *)\nacyclic po-loc as t"
        )
        assert model.prefix_mode == "hardware"

    def test_bad_prefix_mode(self):
        with pytest.raises(CatSyntaxError, match="prefix"):
            CatModel.from_source("(* repro: prefix=sideways *)\nacyclic po as t")

    def test_pickle_roundtrip(self):
        model = CatModel.from_source(SC_SOURCE, name="my-sc")
        clone = pickle.loads(pickle.dumps(model))
        assert clone.name == "my-sc"
        assert clone.porf_acyclic == model.porf_acyclic
        before = run_litmus(get_litmus("MP"), model)
        after = run_litmus(get_litmus("MP"), clone)
        assert before.observed == after.observed
        assert before.executions == after.executions

    def test_failed_constraints_named(self):
        model = CatModel.from_source(SC_SOURCE, name="sc-twin")
        result = verify(
            get_litmus("SB").program,
            "tso",
            stop_on_error=False,
            collect_executions=True,
        )
        failing = [
            g for g in result.execution_graphs if not model.axiom_holds(g)
        ]
        assert failing  # SB's store-buffering graph violates SC
        assert model.failed_constraints(failing[0]) == ["sc"]

    def test_env_memoised_per_version(self):
        model = CatModel.from_source(SC_SOURCE)
        graph = graphs_of()[0]
        assert model.env(graph) is model.env(graph)


class TestLoadFile:
    def test_name_precedence(self, tmp_path):
        path = tmp_path / "weird-stem.cat"
        path.write_text("(* repro: name=directive *)\nacyclic po as t\n")
        assert load_cat_file(str(path)).name == "directive"
        assert load_cat_file(str(path), name="arg").name == "arg"
        path.write_text("acyclic po as t\n")
        assert load_cat_file(str(path)).name == "weird-stem"

    def test_load_rejects_lint_errors(self, tmp_path):
        path = tmp_path / "bad.cat"
        path.write_text("let x = bogus\nacyclic x as t\n")
        with pytest.raises(CatError) as err:
            load_cat_file(str(path))
        assert "bogus" in str(err.value)
        assert str(path) in str(err.value)

    def test_missing_file_is_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_cat_file(str(tmp_path / "absent.cat"))


# -- linter ---------------------------------------------------------------


class TestLint:
    def errors(self, source):
        return [d for d in lint_source(source) if d.severity == "error"]

    def warnings(self, source):
        return [d for d in lint_source(source) if d.severity == "warning"]

    def test_clean_file(self):
        assert lint_source(SC_SOURCE) == []

    def test_unknown_name(self):
        (diag,) = self.errors("acyclic wibble as t")
        assert "wibble" in diag.message and diag.line == 1

    def test_use_before_definition_suggests_rec(self):
        diags = self.errors("let a = b\nlet b = po\nacyclic a | b as t")
        assert any("let rec" in d.message for d in diags)

    def test_kind_mismatch(self):
        assert self.errors("acyclic W as t")
        assert self.errors("acyclic po | W as t")
        assert self.errors("acyclic [rf] as t")

    def test_warnings(self):
        assert any(
            "shadows" in d.message for d in self.warnings("let po = rf\nacyclic po as t")
        )
        assert any(
            "no constraints" in d.message for d in self.warnings("let a = po")
        )
        assert any(
            "unused" in d.message
            for d in self.warnings("let a = po\nacyclic rf as t")
        )

    def test_parse_error_is_single_diagnostic(self):
        diags = lint_source("let = po")
        assert len(diags) == 1 and diags[0].severity == "error"


# -- registry -------------------------------------------------------------


class TestRegistry:
    def test_case_insensitive_lookup(self):
        assert get_model("TSO") is get_model("tso")
        assert get_model("  Sc ") is get_model("sc")

    def test_keyerror_lists_names(self):
        with pytest.raises(KeyError) as err:
            get_model("alpha21264")
        message = str(err.value)
        assert "sc" in message and "tso" in message

    def test_non_string_name(self):
        with pytest.raises(TypeError):
            get_model(42)

    def test_register_file_roundtrip(self, tmp_path):
        path = tmp_path / "mine.cat"
        path.write_text('"mine"\n(* repro: name=mine-sc *)\n' + SC_SOURCE.split("\n", 1)[1])
        try:
            model = register_file(str(path))
            assert get_model("MINE-SC") is model
            with pytest.raises(ValueError, match="duplicate"):
                register_file(str(path))
            register_file(str(path), replace=True)
        finally:
            unregister("mine-sc")
        with pytest.raises(KeyError):
            get_model("mine-sc")
