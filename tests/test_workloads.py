"""Behavioural tests for the benchmark workloads: the verification
verdicts every workload is *designed* to produce (experiment T5's
ground truth)."""

import pytest

from repro import count_executions, verify
from repro.bench import workloads as W


class TestCounting:
    def test_sb_n_counts(self):
        # n reads with 2 rf choices each; SC forbids exactly the
        # all-stale assignment
        assert count_executions(W.sb_n(2), "sc") == 3
        assert count_executions(W.sb_n(2), "tso") == 4
        assert count_executions(W.sb_n(3), "sc") == 7
        assert count_executions(W.sb_n(3), "tso") == 8

    def test_ainc_counts_are_factorial_times_read(self):
        # 2 updates in either order x 3 rf choices for the checker read
        assert count_executions(W.ainc(2), "sc") == 6
        # 3! orders x 4 choices
        assert count_executions(W.ainc(3), "sc") == 24

    def test_readers_counts(self):
        assert count_executions(W.readers(2), "sc") == 4
        assert count_executions(W.readers(3), "armv8") == 8

    def test_casrot_single_winner(self):
        # thread 0's CAS(0->1) always succeeds; thread 1's CAS(1->2)
        # either observes it (and fires) or reads the initial 0 (fails)
        result = verify(W.casrot(2), "sc", stop_on_error=False)
        assert result.executions == 2

    def test_ninc_lost_update(self):
        result = verify(W.ninc(2), "sc", stop_on_error=False)
        states = {dict(s)["c"] for s in result.final_states}
        assert states == {1, 2}  # the lost update shows up as c=1


class TestLocksSafe:
    @pytest.mark.parametrize("model", ["sc", "tso", "armv8"])
    def test_relaxed_ticket_lock_safe_on_strong_models(self, model):
        # TSO keeps W->W and R->R order; ARMv8's multi-copy atomicity
        # (coe/fre inside ob) also suffices — cross-checked against the
        # brute-force ground truth
        assert verify(W.ticket_lock(2), model, stop_on_error=False).ok

    @pytest.mark.parametrize("model", ["imm", "power"])
    def test_relaxed_ticket_lock_broken_on_weak_models(self, model):
        # with rlx accesses the unlock does not order the critical
        # section's writes: the next owner can observe them reordered
        assert not verify(W.ticket_lock(2), model, stop_on_error=False).ok

    @pytest.mark.parametrize("model", ["sc", "tso", "ra", "rc11", "imm", "armv8"])
    def test_acq_rel_ticket_lock_safe(self, model):
        from repro.events import MemOrder

        program = W.ticket_lock(2, MemOrder.ACQ_REL)
        assert verify(program, model, stop_on_error=False).ok

    @pytest.mark.parametrize("model", ["sc", "tso"])
    def test_relaxed_ttas_lock_safe_on_strong_models(self, model):
        assert verify(W.ttas_lock(2), model, stop_on_error=False).ok

    @pytest.mark.parametrize("model", ["imm", "armv8"])
    def test_acq_rel_ttas_lock_safe_on_weak_models(self, model):
        from repro.events import MemOrder

        program = W.ttas_lock(2, MemOrder.ACQ_REL)
        assert verify(program, model, stop_on_error=False).ok

    def test_ticket_lock_three_threads(self):
        result = verify(W.ticket_lock(3), "sc", stop_on_error=False)
        assert result.ok and result.executions > 0


class TestFencePlacement:
    def test_peterson_safe_under_sc(self):
        assert verify(W.peterson(False), "sc", stop_on_error=False).ok

    def test_peterson_broken_under_tso(self):
        result = verify(W.peterson(False), "tso", stop_on_error=False)
        assert not result.ok

    def test_peterson_fixed_by_mfence(self):
        assert verify(W.peterson(True), "tso", stop_on_error=False).ok

    def test_dekker_safe_sc_broken_tso_fixed_fence(self):
        assert verify(W.dekker(False), "sc", stop_on_error=False).ok
        assert not verify(W.dekker(False), "tso", stop_on_error=False).ok
        assert verify(W.dekker(True), "tso", stop_on_error=False).ok

    def test_seqlock_safe_with_annotations(self):
        for model in ("sc", "tso", "ra", "rc11", "imm", "armv8"):
            assert verify(W.seqlock(1, 1), model, stop_on_error=False).ok, model

    def test_seqlock_broken_on_power(self):
        # POWER ignores C11 annotations: the snapshot can tear
        result = verify(W.seqlock(1, 1), "power", stop_on_error=False)
        assert not result.ok


class TestSynchronisation:
    def test_mp_chain_delivers_data(self):
        result = verify(W.mp_chain(2), "sc", stop_on_error=False)
        assert result.executions == 1
        assert all(v == 42 for key in result.outcomes for _, v in key)

    def test_barrier_safe_with_acq_rel(self):
        for model in ("sc", "ra", "imm"):
            assert verify(W.barrier(2), model, stop_on_error=False).ok, model

    def test_indexer_both_inserted(self):
        result = verify(W.indexer(2), "sc", stop_on_error=False)
        for state in result.final_states:
            values = {v for loc, v in state if loc.startswith("tab")}
            assert values == {1, 2}

    def test_lastzero_counts_grow_with_model(self):
        sc = count_executions(W.lastzero(2), "sc")
        imm = count_executions(W.lastzero(2), "imm")
        assert imm >= sc > 0

    def test_fib_has_executions(self):
        assert count_executions(W.fib_bench(2), "sc") == 19


class TestFamiliesTable:
    def test_families_all_buildable(self):
        for name, family in W.FAMILIES.items():
            program = family(2)
            assert program.num_threads >= 1, name
