"""Unit tests for the revisit machinery itself."""

from repro.core import ExplorationOptions
from repro.core.result import Stats
from repro.core.revisits import (
    backward_revisits,
    maximally_added,
    replay_matches,
    revisit_candidates,
)
from repro.events import ReadLabel, WriteLabel
from repro.graphs import ExecutionGraph
from repro.lang import ProgramBuilder
from repro.models import get_model


def lb_program():
    p = ProgramBuilder("LB")
    t1 = p.thread(); t1.load("x"); t1.store("y", 1)
    t2 = p.thread(); t2.load("y"); t2.store("x", 1)
    return p.build()


def lb_graph_before_last_write():
    """LB after adding: R x(init); W y; R y(from W y) — then W x arrives."""
    g = ExecutionGraph(["x", "y"])
    g.add_read(0, ReadLabel(loc="x"), g.init_write("x"))
    wy = g.add_write(0, WriteLabel(loc="y", value=1))
    g.add_read(1, ReadLabel(loc="y"), wy)
    wx = g.add_write(1, WriteLabel(loc="x", value=1))
    return g, wx


class TestCandidates:
    def test_porf_prefix_blocks_lb_revisit(self):
        g, wx = lb_graph_before_last_write()
        candidates, _ = revisit_candidates(g, wx, get_model("rc11"))
        assert candidates == []  # the x-read is porf-before the write

    def test_dependency_prefix_allows_lb_revisit(self):
        g, wx = lb_graph_before_last_write()
        candidates, _ = revisit_candidates(g, wx, get_model("imm"))
        assert candidates == g.reads("x")

    def test_own_exclusive_read_never_a_candidate(self):
        g = ExecutionGraph(["x"])
        g.add_read(0, ReadLabel(loc="x", exclusive=True), g.init_write("x"))
        w = g.add_write(0, WriteLabel(loc="x", value=1, exclusive=True))
        candidates, _ = revisit_candidates(g, w, get_model("imm"))
        assert candidates == []


class TestMaximality:
    def test_read_of_co_max_is_maximal(self):
        g = ExecutionGraph(["x"])
        w = g.add_write(0, WriteLabel(loc="x", value=1))
        r = g.add_read(1, ReadLabel(loc="x"), w)
        assert maximally_added(g, r)

    def test_read_of_older_write_not_maximal(self):
        g = ExecutionGraph(["x"])
        g.add_write(0, WriteLabel(loc="x", value=1))
        r = g.add_read(1, ReadLabel(loc="x"), g.init_write("x"))
        assert not maximally_added(g, r)

    def test_co_max_write_is_maximal(self):
        g = ExecutionGraph(["x"])
        w = g.add_write(0, WriteLabel(loc="x", value=1))
        assert maximally_added(g, w)

    def test_write_passed_by_older_write_not_maximal(self):
        g = ExecutionGraph(["x"])
        g.add_write(0, WriteLabel(loc="x", value=1))
        w2 = g.add_write(1, WriteLabel(loc="x", value=2), co_index=1)
        assert not maximally_added(g, w2)  # the older write sits co-after

    def test_later_write_placed_before_does_not_disqualify(self):
        g = ExecutionGraph(["x"])
        w1 = g.add_write(0, WriteLabel(loc="x", value=1))
        g.add_write(1, WriteLabel(loc="x", value=2), co_index=1)
        assert maximally_added(g, w1)  # judged against *older* events only

    def test_fences_always_maximal(self):
        from repro.events import FenceLabel

        g = ExecutionGraph(["x"])
        f = g.add_fence(0, FenceLabel())
        assert maximally_added(g, f)


class TestBackwardRevisits:
    def test_lb_revisit_produced_under_imm(self):
        program = lb_program()
        g, wx = lb_graph_before_last_write()
        out = backward_revisits(
            g, wx, program, get_model("imm"), ExplorationOptions(), Stats()
        )
        assert len(out) == 1
        revisited = out[0]
        rx = revisited.reads("x")[0]
        assert revisited.rf(rx) == wx
        # the revisited read was re-stamped to the end
        assert revisited.events_by_stamp()[-1] == rx

    def test_lb_revisit_blocked_under_rc11(self):
        program = lb_program()
        g, wx = lb_graph_before_last_write()
        stats = Stats()
        out = backward_revisits(
            g, wx, program, get_model("rc11"), ExplorationOptions(), stats
        )
        assert out == []
        assert stats.revisits_rejected_prefix > 0

    def test_replay_validation_rejects_value_dependent_keeps(self):
        """If the kept suffix depends on the revisited read's value, the
        revisit is invalid and must be dropped."""
        p = ProgramBuilder("dep")
        t1 = p.thread()
        a = t1.load("x")
        t1.store("y", a)  # data-dependent
        t2 = p.thread()
        t2.load("y")
        t2.store("x", 1)
        program = p.build()

        g = ExecutionGraph(["x", "y"])
        g.add_read(0, ReadLabel(loc="x"), g.init_write("x"))
        wy = g.add_write(0, WriteLabel(loc="y", value=0))
        g.add_read(1, ReadLabel(loc="y"), wy)
        wx = g.add_write(1, WriteLabel(loc="x", value=1))
        # under coherence-only the read is outside the prefix ONLY if
        # deps are ignored; simulate a too-weak prefix via a stub model
        model = get_model("coherence")

        class NoDepPrefix(type(model)):
            def prefix_preds(self, graph, ev):
                out = []
                if graph.label(ev).is_read:
                    src = graph.rf(ev)
                    if not src.is_initial:
                        out.append(src)
                return out

        stats = Stats()
        out = backward_revisits(
            g, wx, program, NoDepPrefix(), ExplorationOptions(), stats
        )
        assert out == []
        assert stats.revisits_rejected_replay > 0

    def test_replay_matches_on_valid_graph(self):
        program = lb_program()
        g, _ = lb_graph_before_last_write()
        assert replay_matches(program, g)
