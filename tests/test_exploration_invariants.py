"""Property-based invariants over every graph the explorer produces.

These run the real explorer on random programs and assert structural
well-formedness of each complete execution graph — the internal
soundness conditions everything else builds on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import verify
from repro.events import ReadLabel, WriteLabel, labels_match
from repro.graphs.derived import po_loc, rf, co, fr
from repro.lang import replay
from repro.relations import union
from repro.util.randprog import RandomProgramGenerator

MODELS = ("sc", "tso", "imm", "power")
seeds = st.integers(min_value=0, max_value=500)
models = st.sampled_from(MODELS)


def explored_graphs(seed: int, model: str):
    gen = RandomProgramGenerator(seed=seed, max_threads=2, max_stmts=2)
    program = gen.program(0)
    result = verify(
        program, model, stop_on_error=False, collect_executions=True
    )
    return program, result.execution_graphs


@given(seeds, models)
@settings(max_examples=40, deadline=None)
def test_rf_well_formed(seed, model):
    _, graphs = explored_graphs(seed, model)
    for graph in graphs:
        for read in graph.reads():
            src = graph.rf(read)
            assert src in graph
            src_label = graph.label(src)
            assert isinstance(src_label, WriteLabel)
            assert src_label.loc == graph.label(read).location


@given(seeds, models)
@settings(max_examples=40, deadline=None)
def test_co_contains_every_write_once(seed, model):
    _, graphs = explored_graphs(seed, model)
    for graph in graphs:
        for loc in graph.locations():
            order = graph.co_order(loc)
            assert len(order) == len(set(order))
            assert order[0].is_initial
            for w in order:
                assert graph.label(w).location == loc


@given(seeds, models)
@settings(max_examples=40, deadline=None)
def test_per_location_coherence_always_holds(seed, model):
    _, graphs = explored_graphs(seed, model)
    for graph in graphs:
        rel = union(po_loc(graph), rf(graph), co(graph), fr(graph))
        assert rel.is_acyclic()


@given(seeds, models)
@settings(max_examples=40, deadline=None)
def test_graphs_replay_to_themselves(seed, model):
    program, graphs = explored_graphs(seed, model)
    for graph in graphs:
        for tid in graph.thread_ids():
            n = graph.thread_size(tid)
            rep = replay(
                program.threads[tid], tid, graph.read_values(tid), max_events=n
            )
            assert len(rep.labels) == n
            for ev, label in zip(graph.thread_events(tid), rep.labels):
                assert labels_match(graph.label(ev), label)


@given(seeds, models)
@settings(max_examples=40, deadline=None)
def test_exclusive_writes_follow_their_reads(seed, model):
    _, graphs = explored_graphs(seed, model)
    for graph in graphs:
        for ev in graph.events():
            label = graph.label(ev)
            if isinstance(label, WriteLabel) and label.exclusive:
                prev = ev.po_prev()
                assert prev is not None and prev in graph
                rlabel = graph.label(prev)
                assert isinstance(rlabel, ReadLabel) and rlabel.exclusive
                # atomicity: co-adjacent to the read's source
                order = graph.co_order(label.loc)
                assert order.index(ev) == order.index(graph.rf(prev)) + 1


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_stronger_model_explores_subset(seed):
    gen = RandomProgramGenerator(seed=seed, max_threads=2, max_stmts=2)
    program = gen.program(0)
    from repro.graphs import canonical_key

    def keys(model):
        result = verify(
            program, model, stop_on_error=False, collect_executions=True
        )
        return {canonical_key(g) for g in result.execution_graphs}

    assert keys("sc") <= keys("tso") <= keys("coherence")
