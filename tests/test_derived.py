"""Unit tests for derived relations over execution graphs."""

from repro.events import Event, FenceKind, FenceLabel, ReadLabel, WriteLabel
from repro.graphs import ExecutionGraph
from repro.graphs.derived import (
    co,
    co_imm,
    dependency,
    eco,
    external,
    fences,
    fr,
    internal,
    po,
    po_imm,
    po_loc,
    reads,
    rf,
    rfe,
    rfi,
    rmw_pairs,
    writes,
)


def mp_graph() -> ExecutionGraph:
    """T0: W d 1; W f 1  |  T1: R f (from W f); R d (from init)."""
    g = ExecutionGraph(["d", "f"])
    g.add_write(0, WriteLabel(loc="d", value=1))
    wf = g.add_write(0, WriteLabel(loc="f", value=1))
    g.add_read(1, ReadLabel(loc="f"), wf)
    g.add_read(1, ReadLabel(loc="d"), g.init_write("d"))
    return g


class TestProgramOrder:
    def test_po_is_transitive_within_thread(self):
        g = mp_graph()
        a, b = g.thread_events(0)
        assert (a, b) in po(g)

    def test_po_excludes_cross_thread(self):
        g = mp_graph()
        assert not any(x.tid != y.tid for x, y in po(g).pairs())

    def test_po_imm_only_adjacent(self):
        g = ExecutionGraph(["x"])
        for v in (1, 2, 3):
            g.add_write(0, WriteLabel(loc="x", value=v))
        a, b, c = g.thread_events(0)
        rel = po_imm(g)
        assert (a, b) in rel and (b, c) in rel and (a, c) not in rel

    def test_po_loc_same_location_only(self):
        g = ExecutionGraph(["x", "y"])
        g.add_write(0, WriteLabel(loc="x", value=1))
        g.add_write(0, WriteLabel(loc="y", value=1))
        g.add_write(0, WriteLabel(loc="x", value=2))
        a, b, c = g.thread_events(0)
        rel = po_loc(g)
        assert (a, c) in rel and (a, b) not in rel


class TestCommunication:
    def test_rf_direction(self):
        g = mp_graph()
        wf = g.thread_events(0)[1]
        rff = g.thread_events(1)[0]
        assert (wf, rff) in rf(g)

    def test_rfe_vs_rfi(self):
        g = ExecutionGraph(["x"])
        w = g.add_write(0, WriteLabel(loc="x", value=1))
        g.add_read(0, ReadLabel(loc="x"), w)  # internal
        g.add_read(1, ReadLabel(loc="x"), w)  # external
        assert len(rfi(g)) == 1 and len(rfe(g)) == 1
        # reads from the initialisation write count as external
        g2 = mp_graph()
        assert all(p in rfe(g2) for p in rf(g2).pairs())

    def test_co_total_per_location(self):
        g = ExecutionGraph(["x"])
        g.add_write(0, WriteLabel(loc="x", value=1))
        g.add_write(1, WriteLabel(loc="x", value=2))
        assert co(g).is_total_on(g.writes("x"))
        assert len(co_imm(g)) == 2  # init->w1, w1->w2

    def test_fr_from_init_read(self):
        g = mp_graph()
        rd = g.thread_events(1)[1]
        wd = g.thread_events(0)[0]
        assert (rd, wd) in fr(g)

    def test_fr_empty_for_co_max_read(self):
        g = mp_graph()
        rff = g.thread_events(1)[0]
        assert not [p for p in fr(g).pairs() if p[0] == rff]

    def test_eco_composes(self):
        g = mp_graph()
        rd = g.thread_events(1)[1]
        wd = g.thread_events(0)[0]
        assert (rd, wd) in eco(g)  # via fr
        assert (g.init_write("d"), wd) in eco(g)  # via co

    def test_external_internal_split(self):
        g = ExecutionGraph(["x"])
        w = g.add_write(0, WriteLabel(loc="x", value=1))
        g.add_read(0, ReadLabel(loc="x"), w)
        rel = rf(g)
        assert len(internal(rel)) == 1
        assert len(external(rel)) == 0


class TestEventSets:
    def test_reads_writes_fences(self):
        g = mp_graph()
        g.add_fence(0, FenceLabel(kind=FenceKind.SYNC))
        assert len(reads(g)) == 2
        assert len(writes(g)) == 4  # 2 inits + 2 stores
        assert len(fences(g)) == 1


class TestRmwAndDeps:
    def test_rmw_pairs(self):
        g = ExecutionGraph(["x"])
        r = g.add_read(0, ReadLabel(loc="x", exclusive=True), g.init_write("x"))
        w = g.add_write(0, WriteLabel(loc="x", value=1, exclusive=True))
        assert (r, w) in rmw_pairs(g)

    def test_dependency_kinds(self):
        g = ExecutionGraph(["x", "y"])
        r = g.add_read(0, ReadLabel(loc="x"), g.init_write("x"))
        g.add_write(
            0,
            WriteLabel(loc="y", value=0, data_deps=frozenset([r])),
        )
        w = g.thread_events(0)[1]
        assert (r, w) in dependency(g, "d")
        assert (r, w) not in dependency(g, "a")
        assert (r, w) in dependency(g, "adc")
