"""Tests for the state-hashing (stateful MC) baseline."""

from repro.baselines import explore_interleavings, explore_with_state_hashing
from repro.bench.workloads import ninc, sb_n
from repro.lang import ProgramBuilder
from repro.litmus import get_litmus


class TestStateHashing:
    def test_final_states_match_interleaving(self):
        for program in (get_litmus("SB").program, sb_n(3), ninc(2)):
            st = explore_with_state_hashing(program)
            il = explore_interleavings(program)
            assert st.final_states == il.final_states, program.name

    def test_states_fewer_than_traces_on_diamonds(self):
        # sb(3): 90 traces but only 51 distinct states — the diamond
        # collapse stateful MC exists for
        program = sb_n(3)
        st = explore_with_state_hashing(program)
        il = explore_interleavings(program)
        assert st.states < il.traces

    def test_error_detection(self):
        p = ProgramBuilder("err")
        t = p.thread()
        a = t.load("x")
        t.assert_(a.eq(0), "saw it")
        p.thread().store("x", 1)
        result = explore_with_state_hashing(p.build())
        assert result.errors > 0

    def test_blocked_detection(self):
        p = ProgramBuilder("blocked")
        t = p.thread()
        a = t.load("x")
        t.assume(a.eq(1))
        p.thread().store("x", 1)
        result = explore_with_state_hashing(p.build())
        assert result.blocked > 0
        assert len(result.final_states) == 1

    def test_rmw_atomic(self):
        program = get_litmus("2xFAI").program
        result = explore_with_state_hashing(program)
        # final counter is always 2: no lost updates through the RMWs
        finals = {dict(f).get("c") for f in result.final_states}
        assert finals == {2}

    def test_converging_histories_merge(self):
        # two independent stores commute: 4 interleaving traces of the
        # two orders collapse into a diamond of 4 states (incl. start)
        p = ProgramBuilder("diamond")
        p.thread().store("x", 1)
        p.thread().store("y", 1)
        result = explore_with_state_hashing(p.build())
        assert result.states == 4
        assert result.terminal == 1


class TestCrossOracle:
    def test_final_states_match_hmc_on_random_programs(self):
        """Third oracle triangle: stateful MC's reachable final memory
        equals HMC's under SC.  The operational state only materialises
        written cells, and `final_state` only reports written cells, so
        the comparison is over the same domain modulo explicit zero
        writes — normalise by dropping zero-valued cells on both sides.
        """
        from repro import verify
        from repro.util.randprog import RandomProgramGenerator

        def nonzero(state):
            return tuple((k, v) for k, v in state if v != 0)

        gen = RandomProgramGenerator(
            seed=901, max_threads=2, max_stmts=3, with_fences=False
        )
        for program in gen.programs(10):
            st = explore_with_state_hashing(program)
            hmc = verify(program, "sc", stop_on_error=False)
            hmc_finals = {nonzero(state) for state in hmc.final_states}
            st_finals = {nonzero(state) for state in st.final_states}
            assert hmc_finals == st_finals, program.name
