"""Tests for the DOT exporter and the JSON report."""

import json

from repro import verify
from repro.core.report import to_dict, to_json
from repro.graphs.dot import to_dot
from repro.lang import ProgramBuilder


def sb():
    p = ProgramBuilder("SB")
    t1 = p.thread(); t1.store("x", 1); a = t1.load("y")
    t2 = p.thread(); t2.store("y", 1); b = t2.load("x")
    p.observe(a, b)
    return p.build()


class TestDot:
    def graph(self):
        result = verify(sb(), "tso", stop_on_error=False, collect_executions=True)
        return result.execution_graphs[0]

    def test_structure(self):
        dot = to_dot(self.graph(), "sb")
        assert dot.startswith('digraph "sb"')
        assert dot.rstrip().endswith("}")
        assert "cluster_t0" in dot and "cluster_t1" in dot
        assert "cluster_init" in dot

    def test_edges_present(self):
        dot = to_dot(self.graph())
        assert 'label="rf"' in dot
        assert 'label="co"' in dot

    def test_every_event_is_a_node(self):
        graph = self.graph()
        dot = to_dot(graph)
        for tid in graph.thread_ids():
            for ev in graph.thread_events(tid):
                assert f"e{ev.tid}_{ev.index}" in dot

    def test_escaping(self):
        dot = to_dot(self.graph(), 'weird"name')
        assert '\\"' in dot


class TestReport:
    def test_round_trips_through_json(self):
        result = verify(sb(), "tso", stop_on_error=False)
        payload = json.loads(to_json(result))
        assert payload["executions"] == 4
        assert payload["model"] == "tso"
        assert payload["ok"] is True
        assert payload["stats"]["reads_added"] > 0

    def test_errors_serialised(self):
        p = ProgramBuilder("err")
        t = p.thread()
        a = t.load("x")
        t.assert_(a.eq(1), "boom")
        result = verify(p.build(), "sc")
        payload = to_dict(result)
        assert payload["ok"] is False
        assert payload["errors"][0]["message"] == "boom"
        assert "thread 0" in payload["errors"][0]["witness"]

    def test_outcome_listing(self):
        result = verify(sb(), "sc", stop_on_error=False)
        payload = to_dict(result)
        assert len(payload["outcomes"]) == 3
        assert sum(o["count"] for o in payload["outcomes"]) == 3
