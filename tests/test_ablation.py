"""Ablation behaviour (experiments A1/A2): what each ingredient of the
algorithm buys, demonstrated as testable facts."""

from repro import count_executions, verify
from repro.bench import workloads as W
from repro.graphs import canonical_key
from repro.litmus import get_litmus


class TestBackwardRevisitsNecessary:
    def test_sb_loses_relaxed_outcome_without_revisits(self):
        program = get_litmus("SB").program
        assert count_executions(program, "tso") == 4
        assert count_executions(program, "tso", backward_revisits=False) < 4

    def test_lb_impossible_without_revisits(self):
        program = get_litmus("LB").program
        full = verify(program, "imm", stop_on_error=False)
        crippled = verify(
            program, "imm", stop_on_error=False, backward_revisits=False
        )
        assert full.executions == 4
        assert crippled.executions < full.executions

    def test_error_missed_without_revisits(self):
        """Peterson's TSO bug needs an early read to observe a later
        write — precisely a backward revisit."""
        program = W.peterson(False)
        with_revisits = verify(program, "tso", stop_on_error=False)
        without = verify(
            program, "tso", stop_on_error=False, backward_revisits=False
        )
        assert not with_revisits.ok
        assert len(without.errors) < len(with_revisits.errors)


class TestMaximalityCheckPrunes:
    def test_same_executions_more_duplicates(self):
        for program in (W.sb_n(3), W.ainc(2)):
            strict = verify(
                program, "tso", stop_on_error=False, collect_executions=True
            )
            loose = verify(
                program,
                "tso",
                stop_on_error=False,
                collect_executions=True,
                maximality_check=False,
            )
            strict_keys = {canonical_key(g) for g in strict.execution_graphs}
            loose_keys = {canonical_key(g) for g in loose.execution_graphs}
            assert strict_keys == loose_keys, program.name
            assert loose.duplicates >= strict.duplicates, program.name

    def test_maximality_prunes_revisit_work(self):
        """With the check off, rejected revisits are built, validated
        and then thrown away by the state memoisation: pure waste."""
        from repro.util.randprog import RandomProgramGenerator

        strict_work = loose_work = 0
        for program in RandomProgramGenerator(seed=42).programs(12):
            strict = verify(program, "imm", stop_on_error=False)
            loose = verify(
                program, "imm", stop_on_error=False, maximality_check=False
            )
            assert strict.executions == loose.executions, program.name
            strict_work += strict.stats.revisits_performed
            loose_work += loose.stats.revisits_performed
        assert loose_work >= strict_work


class TestIncrementalChecksSaveWork:
    def test_counts_invariant(self):
        for model in ("tso", "imm"):
            program = W.casrot(3)
            a = verify(program, model, stop_on_error=False)
            b = verify(
                program, model, stop_on_error=False, incremental_checks=False
            )
            assert a.executions == b.executions, model
            assert a.blocked <= b.blocked  # late filtering shows up as waste

    def test_incremental_prunes_consistency_checks_earlier(self):
        program = W.sb_n(3)
        inc = verify(program, "sc", stop_on_error=False)
        late = verify(
            program, "sc", stop_on_error=False, incremental_checks=False
        )
        assert inc.executions == late.executions == 7


class TestDedupOption:
    def test_dedup_off_overcounts_for_rmw_chains(self):
        program = W.ainc(3)
        on = verify(program, "sc", stop_on_error=False)
        off = verify(program, "sc", stop_on_error=False, deduplicate=False)
        assert on.executions == 24
        assert off.executions >= on.executions
