"""Tests for the markdown report generator."""

import io

from repro.bench.harness import Row
from repro.bench.report import _rows_to_markdown, _t1_to_markdown


class TestRowsToMarkdown:
    def test_header_and_row(self):
        rows = [Row("sb(2)", "tso", "hmc", 4, 0, 0, 0.01, {"duplicates": 0})]
        lines = _rows_to_markdown(rows)
        assert lines[0].startswith("| benchmark ")
        assert "| sb(2) | tso | hmc | 4 | 0 | 0 |" in lines[2]
        assert "duplicates=0" in lines[2]


class TestT1ToMarkdown:
    def test_matrix_shape(self):
        cells = [
            ("SB", m, m != "sc", m != "sc", 4)
            for m in ("sc", "tso", "pso", "ra", "rc11", "imm", "armv8", "power", "coherence")
        ]
        lines = _t1_to_markdown(cells)
        assert "0 deviations" in lines[0]
        assert any(line.startswith("| SB | . | x | x") for line in lines)

    def test_deviations_counted(self):
        cells = [("SB", "sc", True, False, 4)]
        lines = _t1_to_markdown(cells)
        assert "1 deviations" in lines[0]
