"""Tests for the markdown report generator."""

import io

from repro.bench.harness import Row
from repro.bench.report import _rows_to_markdown, _t1_to_markdown


class TestRowsToMarkdown:
    def test_header_and_row(self):
        rows = [Row("sb(2)", "tso", "hmc", 4, 0, 0, 0.01, {"duplicates": 0})]
        lines = _rows_to_markdown(rows)
        assert lines[0].startswith("| benchmark ")
        assert "| sb(2) | tso | hmc | 4 | 0 | 0 |" in lines[2]
        assert "duplicates=0" in lines[2]

    def test_profiler_columns(self):
        # uninstrumented rows show `-`; instrumented rows aggregate
        # self-times into the branch/revisit/checks/relations columns
        phases = {
            "rf_enumeration": 0.2,
            "co_placement": 0.1,
            "revisit": 0.05,
            "check:coherence": 0.3,
            "check:axiom:tso": 0.2,
            "relation:po": 0.15,
        }
        rows = [
            Row("sb(2)", "tso", "hmc", 4, 0, 0, 0.01, {"duplicates": 0}),
            Row("sb(2)", "tso", "hmc", 4, 0, 0, 0.01, {"phases": phases}),
        ]
        lines = _rows_to_markdown(rows)
        for header in ("branch (s)", "revisit (s)", "checks (s)", "relations (s)"):
            assert header in lines[0]
        assert "| - | - | - | - |" in lines[2]
        assert "| 0.300 | 0.050 | 0.500 | 0.150 |" in lines[3]
        # phases don't leak into the extra column once they have columns
        assert "phases" not in lines[3]

    def test_manifest_in_provenance_comment(self):
        import repro.bench.report as report

        saved_headers = report._HEADERS
        report._HEADERS = {}
        stream = io.StringIO()
        try:
            report.generate(stream, manifest_path="run-manifest.json")
        finally:
            report._HEADERS = saved_headers
        first = stream.getvalue().splitlines()[0]
        assert "run manifest: run-manifest.json" in first


class TestT1ToMarkdown:
    def test_matrix_shape(self):
        cells = [
            ("SB", m, m != "sc", m != "sc", 4)
            for m in ("sc", "tso", "pso", "ra", "rc11", "imm", "armv8", "power", "coherence")
        ]
        lines = _t1_to_markdown(cells)
        assert "0 deviations" in lines[0]
        assert any(line.startswith("| SB | . | x | x") for line in lines)

    def test_deviations_counted(self):
        cells = [("SB", "sc", True, False, 4)]
        lines = _t1_to_markdown(cells)
        assert "1 deviations" in lines[0]
