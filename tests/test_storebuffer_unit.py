"""Unit tests for the store-buffer machine's internals."""

from repro.baselines.storebuffer import (
    _BufState,
    _buffered_value,
    _flush_candidates,
    explore_store_buffers,
)
from repro.events import Event
from repro.lang import ProgramBuilder


def state_with_buffer(buffer):
    return _BufState(
        read_values=[()],
        memory={},
        last_writer={},
        co={},
        rf={},
        labels={0: []},
        buffers={0: list(buffer)},
    )


class TestFlushCandidates:
    def test_empty_buffer(self):
        state = state_with_buffer([])
        assert _flush_candidates(state, "tso", 0) == []

    def test_tso_is_fifo(self):
        state = state_with_buffer(
            [("x", 1, Event(0, 0)), ("y", 2, Event(0, 1)), ("x", 3, Event(0, 2))]
        )
        assert _flush_candidates(state, "tso", 0) == [0]

    def test_pso_one_head_per_location(self):
        state = state_with_buffer(
            [("x", 1, Event(0, 0)), ("y", 2, Event(0, 1)), ("x", 3, Event(0, 2))]
        )
        assert _flush_candidates(state, "pso", 0) == [0, 1]


class TestForwarding:
    def test_newest_own_store_wins(self):
        state = state_with_buffer(
            [("x", 1, Event(0, 0)), ("x", 2, Event(0, 1))]
        )
        value, ev = _buffered_value(state, 0, "x")
        assert value == 2 and ev == Event(0, 1)

    def test_no_entry_returns_none(self):
        state = state_with_buffer([("y", 1, Event(0, 0))])
        assert _buffered_value(state, 0, "x") is None


class TestSemantics:
    def test_own_store_forwarded_before_flush(self):
        """A thread reads its own buffered store (no IRIW-style magic)."""
        p = ProgramBuilder("fwd")
        t = p.thread()
        t.store("x", 7)
        a = t.load("x")
        p.observe(a)
        result = explore_store_buffers(p.build(), "tso")
        # in every schedule the load sees 7 (buffer or memory)
        assert result.executions == 1

    def test_fence_waits_for_empty_buffer(self):
        p = ProgramBuilder("fence")
        t1 = p.thread()
        t1.store("x", 1)
        from repro.events import FenceKind

        t1.fence(FenceKind.MFENCE)
        a = t1.load("y")
        t2 = p.thread()
        t2.store("y", 1)
        b = t2.load("x")
        p.observe(a, b)
        result = explore_store_buffers(p.build(), "tso")
        # one-sided fence still leaves the relaxed outcome via thread 2
        assert result.executions == 4

    def test_sb_counts_match_axiomatic_tso(self):
        from repro import count_executions
        from repro.litmus import get_litmus

        program = get_litmus("SB").program
        op = explore_store_buffers(program, "tso")
        assert op.executions == count_executions(program, "tso") == 4

    def test_blocked_assume_counted(self):
        p = ProgramBuilder("blocked")
        t = p.thread()
        a = t.load("x")
        t.assume(a.eq(1))
        p.thread().store("x", 1)
        result = explore_store_buffers(p.build(), "tso")
        assert result.blocked > 0 and result.executions == 1
