"""Tests for the application layer: model diffing, fence synthesis and
witness linearisation."""

from repro import verify
from repro.bench.workloads import dekker, peterson, sb_n
from repro.core.compare import compare_models, new_behaviours
from repro.core.repair import candidate_points, synthesize_fences
from repro.core.witness import Witness, format_witness, linearize
from repro.events import FenceKind
from repro.lang import ProgramBuilder
from repro.litmus import get_litmus


class TestCompare:
    def test_sb_sc_vs_tso(self):
        cmp = compare_models(get_litmus("SB").program, "sc", "tso")
        assert not cmp.equivalent
        assert len(cmp.only_right) == 1  # the (0, 0) outcome
        assert not cmp.only_left
        outcome = next(iter(cmp.only_right))
        assert all(v == 0 for _, v in outcome)
        assert outcome in cmp.witnesses
        assert "thread 0" in cmp.witnesses[outcome]

    def test_equivalent_when_no_relaxation_matters(self):
        p = ProgramBuilder("independent")
        a = p.thread().load("x")
        b = p.thread().load("y")
        p.observe(a, b)
        cmp = compare_models(p.build(), "sc", "power")
        assert cmp.equivalent

    def test_new_behaviours_direction(self):
        program = get_litmus("LB").program
        assert new_behaviours(program, "rc11", "imm")
        assert not new_behaviours(program, "imm", "rc11")

    def test_summary_mentions_exclusive_outcomes(self):
        cmp = compare_models(get_litmus("SB").program, "sc", "tso")
        assert "only under tso" in cmp.summary()

    def test_executions_ratio(self):
        cmp = compare_models(sb_n(3), "sc", "tso")
        assert cmp.executions_ratio == 8 / 7


class TestRepair:
    def test_dekker_fixed_with_two_fences(self):
        result = synthesize_fences(dekker(False), "tso", fence=FenceKind.MFENCE)
        assert result.placements is not None
        assert len(result.placements) == 2  # one per thread
        assert result.repaired is not None
        assert verify(result.repaired, "tso", stop_on_error=False).ok

    def test_peterson_fixed(self):
        result = synthesize_fences(
            peterson(False), "tso", fence=FenceKind.MFENCE, max_fences=2
        )
        assert result.placements is not None
        assert verify(result.repaired, "tso", stop_on_error=False).ok

    def test_already_safe_program(self):
        result = synthesize_fences(dekker(True), "tso")
        assert result.already_safe
        assert result.placements == ()
        assert "already safe" in result.summary()

    def test_unfixable_reported(self):
        # assertion false under every schedule: no fence can help
        p = ProgramBuilder("hopeless")
        t = p.thread()
        a = t.load("x")
        t.assert_(a.eq(99), "never")
        result = synthesize_fences(p.build(), "sc")
        assert result.placements is None
        assert "no sync placement fixes" in result.summary().replace(
            result.fence.value, "sync"
        )

    def test_candidate_points_interior_only(self):
        points = candidate_points(dekker(False))
        assert all(0 < idx for _, idx in points)

    def test_minimality(self):
        """Dekker cannot be fixed with a single fence."""
        result = synthesize_fences(dekker(False), "tso", fence=FenceKind.MFENCE)
        singles = [c for c in result.placements or ()]
        assert len(singles) >= 2


class TestWitness:
    def _graphs(self, program, model):
        return verify(
            program, model, stop_on_error=False, collect_executions=True
        ).execution_graphs

    def test_sc_execution_gets_sc_schedule(self):
        for graph in self._graphs(get_litmus("SB").program, "sc"):
            witness = linearize(graph)
            assert witness.exists and witness.strength == "sc"

    def test_relaxed_sb_gets_porf_schedule(self):
        relaxed = [
            g
            for g in self._graphs(get_litmus("SB").program, "tso")
            if all(g.value_of(r) == 0 for r in g.reads())
        ]
        assert relaxed
        witness = linearize(relaxed[0])
        assert witness.exists and witness.strength == "porf"

    def test_lb_execution_has_no_schedule(self):
        cyclic = [
            g
            for g in self._graphs(get_litmus("LB").program, "imm")
            if all(g.value_of(r) == 1 for r in g.reads())
        ]
        assert cyclic
        witness = linearize(cyclic[0])
        assert not witness.exists
        assert "no interleaving" in format_witness(cyclic[0])

    def test_format_lists_steps(self):
        graph = self._graphs(get_litmus("SB").program, "sc")[0]
        text = format_witness(graph)
        assert "0. thread" in text.replace("  ", " ")
        assert "reads" in text

    def test_schedule_respects_po(self):
        for graph in self._graphs(get_litmus("MP").program, "tso"):
            witness = linearize(graph)
            if witness.schedule is None:
                continue
            position = {ev: i for i, ev in enumerate(witness.schedule)}
            for tid in graph.thread_ids():
                events = graph.thread_events(tid)
                for a, b in zip(events, events[1:]):
                    assert position[a] < position[b]
