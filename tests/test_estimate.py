"""Tests for the random-descent exploration estimator."""

from repro import verify
from repro.core.estimate import estimate_explorations
from repro.lang import ProgramBuilder
from repro.litmus import get_litmus


class TestEstimator:
    def test_single_leaf_is_exact(self):
        p = ProgramBuilder("seq")
        t = p.thread()
        t.store("x", 1)
        t.store("y", 2)
        est = estimate_explorations(p.build(), "sc", walks=5)
        assert est.mean == 1.0 and est.std == 0.0

    def test_sb_estimate_matches_leaf_count(self):
        program = get_litmus("SB").program
        result = verify(program, "tso", stop_on_error=False)
        leaves = result.explored + result.blocked
        est = estimate_explorations(program, "tso", walks=200, seed=1)
        assert 0.5 * leaves <= est.mean <= 2.0 * leaves

    def test_estimate_scales_with_model(self):
        program = get_litmus("SB").program
        sc = estimate_explorations(program, "sc", walks=200, seed=2)
        tso = estimate_explorations(program, "tso", walks=200, seed=2)
        assert tso.mean > sc.mean * 0.8  # weaker model, bigger tree

    def test_deterministic_given_seed(self):
        program = get_litmus("MP").program
        a = estimate_explorations(program, "imm", walks=20, seed=7)
        b = estimate_explorations(program, "imm", walks=20, seed=7)
        assert a == b

    def test_depth_bounded_by_events(self):
        program = get_litmus("SB").program
        est = estimate_explorations(program, "sc", walks=10)
        # 4 program events + 2 initialisation writes
        assert est.max_depth <= program.max_events_estimate() + 2

    def test_str_mentions_walks(self):
        program = get_litmus("SB").program
        est = estimate_explorations(program, "sc", walks=3)
        assert "3 walks" in str(est)
