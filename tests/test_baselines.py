"""Tests for the baseline explorers, including the three-way
cross-validation (axiomatic vs operational vs HMC) on litmus tests."""

import pytest

from repro import verify
from repro.baselines import (
    brute_force,
    explore_dpor,
    explore_interleavings,
    explore_store_buffers,
)
from repro.graphs import canonical_key
from repro.lang import ProgramBuilder
from repro.litmus import get_litmus


def hmc_keys(program, model):
    result = verify(program, model, stop_on_error=False, collect_executions=True)
    return {canonical_key(g) for g in result.execution_graphs}, result


def sb():
    return get_litmus("SB").program


def mp():
    return get_litmus("MP").program


class TestInterleaving:
    def test_sb_traces_exceed_executions(self):
        result = explore_interleavings(sb())
        assert result.traces == 6
        assert result.executions == 3

    def test_matches_hmc_under_sc(self):
        for program in (sb(), mp(), get_litmus("2xFAI").program):
            il = explore_interleavings(program)
            keys, _ = hmc_keys(program, "sc")
            assert il.keys == keys, program.name

    def test_error_detection(self):
        p = ProgramBuilder("err")
        t = p.thread()
        a = t.load("x")
        t.assert_(a.eq(0))
        t2 = p.thread()
        t2.store("x", 1)
        result = explore_interleavings(p.build())
        assert result.errors > 0

    def test_max_traces_cap(self):
        result = explore_interleavings(sb(), max_traces=2)
        assert result.traces == 2


class TestDpor:
    def test_fewer_traces_than_interleaving(self):
        il = explore_interleavings(sb())
        dp = explore_dpor(sb())
        assert dp.traces <= il.traces
        assert dp.slept > 0

    def test_same_executions_as_hmc(self):
        for program in (sb(), mp()):
            dp = explore_dpor(program)
            keys, _ = hmc_keys(program, "sc")
            assert dp.keys == keys, program.name

    def test_independent_threads_single_trace(self):
        p = ProgramBuilder("indep")
        p.thread().store("x", 1)
        p.thread().store("y", 1)
        dp = explore_dpor(p.build())
        assert dp.traces < explore_interleavings(p.build()).traces


class TestStoreBuffer:
    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            explore_store_buffers(sb(), "armv8")

    def test_tso_matches_hmc(self):
        for program in (sb(), mp()):
            op = explore_store_buffers(program, "tso")
            keys, _ = hmc_keys(program, "tso")
            assert op.keys == keys, program.name

    def test_pso_matches_hmc(self):
        for program in (sb(), mp()):
            op = explore_store_buffers(program, "pso")
            keys, _ = hmc_keys(program, "pso")
            assert op.keys == keys, program.name

    def test_pso_reorders_stores_tso_does_not(self):
        tso = explore_store_buffers(mp(), "tso")
        pso = explore_store_buffers(mp(), "pso")
        assert len(pso.keys) > len(tso.keys)

    def test_state_space_larger_than_graphs(self):
        op = explore_store_buffers(sb(), "tso")
        assert op.traces > op.executions

    def test_rmw_flushes_buffer(self):
        program = get_litmus("2xFAI").program
        op = explore_store_buffers(program, "tso")
        keys, _ = hmc_keys(program, "tso")
        assert op.keys == keys


class TestBruteForce:
    def test_litmus_counts(self):
        assert brute_force(sb(), "sc").executions == 3
        assert brute_force(sb(), "tso").executions == 4

    def test_blocked_and_errors_counted(self):
        p = ProgramBuilder("b")
        t = p.thread()
        a = t.load("x")
        t.assume(a.eq(1))
        p.thread().store("x", 1)
        result = brute_force(p.build(), "sc")
        assert result.blocked > 0 and result.executions == 1

    def test_budget_guard(self):
        p = ProgramBuilder("big")
        for _ in range(3):
            t = p.thread()
            for v in (1, 2, 3):
                t.store("x", v)
                t.load("x")
        with pytest.raises(RuntimeError):
            brute_force(p.build(), "sc", max_candidates=10)

    def test_value_domain_fixpoint(self):
        from repro.baselines.exhaustive import _value_domain

        p = ProgramBuilder("chain")
        t = p.thread()
        a = t.load("x")
        t.store("x", a + 1)
        domain = _value_domain(p.build())
        assert 0 in domain and 1 in domain
