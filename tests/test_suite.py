"""The batch suite engine: caching, resume, scheduling, parity, CLI."""

import json
import os

import pytest

from repro.bench.workloads import sb_n
from repro.cli import main
from repro.core import ExplorationOptions, verify
from repro.litmus import litmus_names, run_litmus
from repro.obs import SUITE_MANIFEST_KIND, Observer, RunStore
from repro.suite import (
    ResultCache,
    SuiteTask,
    build_suite_manifest,
    check_suite,
    diff_suites,
    format_suite_diff,
    litmus_matrix,
    litmus_task,
    program_task,
    run_suite,
    task_key,
)

NAMES = ["SB", "MP", "LB", "CoRR"]


@pytest.fixture
def tasks():
    return litmus_matrix(NAMES, models=("sc", "tso"))


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


def _verdict_tuple(v):
    # every LitmusVerdict field except elapsed (wall time is not stable)
    return (v.test, v.model, v.observed, v.executions, v.duplicates)


class TestCache:
    def test_first_run_misses_second_hits_everything(self, tasks, cache):
        first = run_suite(tasks, jobs=1, cache=cache)
        assert first.cache_hits == 0
        assert len(cache) == len(tasks)
        second = run_suite(tasks, jobs=1, cache=cache)
        assert second.cache_hits == len(tasks)
        assert second.pool_tasks == 0
        for a, b in zip(first.tasks, second.tasks):
            assert _verdict_tuple(a.verdict) == _verdict_tuple(b.verdict)
            assert b.cached and b.shards == 0

    def test_serial_and_parallel_share_entries(self, tasks, cache):
        run_suite(tasks, jobs=1, cache=cache)
        parallel = run_suite(tasks, jobs=2, cache=cache)
        assert parallel.cache_hits == len(tasks)

    def test_force_recomputes(self, tasks, cache):
        run_suite(tasks, jobs=1, cache=cache)
        forced = run_suite(tasks, jobs=1, cache=cache, force=True)
        assert forced.cache_hits == 0

    def test_cache_false_disables(self, tasks, tmp_path):
        suite = run_suite(tasks, jobs=1, cache=False)
        assert suite.cache_hits == 0
        assert suite.meta["cache_dir"] is None

    def test_result_relevant_option_change_misses(self, cache):
        a = litmus_task("SB", "tso")
        b = litmus_task("SB", "tso", max_events=5_000)
        assert task_key(
            a.program, a.model, a.options, kind=a.kind, probe="SB"
        ) != task_key(b.program, b.model, b.options, kind=b.kind, probe="SB")
        run_suite([a], jobs=1, cache=cache)
        suite = run_suite([b], jobs=1, cache=cache)
        assert suite.cache_hits == 0

    def test_scheduling_option_change_hits(self, cache):
        a = litmus_task("SB", "tso")
        b = litmus_task("SB", "tso", task_timeout=30.0, oversubscription=8)
        run_suite([a], jobs=1, cache=cache)
        suite = run_suite([b], jobs=1, cache=cache)
        assert suite.cache_hits == 1

    def test_resume_after_interruption(self, tasks, cache):
        """Deleting half the entries models an interrupted suite: only
        the missing tasks are recomputed."""
        first = run_suite(tasks, jobs=1, cache=cache)
        kept = {t.key for t in first.tasks[: len(tasks) // 2]}
        for t in first.tasks:
            if t.key not in kept:
                assert cache.evict(t.key)
        resumed = run_suite(tasks, jobs=1, cache=cache)
        assert resumed.cache_hits == len(kept)
        for a, b in zip(first.tasks, resumed.tasks):
            assert _verdict_tuple(a.verdict) == _verdict_tuple(b.verdict)

    def test_rerun_failed_recomputes_truncated_entries(self, cache):
        truncated = litmus_task("SB", "tso", max_explored=1)
        run_suite([truncated], jobs=1, cache=cache)
        served = run_suite([truncated], jobs=1, cache=cache)
        assert served.cache_hits == 1  # plain re-run serves the stale entry
        rerun = run_suite(
            [truncated], jobs=1, cache=cache, rerun_failed=True
        )
        assert rerun.cache_hits == 0

    def test_corrupt_entry_is_a_miss(self, tasks, cache):
        first = run_suite(tasks[:1], jobs=1, cache=cache)
        with open(cache.path(first.tasks[0].key), "w") as handle:
            handle.write("{not json")
        again = run_suite(tasks[:1], jobs=1, cache=cache)
        assert again.cache_hits == 0


class TestDifferential:
    """Batched verdicts must be bit-identical to individual run_litmus
    calls — serial and through the shared pool."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_matches_run_litmus(self, tasks, jobs):
        suite = run_suite(tasks, jobs=jobs, cache=False)
        for task, got in zip(tasks, suite.tasks):
            expected = run_litmus(task.probe, task.model)
            assert _verdict_tuple(got.verdict) == _verdict_tuple(expected)

    def test_sharded_task_matches_serial(self):
        program = sb_n(4)
        serial = verify(program, "sc", stop_on_error=False)
        suite = run_suite(
            [program_task(program, "sc")],
            jobs=2,
            cache=False,
            shard_threshold=1,
        )
        task = suite.tasks[0]
        assert task.shards > 1
        assert task.result.executions == serial.executions
        assert task.result.outcomes == serial.outcomes

    def test_whole_corpus_one_pool(self):
        names = litmus_names()[:8]
        suite = run_suite(
            litmus_matrix(names, models=("sc", "tso", "ra")),
            jobs=2,
            cache=False,
        )
        assert len(suite.tasks) == len(names) * 3
        assert suite.acct.get("workers_lost") == 0
        assert not suite.deviations


class TestScheduling:
    def test_longest_expected_first_runs_everything(self, tasks):
        suite = run_suite(tasks, jobs=2, cache=False)
        assert {t.task_id for t in suite.tasks} == {t.id for t in tasks}
        assert suite.pool_tasks == len(tasks)

    def test_serial_path_without_pool(self, tasks):
        suite = run_suite(tasks, jobs=1, cache=False)
        assert suite.acct == {}
        assert suite.jobs == 1

    def test_metrics_snapshots_merge(self, tasks):
        observer = Observer()
        run_suite(tasks[:2], jobs=2, cache=False, observer=observer)
        assert observer.metrics_snapshot()["counters"]


class TestFaultInjection:
    def test_crashed_worker_is_retried(self, tasks, tmp_path, monkeypatch):
        marker = tmp_path / "crash-once"
        monkeypatch.setenv("REPRO_FAULT_INJECT", f"crash:0:{marker}")
        suite = run_suite(tasks, jobs=2, cache=False)
        assert marker.exists()
        assert suite.acct["workers_lost"] >= 1
        # the marker exists now, so these serial reruns are fault-free
        for task, got in zip(tasks, suite.tasks):
            expected = run_litmus(task.probe, task.model)
            assert _verdict_tuple(got.verdict) == _verdict_tuple(expected)

    def test_persistent_fault_falls_back_serially(self, tasks, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "raise:0")
        suite = run_suite(tasks, jobs=2, cache=False, task_retries=1)
        assert suite.acct["tasks_fallback"] >= 1
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        for task, got in zip(tasks, suite.tasks):
            expected = run_litmus(task.probe, task.model)
            assert _verdict_tuple(got.verdict) == _verdict_tuple(expected)


class TestManifest:
    def test_round_trips_through_run_store(self, tasks, cache, tmp_path):
        suite = run_suite(tasks, jobs=1, cache=cache)
        manifest = build_suite_manifest(suite, command="test")
        store = RunStore(str(tmp_path / "runs"), kind=SUITE_MANIFEST_KIND)
        path = store.save(manifest)
        loaded = store.load(os.path.basename(path)[: -len(".json")])
        assert loaded["kind"] == SUITE_MANIFEST_KIND
        assert loaded["totals"]["tasks"] == len(tasks)
        assert store.latest()["run_id"] == loaded["run_id"]

    def test_run_store_kinds_do_not_mix(self, tasks, cache, tmp_path):
        from repro.obs import RUN_MANIFEST_KIND, build_manifest

        root = str(tmp_path / "runs")
        suite = run_suite(tasks, jobs=1, cache=cache)
        RunStore(root).save(build_suite_manifest(suite))
        result = verify(tasks[0].program, tasks[0].model, stop_on_error=False)
        RunStore(root).save(build_manifest(result))
        assert len(RunStore(root, kind=SUITE_MANIFEST_KIND).list_runs()) == 1
        assert len(RunStore(root, kind=RUN_MANIFEST_KIND).list_runs()) == 1
        assert len(RunStore(root).list_runs()) == 2

    def test_diff_and_check_agree_on_identical_suites(self, tasks, cache):
        suite = run_suite(tasks, jobs=1, cache=cache)
        a = build_suite_manifest(suite)
        b = build_suite_manifest(run_suite(tasks, jobs=1, cache=cache))
        diff = diff_suites(a, b)
        assert not diff["added"] and not diff["removed"] and not diff["changes"]
        assert "agree" in format_suite_diff(diff)
        violations, _warnings = check_suite(b, a)
        assert violations == []

    def test_check_flags_verdict_flip_and_missing_task(self, tasks, cache):
        suite = run_suite(tasks, jobs=1, cache=cache)
        baseline = build_suite_manifest(suite)
        current = json.loads(json.dumps(baseline))
        current["tasks"][0]["observed"] = not current["tasks"][0]["observed"]
        dropped = current["tasks"].pop()
        violations, _warnings = check_suite(current, baseline)
        assert any("observed" in v for v in violations)
        assert any(dropped["id"] in v for v in violations)


class TestTaskConstruction:
    def test_litmus_task_rejects_graphless_options(self):
        with pytest.raises(ValueError, match="collect_executions"):
            litmus_task("SB", "sc", collect_executions=False)

    def test_dual_option_convention_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            litmus_task(
                "SB", "sc", options=ExplorationOptions(), max_events=5
            )

    def test_task_id_names_probe_and_model(self):
        task = litmus_task("SB", "tso")
        assert task.id == "SB:tso"
        assert isinstance(task, SuiteTask)

    def test_matrix_covers_grid(self):
        grid = litmus_matrix(["SB", "MP"], models=("sc", "tso", "ra"))
        assert {t.id for t in grid} == {
            f"{n}:{m}" for n in ("SB", "MP") for m in ("sc", "tso", "ra")
        }


class TestSuiteCli:
    def test_run_then_rerun_hits_cache(self, tmp_path, capsys):
        argv = [
            "suite", "run", "--litmus", "SB", "--litmus", "MP",
            "--models", "sc,tso", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--runs-dir", str(tmp_path / "runs"), "--save-run",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "4 tasks, 0 cached" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "4 tasks, 4 cached" in second

    def test_manifest_and_check_gate(self, tmp_path, capsys):
        manifest = tmp_path / "suite.json"
        argv = [
            "suite", "run", "--litmus", "SB", "--models", "sc",
            "--cache-dir", str(tmp_path / "cache"),
            "--runs-dir", str(tmp_path / "runs"), "--save-run",
            "--manifest", str(manifest),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert json.loads(manifest.read_text())["kind"] == SUITE_MANIFEST_KIND
        assert (
            main(
                [
                    "suite", "check", "--dir", str(tmp_path / "runs"),
                    "--baseline", str(manifest),
                ]
            )
            == 0
        )

    def test_list_and_diff(self, tmp_path, capsys):
        argv = [
            "suite", "run", "--litmus", "SB", "--models", "sc",
            "--cache-dir", str(tmp_path / "cache"),
            "--runs-dir", str(tmp_path / "runs"), "--save-run",
        ]
        assert main(argv) == 0
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["suite", "list", "--dir", str(tmp_path / "runs")]) == 0
        listing = capsys.readouterr().out.strip().splitlines()
        assert len(listing) == 2
        old, new = (line.split()[0] for line in listing)
        assert (
            main(["suite", "diff", "--dir", str(tmp_path / "runs"), old, new])
            == 0
        )
        assert "agree" in capsys.readouterr().out

    def test_unknown_litmus_is_usage_error(self, tmp_path, capsys):
        assert (
            main(
                [
                    "suite", "run", "--litmus", "nope", "--models", "sc",
                    "--no-cache",
                ]
            )
            == 2
        )

    def test_json_output(self, tmp_path, capsys):
        argv = [
            "suite", "run", "--litmus", "SB", "--models", "sc",
            "--no-cache", "--json",
        ]
        assert main(argv) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["totals"]["tasks"] == 1
