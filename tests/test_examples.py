"""Smoke tests: the example scripts must run and tell their stories."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    script = EXAMPLES / name
    assert script.exists(), script
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "sc    : 3 executions" in out
    assert "tso   : 4 executions" in out


def test_load_buffering():
    out = run_example("load_buffering.py")
    assert "LB+plain" in out and "LB+data" in out
    # the plain row has x under hardware models, dots under rc11
    plain = next(l for l in out.splitlines() if l.startswith("LB+plain"))
    assert plain.split()[1:] == [".", "x", "x", "x"]


def test_fence_placement():
    out = run_example("fence_placement.py")
    assert "unfenced under sc : SAFE" in out.replace("  ", " ")
    assert "BROKEN" in out
    assert "witness execution" in out
    assert "SAFE" in out.split("MFENCE")[-1]


def test_fence_synthesis():
    out = run_example("fence_synthesis.py")
    assert "safe under tso with 2 x mfence" in out
    assert "safe under imm with 2 x sync" in out


@pytest.mark.slow
def test_litmus_tour():
    out = run_example("litmus_tour.py", timeout=400)
    assert "all verdicts match the published model definitions" in out


@pytest.mark.slow
def test_custom_model():
    out = run_example("custom_model.py")
    assert "broken-tso: allowed" in out
    assert "tso: forbidden" in out  # real TSO forbids SB+fences
    assert "jobs=2" in out


def test_lock_verification():
    out = run_example("lock_verification.py", timeout=400)
    assert "BROKEN" in out and "SAFE" in out


@pytest.mark.slow
def test_model_shootout():
    out = run_example("model_shootout.py", timeout=400)
    assert "HMC (graphs)" in out and "store-buffer machine" in out
