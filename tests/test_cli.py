"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestModels:
    def test_lists_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "tso" in out and "load-buffering" in out


class TestLitmus:
    def test_single_test(self, capsys):
        assert main(["litmus", "SB", "--model", "tso"]) == 0
        out = capsys.readouterr().out
        assert "SB" in out and "allowed" in out

    def test_requires_name_or_all(self, capsys):
        assert main(["litmus"]) == 2

    def test_forbidden_verdict(self, capsys):
        assert main(["litmus", "SB", "--model", "sc"]) == 0
        assert "forbidden" in capsys.readouterr().out


class TestBench:
    def test_runs_family(self, capsys):
        assert main(["bench", "sb", "--n", "2", "--model", "tso"]) == 0
        out = capsys.readouterr().out
        assert "execs=4" in out

    def test_unknown_family(self, capsys):
        assert main(["bench", "nope"]) == 2


class TestVerify:
    def test_safe_program(self, capsys):
        assert main(["verify", "ticket-lock", "--n", "2", "--model", "sc"]) == 0
        assert "errors    : 0" in capsys.readouterr().out

    def test_error_prints_witness(self, capsys):
        code = main(["verify", "ttas-lock", "--n", "2", "--model", "power"])
        out = capsys.readouterr().out
        # TTAS with rlx accesses is safe even on POWER thanks to RMW
        # atomicity; use a genuinely broken program instead when it is
        assert code in (0, 1)
        if code == 1:
            assert "witness" in out

    def test_unknown_family(self):
        assert main(["verify", "nope"]) == 2


class TestExperiment:
    def test_unknown_experiment(self):
        assert main(["experiment", "zz"]) == 2

    def test_a1_runs(self, capsys):
        assert main(["experiment", "a1"]) == 0
        assert "A1" in capsys.readouterr().out


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])


SC_CAT = '"tiny sc"\nlet com = rf | co | fr\nacyclic po | com as sc\n'


@pytest.fixture
def sc_cat(tmp_path):
    path = tmp_path / "tiny-sc.cat"
    path.write_text(SC_CAT)
    return str(path)


class TestModelsListing:
    def test_shows_docstring_sentence(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "Sequential consistency" in out
        assert "store buffering" in out.lower()


class TestModelFile:
    def test_verify_with_cat_file(self, sc_cat, capsys):
        assert main(["verify", "SB", "--model-file", sc_cat]) == 0
        out = capsys.readouterr().out
        assert "model     : tiny-sc" in out  # name defaults to the stem
        assert "executions: 3" in out  # SC forbids the SB relaxation

    def test_litmus_with_cat_file(self, sc_cat, capsys):
        assert main(["litmus", "SB", "--model-file", sc_cat]) == 0
        assert "forbidden" in capsys.readouterr().out

    def test_litmus_without_literature_row(self, sc_cat, tmp_path, capsys):
        path = tmp_path / "custom.cat"
        path.write_text("(* repro: name=house-model *)\n" + SC_CAT)
        assert main(["litmus", "SB", "--model-file", str(path)]) == 0
        assert "no literature expectation" in capsys.readouterr().out

    def test_compare_right_file(self, sc_cat, capsys):
        assert main(
            ["compare", "SB", "--left", "sc", "--right-file", sc_cat]
        ) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_broken_file_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.cat"
        path.write_text("let x = bogus\nacyclic x as t\n")
        assert main(["verify", "SB", "--model-file", str(path)]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert (
            main(["verify", "SB", "--model-file", str(tmp_path / "no.cat")])
            == 2
        )
        assert "cannot read" in capsys.readouterr().err


class TestCatCheck:
    def test_clean_file(self, sc_cat, capsys):
        assert main(["cat-check", sc_cat]) == 0
        assert "ok" in capsys.readouterr().out

    def test_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.cat"
        path.write_text("acyclic wibble as t\n")
        assert main(["cat-check", path.as_posix()]) == 1
        assert "unknown name" in capsys.readouterr().out

    def test_warning_keeps_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "warn.cat"
        path.write_text("let unused = po\nacyclic rf as t\n")
        assert main(["cat-check", str(path)]) == 0
        out = capsys.readouterr().out
        assert "warning" in out and "ok" in out

    def test_shipped_models_are_clean(self, capsys):
        import repro.models
        from pathlib import Path

        cat_dir = Path(repro.models.__file__).parent / "cat"
        paths = [str(p) for p in sorted(cat_dir.glob("*.cat"))]
        assert paths
        assert main(["cat-check", *paths]) == 0
