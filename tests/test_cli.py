"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestModels:
    def test_lists_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "tso" in out and "load-buffering" in out


class TestLitmus:
    def test_single_test(self, capsys):
        assert main(["litmus", "SB", "--model", "tso"]) == 0
        out = capsys.readouterr().out
        assert "SB" in out and "allowed" in out

    def test_requires_name_or_all(self, capsys):
        assert main(["litmus"]) == 2

    def test_forbidden_verdict(self, capsys):
        assert main(["litmus", "SB", "--model", "sc"]) == 0
        assert "forbidden" in capsys.readouterr().out


class TestBench:
    def test_runs_family(self, capsys):
        assert main(["bench", "sb", "--n", "2", "--model", "tso"]) == 0
        out = capsys.readouterr().out
        assert "execs=4" in out

    def test_unknown_family(self, capsys):
        assert main(["bench", "nope"]) == 2


class TestVerify:
    def test_safe_program(self, capsys):
        assert main(["verify", "ticket-lock", "--n", "2", "--model", "sc"]) == 0
        assert "errors    : 0" in capsys.readouterr().out

    def test_error_prints_witness(self, capsys):
        code = main(["verify", "ttas-lock", "--n", "2", "--model", "power"])
        out = capsys.readouterr().out
        # TTAS with rlx accesses is safe even on POWER thanks to RMW
        # atomicity; use a genuinely broken program instead when it is
        assert code in (0, 1)
        if code == 1:
            assert "witness" in out

    def test_unknown_family(self):
        assert main(["verify", "nope"]) == 2


class TestExperiment:
    def test_unknown_experiment(self):
        assert main(["experiment", "zz"]) == 2

    def test_a1_runs(self, capsys):
        assert main(["experiment", "a1"]) == 0
        assert "A1" in capsys.readouterr().out


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])
