"""End-to-end span tracing (repro.obs.spans).

Covers the tracer core (stacked + detached spans, context
propagation, the bounded ring), the cross-process merge (serial vs
``jobs=2`` span trees agree on structure; worker segments fold back
under coordinator spans), all three exporters (Perfetto trace-event
JSON + validator, terminal flamegraph, Prometheus span families), the
JSONL span file round-trip, and the CLI verbs
``verify --spans-out`` / ``trace export`` / ``trace flame``.
"""

import json

import pytest

from repro.cli import main
from repro.obs import (
    NULL_TRACER,
    Observer,
    SpanTracer,
    build_manifest,
    flame_tree,
    format_flame,
    make_span,
    new_trace_id,
    read_spans,
    span_summary,
    to_perfetto,
    to_prometheus,
    validate_perfetto,
    write_spans,
)
from repro.obs.metrics import MetricsRegistry
from repro.suite import litmus_matrix, run_suite

NAMES = ["SB", "MP", "LB", "CoRR"]


def by_id(spans):
    return {s["span_id"]: s for s in spans}


class TestTracerCore:
    def test_stacked_spans_nest(self):
        t = SpanTracer()
        with t.span("outer") as outer:
            with t.span("inner", cat="phase", depth=1) as inner:
                assert inner["parent_id"] == outer["span_id"]
        spans = t.snapshot()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert spans[0]["attrs"] == {"depth": 1}
        assert spans[0]["cat"] == "phase"
        assert all(s["trace_id"] == t.trace_id for s in spans)
        assert all(s["dur"] >= 0.0 for s in spans)

    def test_span_ids_unique_and_prefixed(self):
        t = SpanTracer()
        for i in range(50):
            with t.span(f"s{i}"):
                pass
        ids = [s["span_id"] for s in t.snapshot()]
        assert len(set(ids)) == 50

    def test_detached_spans_overlap(self):
        t = SpanTracer()
        a = t.start_span("task:a", cat="task")
        b = t.start_span("task:b", cat="task")
        t.end_span(a, shards=2)
        t.end_span(b)
        spans = t.snapshot()
        assert {s["name"] for s in spans} == {"task:a", "task:b"}
        done_a = next(s for s in spans if s["name"] == "task:a")
        assert done_a["attrs"] == {"shards": 2}

    def test_explicit_parent_on_stacked_span(self):
        t = SpanTracer()
        task = t.start_span("task", cat="task")
        with t.span("child", parent=task) as child:
            assert child["parent_id"] == task["span_id"]
        t.end_span(task)

    def test_end_span_none_is_noop(self):
        t = SpanTracer()
        t.end_span(None)
        t.end_span(None, extra=1)
        assert t.snapshot() == []

    def test_remote_parent_adoption(self):
        coordinator = SpanTracer()
        with coordinator.span("root") as root:
            ctx = coordinator.current_context()
        assert ctx == {
            "trace_id": coordinator.trace_id,
            "span_id": root["span_id"],
        }
        worker = SpanTracer(
            trace_id=ctx["trace_id"], remote_parent=ctx["span_id"]
        )
        with worker.span("subtree"):
            pass
        (sub,) = worker.snapshot()
        assert sub["trace_id"] == coordinator.trace_id
        assert sub["parent_id"] == root["span_id"]

    def test_current_context_falls_back_to_remote(self):
        t = SpanTracer(trace_id="abc", remote_parent="p-1")
        assert t.current_context() == {"trace_id": "abc", "span_id": "p-1"}
        assert SpanTracer().current_context() is None

    def test_absorb_preserves_worker_spans(self):
        coordinator = SpanTracer()
        worker = SpanTracer(trace_id=coordinator.trace_id)
        with worker.span("w"):
            pass
        coordinator.absorb(worker.snapshot())
        (merged,) = coordinator.snapshot()
        (original,) = worker.snapshot()
        assert merged["span_id"] == original["span_id"]
        assert merged["start"] == original["start"]
        assert merged is not original  # copies: later mutation is safe

    def test_absorb_feeds_on_finish(self):
        streamed = []
        coordinator = SpanTracer(on_finish=streamed.append)
        worker = SpanTracer(trace_id=coordinator.trace_id)
        with worker.span("w"):
            pass
        coordinator.absorb(worker.snapshot())
        assert [s["name"] for s in streamed] == ["w"]

    def test_make_span_builds_finished_span(self):
        span = make_span(
            "http:submit",
            trace_id="t1",
            start=123.0,
            dur=0.25,
            cat="http",
            attrs={"job": "j-1"},
        )
        assert span["trace_id"] == "t1"
        assert span["start"] == 123.0 and span["dur"] == 0.25
        assert span["attrs"] == {"job": "j-1"}
        assert span["span_id"]

    def test_new_trace_ids_unique(self):
        assert new_trace_id() != new_trace_id()


class TestRingBounds:
    def test_overflow_trims_oldest_and_counts(self):
        t = SpanTracer(capacity=5)
        for i in range(12):
            with t.span(f"s{i}"):
                pass
        assert len(t.snapshot()) == 5
        assert t.dropped == 7
        assert [s["name"] for s in t.snapshot()] == [
            "s7", "s8", "s9", "s10", "s11",
        ]

    def test_absorb_counts_against_capacity(self):
        t = SpanTracer(capacity=3)
        other = SpanTracer(trace_id=t.trace_id)
        for i in range(5):
            with other.span(f"w{i}"):
                pass
        t.absorb(other.snapshot())
        assert len(t.snapshot()) == 3
        assert t.dropped == 2

    def test_orphaned_children_survive_export(self):
        # parent span lost (trimmed ring / filtered dump): the child is
        # re-parented to the root and the document stays valid
        child = make_span("child", trace_id="t", start=0.0, dur=0.1)
        child["parent_id"] = "gone-from-the-ring"
        doc = to_perfetto([child])
        report = validate_perfetto(doc)
        assert report["events"] == 1
        (event,) = doc["traceEvents"]
        assert event["args"]["parent_id"] is None
        assert event["args"]["orphan_of"] == "gone-from-the-ring"


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("x", cat="run", attr=1):
            pass
        assert NULL_TRACER.start_span("y") is None
        NULL_TRACER.end_span(None)
        NULL_TRACER.absorb([{"span_id": "s"}])
        assert NULL_TRACER.snapshot() == []
        assert NULL_TRACER.current_context() is None
        assert NULL_TRACER.enabled is False

    def test_phase_timers_skip_span_work_when_disabled(self):
        registry = MetricsRegistry()
        assert registry.tracer is NULL_TRACER
        with registry.phase("alpha"):
            pass
        assert registry.phase_report()["alpha"]["calls"] == 1

    def test_phase_timers_co_emit_spans_when_enabled(self):
        tracer = SpanTracer()
        registry = MetricsRegistry(tracer=tracer)
        with registry.phase("alpha"):
            with registry.phase("beta"):
                pass
        spans = tracer.snapshot()
        assert [s["name"] for s in spans] == ["beta", "alpha"]
        assert all(s["cat"] == "phase" for s in spans)
        assert spans[0]["parent_id"] == spans[1]["span_id"]
        # the phase report is unaffected by co-emission
        report = registry.phase_report()
        assert report["alpha"]["calls"] == 1
        assert report["beta"]["calls"] == 1

    def test_observer_defaults_to_null_tracer(self):
        assert Observer().tracer is NULL_TRACER


@pytest.fixture
def tasks():
    return litmus_matrix(NAMES, models=("sc", "tso"))


def suite_spans(tasks, jobs):
    tracer = SpanTracer()
    run_suite(tasks, jobs=jobs, cache=False, observer=Observer(tracer=tracer))
    return tracer


class TestCrossProcessPropagation:
    def test_parallel_suite_joins_one_trace(self, tasks):
        tracer = suite_spans(tasks, jobs=2)
        spans = tracer.snapshot()
        assert {s["trace_id"] for s in spans} == {tracer.trace_id}
        assert len({s["pid"] for s in spans}) >= 2
        cats = {s["cat"] for s in spans}
        assert {"task", "worker", "phase"} <= cats
        # worker explore spans parent into coordinator suite-task spans
        ids = by_id(spans)
        workers = [s for s in spans if s["cat"] == "worker"]
        assert workers
        for span in workers:
            parent = ids[span["parent_id"]]
            assert parent["cat"] == "task"
        # phases recorded inside worker processes nest under explore
        worker_pids = {s["pid"] for s in workers}
        for span in spans:
            if s_cat_phase_in_worker(span, worker_pids):
                assert span["parent_id"] in ids

    def test_serial_and_parallel_trees_agree_on_structure(self, tasks):
        def edges(tracer):
            spans = tracer.snapshot()
            ids = by_id(spans)
            out = set()
            for s in spans:
                if s["cat"] in ("task", "worker"):
                    parent = ids.get(s.get("parent_id"))
                    out.add((s["name"], parent["name"] if parent else None))
            return out

        serial = edges(suite_spans(tasks, jobs=1))
        parallel = edges(suite_spans(tasks, jobs=2))
        assert serial == parallel
        # one suite:* and one explore:* edge per (test, model) task
        assert len(serial) == 2 * 2 * len(NAMES)

    def test_cache_hits_record_instant_spans(self, tasks, tmp_path):
        from repro.suite import ResultCache

        cache = ResultCache(str(tmp_path / "cache"))
        run_suite(tasks, jobs=1, cache=cache)
        tracer = SpanTracer()
        run_suite(
            tasks, jobs=1, cache=cache, observer=Observer(tracer=tracer)
        )
        cached = [
            s
            for s in tracer.snapshot()
            if s["cat"] == "task" and s["attrs"].get("cached")
        ]
        assert len(cached) == 2 * len(NAMES)


def s_cat_phase_in_worker(span, worker_pids):
    return span["cat"] == "phase" and span["pid"] in worker_pids


class TestPerfettoExport:
    def make_spans(self):
        t = SpanTracer()
        with t.span("root", cat="run", model="tso"):
            with t.span("child"):
                pass
        return t

    def test_event_shape(self):
        t = self.make_spans()
        doc = to_perfetto(t.snapshot(), trace_id=t.trace_id)
        assert doc["otherData"]["trace_ids"] == [t.trace_id]
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["args"]["span_id"]
        child = next(
            e for e in doc["traceEvents"] if e["name"] == "child"
        )
        root = next(e for e in doc["traceEvents"] if e["name"] == "root")
        assert child["args"]["parent_id"] == root["args"]["span_id"]
        assert root["args"]["attr.model"] == "tso"

    def test_validator_accepts_good_documents(self):
        t = self.make_spans()
        report = validate_perfetto(to_perfetto(t.snapshot()))
        assert report == {
            "events": 2,
            "pids": 1,
            "trace_ids": [t.trace_id],
        }

    def test_validator_rejects_bad_documents(self):
        t = self.make_spans()
        good = to_perfetto(t.snapshot())

        with pytest.raises(ValueError, match="traceEvents"):
            validate_perfetto({})
        with pytest.raises(ValueError, match="no events"):
            validate_perfetto({"traceEvents": []})

        missing = json.loads(json.dumps(good))
        del missing["traceEvents"][0]["ts"]
        with pytest.raises(ValueError, match="no 'ts'"):
            validate_perfetto(missing)

        badtype = json.loads(json.dumps(good))
        badtype["traceEvents"][0]["dur"] = True
        with pytest.raises(ValueError, match="dur"):
            validate_perfetto(badtype)

        dupes = json.loads(json.dumps(good))
        for event in dupes["traceEvents"]:
            event["args"]["span_id"] = "same"
        with pytest.raises(ValueError, match="duplicate span_id"):
            validate_perfetto(dupes)

        unlinked = json.loads(json.dumps(good))
        unlinked["traceEvents"][0]["args"]["parent_id"] = "nowhere"
        unlinked["traceEvents"][1]["args"]["parent_id"] = "nowhere"
        with pytest.raises(ValueError, match="parent"):
            validate_perfetto(unlinked)

        with pytest.raises(ValueError, match="trace_id"):
            validate_perfetto(good, trace_id="not-this-trace")
        with pytest.raises(ValueError, match="process"):
            validate_perfetto(good, min_pids=2)

    def test_trace_id_filter(self):
        t = self.make_spans()
        other = SpanTracer()
        with other.span("noise"):
            pass
        mixed = t.snapshot() + other.snapshot()
        doc = to_perfetto(mixed, trace_id=t.trace_id)
        assert len(doc["traceEvents"]) == 2
        assert doc["otherData"]["trace_ids"] == [t.trace_id]


class TestFlameAndSummary:
    def test_flame_tree_aggregates_same_named_siblings(self):
        t = SpanTracer()
        for _ in range(3):
            with t.span("outer"):
                with t.span("inner"):
                    pass
        root = flame_tree(t.snapshot())
        outer = root.children["outer"]
        assert outer.calls == 3
        assert outer.children["inner"].calls == 3
        assert outer.self_time >= 0.0

    def test_format_flame_renders(self):
        t = SpanTracer()
        with t.span("a"):
            with t.span("b"):
                pass
        text = format_flame(t.snapshot())
        assert "trace flame: 2 spans" in text
        assert "a" in text and "b" in text
        assert format_flame([]) == "(no spans)"

    def test_min_frac_hides_small_subtrees(self):
        spans = [
            make_span("big", trace_id="t", start=0.0, dur=1.0),
            make_span("tiny", trace_id="t", start=0.0, dur=0.001),
        ]
        text = format_flame(spans, min_frac=0.1)
        assert "big" in text and "tiny" not in text

    def test_span_summary_families(self):
        spans = [
            make_span("explore", trace_id="t", start=0.0, dur=1.5,
                      cat="worker"),
            make_span("explore", trace_id="t", start=0.0, dur=0.5,
                      cat="worker"),
            make_span("check", trace_id="t", start=0.0, dur=0.25),
        ]
        summary = span_summary(spans)
        assert summary["explore"] == {
            "calls": 2, "seconds": 2.0, "cat": "worker",
        }
        assert summary["check"]["calls"] == 1
        assert list(summary) == sorted(summary)

    def test_prometheus_span_families(self):
        t = SpanTracer()
        with t.span("explore:SB", cat="worker"):
            pass

        class FakeResult:
            program = "SB"
            model = "tso"
            executions = 1
            blocked = 0
            duplicates = 0
            errors = ()
            truncated = False
            elapsed = 0.1
            outcomes = {}
            phase_times = {}
            meta = {}

            class stats:
                @staticmethod
                def as_dict():
                    return {}

        manifest = build_manifest(FakeResult(), spans=t.snapshot())
        text = to_prometheus(manifest)
        assert (
            'repro_span_seconds_total{program="SB",model="tso"'
            ',span="explore:SB",cat="worker"}'
        ) in text
        assert "repro_span_calls_total" in text

    def test_manifest_without_spans_has_no_span_key(self):
        t = SpanTracer()
        spans_text = to_prometheus(
            {"program": "p", "model": "m", "result": {}, "metrics": {},
             "phases": {}}
        )
        assert "repro_span_" not in spans_text


class TestSpanFileRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        t = SpanTracer()
        with t.span("a", k="v"):
            with t.span("b"):
                pass
        path = str(tmp_path / "spans.jsonl")
        assert write_spans(path, t.snapshot()) == 2
        back = read_spans(path)
        assert back == t.snapshot()

    def test_read_accepts_event_stream_dumps(self, tmp_path):
        # an NDJSON dump of /v1/jobs/<id>/events mixes span records
        # with ordinary progress events; read_spans picks the spans out
        t = SpanTracer()
        with t.span("a"):
            pass
        (span,) = t.snapshot()
        path = tmp_path / "events.jsonl"
        records = [
            {"seq": 1, "t": "job_queued", "ts": 0.0, "kind": "litmus"},
            {"seq": 2, "t": "span", "ts": 0.0, **span},
            {"seq": 3, "t": "run_end", "ts": 0.0},
        ]
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        (back,) = read_spans(str(path))
        assert back["span_id"] == span["span_id"]
        assert "seq" not in back and "t" not in back


class TestCli:
    def test_verify_spans_out_export_flame(self, tmp_path, capsys):
        spans_path = str(tmp_path / "spans.jsonl")
        assert (
            main(
                [
                    "verify", "SB", "--model", "tso",
                    "--spans-out", spans_path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "spans written to" in out

        trace_path = str(tmp_path / "trace.json")
        assert (
            main(
                [
                    "trace", "export", spans_path, "--perfetto",
                    "-o", trace_path,
                ]
            )
            == 0
        )
        with open(trace_path) as handle:
            doc = json.load(handle)
        validate_perfetto(doc)
        names = {e["name"] for e in doc["traceEvents"]}
        assert "verify:SB" in names

        assert main(["trace", "flame", spans_path]) == 0
        flame = capsys.readouterr().out
        assert "trace flame:" in flame and "verify:SB" in flame

    def test_trace_export_to_stdout(self, tmp_path, capsys):
        spans_path = str(tmp_path / "spans.jsonl")
        t = SpanTracer()
        with t.span("x"):
            pass
        write_spans(spans_path, t.snapshot())
        assert main(["trace", "export", spans_path]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_perfetto(doc)

    def test_trace_requires_exactly_one_source(self, capsys):
        assert main(["trace", "export"]) == 2
        assert "exactly one span source" in capsys.readouterr().err
        assert main(["trace", "flame", "x.jsonl", "--job", "j1"]) == 2

    def test_trace_missing_file(self, tmp_path, capsys):
        assert main(["trace", "flame", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_trace_empty_source(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", "export", str(path)]) == 1
        assert "no spans" in capsys.readouterr().err

    def test_manifest_carries_span_summary(self, tmp_path):
        manifest_path = str(tmp_path / "m.json")
        spans_path = str(tmp_path / "spans.jsonl")
        assert (
            main(
                [
                    "verify", "SB", "--model", "tso",
                    "--spans-out", spans_path,
                    "--manifest", manifest_path,
                ]
            )
            == 0
        )
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert "verify:SB" in manifest["spans"]
        assert manifest["spans"]["verify:SB"]["calls"] == 1
