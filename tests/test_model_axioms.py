"""Targeted axiom tests on hand-built graphs — the decisive shapes per
model, constructed directly so failures localise to the axiom code
(the litmus matrix covers the same ground end-to-end)."""

from repro.events import (
    FenceKind,
    FenceLabel,
    MemOrder,
    ReadLabel,
    WriteLabel,
)
from repro.graphs import ExecutionGraph
from repro.models import get_model


def mp_graph(writer_fence=None, stale=True, write_order=MemOrder.RLX,
             read_order=MemOrder.RLX):
    """W d; [F]; W f  ||  R f (from W f); R d (stale or fresh)."""
    g = ExecutionGraph(["d", "f"])
    wd = g.add_write(0, WriteLabel(loc="d", value=1))
    if writer_fence is not None:
        g.add_fence(0, FenceLabel(kind=writer_fence))
    wf = g.add_write(0, WriteLabel(loc="f", value=1, order=write_order))
    g.add_read(1, ReadLabel(loc="f", order=read_order), wf)
    g.add_read(1, ReadLabel(loc="d"), g.init_write("d") if stale else wd)
    return g


def sb_fenced_graph(kind):
    g = ExecutionGraph(["x", "y"])
    g.add_write(0, WriteLabel(loc="x", value=1))
    g.add_fence(0, FenceLabel(kind=kind))
    g.add_read(0, ReadLabel(loc="y"), g.init_write("y"))
    g.add_write(1, WriteLabel(loc="y", value=1))
    g.add_fence(1, FenceLabel(kind=kind))
    g.add_read(1, ReadLabel(loc="x"), g.init_write("x"))
    return g


class TestTso:
    def test_stale_mp_forbidden(self):
        assert not get_model("tso").is_consistent(mp_graph())

    def test_fresh_mp_allowed(self):
        assert get_model("tso").is_consistent(mp_graph(stale=False))

    def test_sb_with_mfence_forbidden(self):
        assert not get_model("tso").is_consistent(
            sb_fenced_graph(FenceKind.MFENCE)
        )

    def test_sb_with_store_fence_allowed(self):
        assert get_model("tso").is_consistent(
            sb_fenced_graph(FenceKind.DMB_ST)
        )


class TestPso:
    def test_stale_mp_allowed(self):
        assert get_model("pso").is_consistent(mp_graph())

    def test_dmb_st_restores_mp(self):
        assert not get_model("pso").is_consistent(
            mp_graph(writer_fence=FenceKind.DMB_ST)
        )


class TestPower:
    def test_lwsync_forbids_mp(self):
        # needs the reader ordered too: build with reader-side deps via
        # the litmus corpus; here writer-only lwsync leaves it allowed
        g = mp_graph(writer_fence=FenceKind.LWSYNC)
        assert get_model("power").is_consistent(g)

    def test_sync_alone_on_writer_still_allows(self):
        g = mp_graph(writer_fence=FenceKind.SYNC)
        assert get_model("power").is_consistent(g)

    def test_annotations_ignored(self):
        g = mp_graph(write_order=MemOrder.REL, read_order=MemOrder.ACQ)
        assert get_model("power").is_consistent(g)
        assert not get_model("rc11").is_consistent(g)


class TestRc11AndRa:
    def test_rel_acq_mp_forbidden(self):
        g = mp_graph(write_order=MemOrder.REL, read_order=MemOrder.ACQ)
        assert not get_model("rc11").is_consistent(g)

    def test_rlx_mp_allowed_under_rc11(self):
        assert get_model("rc11").is_consistent(mp_graph())

    def test_ra_forbids_even_rlx(self):
        # the RA model synchronises every rf edge
        assert not get_model("ra").is_consistent(mp_graph())


class TestArmv8:
    def test_stlr_ldar_orders_sb(self):
        g = ExecutionGraph(["x", "y"])
        g.add_write(0, WriteLabel(loc="x", value=1, order=MemOrder.SC))
        g.add_read(0, ReadLabel(loc="y", order=MemOrder.SC), g.init_write("y"))
        g.add_write(1, WriteLabel(loc="y", value=1, order=MemOrder.SC))
        g.add_read(1, ReadLabel(loc="x", order=MemOrder.SC), g.init_write("x"))
        assert not get_model("armv8").is_consistent(g)
        # relaxed accesses: plain SB stays allowed
        assert get_model("armv8").is_consistent(mp_graph())

    def test_rcsc_vs_rcpc_separation(self):
        """SB with rel/acq accesses: ARMv8 compiles them to stlr/ldar,
        which are RCsc ([L];po;[A] ordered) — forbidden; IMM gives
        rel/acq only RCpc strength — allowed.  This is a real
        ARMv8/IMM gap (IMM must be weaker for compilation soundness)."""
        g = ExecutionGraph(["x", "y"])
        g.add_write(0, WriteLabel(loc="x", value=1, order=MemOrder.REL))
        g.add_read(0, ReadLabel(loc="y", order=MemOrder.ACQ), g.init_write("y"))
        g.add_write(1, WriteLabel(loc="y", value=1, order=MemOrder.REL))
        g.add_read(1, ReadLabel(loc="x", order=MemOrder.ACQ), g.init_write("x"))
        assert not get_model("armv8").is_consistent(g)
        assert get_model("imm").is_consistent(g)


class TestImmPsc:
    def test_sc_accesses_restore_sb(self):
        g = ExecutionGraph(["x", "y"])
        g.add_write(0, WriteLabel(loc="x", value=1, order=MemOrder.SC))
        g.add_read(0, ReadLabel(loc="y", order=MemOrder.SC), g.init_write("y"))
        g.add_write(1, WriteLabel(loc="y", value=1, order=MemOrder.SC))
        g.add_read(1, ReadLabel(loc="x", order=MemOrder.SC), g.init_write("x"))
        assert not get_model("imm").is_consistent(g)

    def test_full_fences_restore_sb(self):
        assert not get_model("imm").is_consistent(
            sb_fenced_graph(FenceKind.SYNC)
        )
