"""Verification verdicts for the data-structure workloads.

Each verdict is a memory-model fact worth pinning:

* the Treiber stack needs release/acquire on its CAS/loads;
* queue publication (data then ready flag) needs rel/acq;
* the xchg spinlock is the ticket-lock story again;
* the reader/writer lock embeds an SB shape: acq/rel suffices only on
  multi-copy-atomic models (TSO, ARMv8) — IMM and POWER need a full
  fence, which the fence synthesiser finds automatically.
"""

import pytest

from repro import verify
from repro.bench.datastructures import (
    DATA_STRUCTURES,
    mp_queue,
    rw_lock,
    treiber_stack,
    xchg_spinlock,
)
from repro.core.repair import synthesize_fences
from repro.events import FenceKind, MemOrder


class TestTreiberStack:
    @pytest.mark.parametrize("model", ["sc", "tso", "imm", "armv8"])
    def test_safe_with_acq_rel(self, model):
        assert verify(treiber_stack(2, 1), model, stop_on_error=False).ok

    def test_broken_with_rlx_on_imm(self):
        program = treiber_stack(2, 1, MemOrder.RLX)
        result = verify(program, "imm", stop_on_error=False)
        assert not result.ok
        assert "payload" in result.errors[0].message

    def test_rlx_still_safe_under_sc(self):
        program = treiber_stack(2, 1, MemOrder.RLX)
        assert verify(program, "sc", stop_on_error=False).ok


class TestMpQueue:
    @pytest.mark.parametrize("model", ["sc", "rc11", "imm", "armv8"])
    def test_publication_safe_with_rel_acq(self, model):
        assert verify(mp_queue(1, 1), model, stop_on_error=False).ok

    def test_rlx_publication_broken_on_power(self):
        program = mp_queue(1, 1, order=MemOrder.RLX)
        result = verify(program, "power", stop_on_error=False)
        assert not result.ok

    def test_two_by_two_under_sc(self):
        result = verify(mp_queue(2, 2), "sc", stop_on_error=False)
        assert result.ok and result.executions > 1


class TestXchgSpinlock:
    @pytest.mark.parametrize("model", ["sc", "tso"])
    def test_rlx_safe_on_strong_models(self, model):
        assert verify(xchg_spinlock(2, MemOrder.RLX), model, stop_on_error=False).ok

    def test_rlx_broken_on_imm(self):
        assert not verify(xchg_spinlock(2, MemOrder.RLX), "imm", stop_on_error=False).ok

    @pytest.mark.parametrize("model", ["imm", "armv8"])
    def test_acq_rel_safe(self, model):
        assert verify(xchg_spinlock(2), model, stop_on_error=False).ok


class TestRwLock:
    @pytest.mark.parametrize("model", ["sc", "tso", "armv8"])
    def test_acq_rel_safe_on_mca_models(self, model):
        assert verify(rw_lock(1, 1), model, stop_on_error=False).ok

    @pytest.mark.parametrize("model", ["imm", "power"])
    def test_acq_rel_insufficient_on_non_mca(self, model):
        # the writer-checks-readers / reader-checks-writer handshake is
        # an SB shape: it needs a store-load fence on non-MCA models
        assert not verify(rw_lock(1, 1), model, stop_on_error=False).ok

    def test_fence_synthesis_repairs_it(self):
        fix = synthesize_fences(rw_lock(1, 1), "imm", fence=FenceKind.SYNC, max_fences=2)
        assert fix.placements is not None and len(fix.placements) == 2
        assert verify(fix.repaired, "imm", stop_on_error=False).ok


def test_registry_complete():
    assert set(DATA_STRUCTURES) == {"treiber", "mpq", "xchg-lock", "rwlock"}
    for factory in DATA_STRUCTURES.values():
        assert factory().num_threads >= 2
