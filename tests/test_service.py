"""The verification service: protocol, queue, HTTP end-to-end, drain."""

import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.cli import main
from repro.core import verify
from repro.core.report import to_dict
from repro.litmus import get_litmus, run_litmus
from repro.obs import service_families, to_prometheus
from repro.service import (
    Job,
    JobQueue,
    ProtocolError,
    QueueFull,
    ServiceClient,
    ServiceError,
    Submission,
    VerificationService,
    validate_submit,
)
from repro.service import protocol
from repro.suite import ResultCache, run_suite, litmus_task, task_key

CAT_SC = '"sc-inline"\nlet com = rf | co | fr\nacyclic po | com as sc\n'


def normalize(result_dict):
    """to_dict minus the wall-clock and bookkeeping fields."""
    return {
        k: v
        for k, v in result_dict.items()
        if k not in ("elapsed_seconds", "phases", "meta")
    }


def make_submission(priority=1, label="t"):
    return Submission("litmus", priority, None, label, [])


@pytest.fixture
def service(tmp_path):
    svc = VerificationService(
        port=0, jobs=1, queue_size=8, cache=str(tmp_path / "cache")
    )
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture
def client(service):
    return ServiceClient(service.url)


class TestProtocol:
    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            validate_submit([1, 2])

    def test_rejects_unknown_kind(self):
        with pytest.raises(ProtocolError, match="kind"):
            validate_submit({"kind": "nope"})

    def test_rejects_unknown_field(self):
        with pytest.raises(ProtocolError, match="unknown field"):
            validate_submit({"kind": "litmus", "test": "SB", "bogus": 1})

    def test_rejects_wrong_version(self):
        with pytest.raises(ProtocolError, match="protocol version"):
            validate_submit({"v": 99, "kind": "litmus", "test": "SB"})

    def test_rejects_unknown_litmus_name(self):
        with pytest.raises(ProtocolError, match="unknown litmus"):
            validate_submit({"kind": "litmus", "test": "NOPE"})

    def test_rejects_unknown_option_field(self):
        with pytest.raises(ProtocolError, match="jobs"):
            validate_submit(
                {"kind": "litmus", "test": "SB", "options": {"jobs": 4}}
            )

    def test_rejects_bad_priority(self):
        with pytest.raises(ProtocolError, match="priority"):
            validate_submit(
                {"kind": "litmus", "test": "SB", "priority": "urgent"}
            )

    def test_rejects_bad_task_timeout(self):
        with pytest.raises(ProtocolError, match="task_timeout"):
            validate_submit(
                {"kind": "litmus", "test": "SB", "task_timeout": -1}
            )

    def test_rejects_broken_cat_model(self):
        with pytest.raises(ProtocolError, match=".cat model"):
            validate_submit(
                {
                    "kind": "litmus",
                    "test": "SB",
                    "model": {"cat": "acyclic nonsense_rel as x\n"},
                }
            )

    def test_oversized_source_is_413(self):
        huge = "(* pad *)\n" * 100_000
        with pytest.raises(ProtocolError) as info:
            validate_submit(
                {"kind": "litmus", "test": "SB", "model": {"cat": huge}}
            )
        assert info.value.status == 413

    def test_oversized_suite_is_413(self):
        with pytest.raises(ProtocolError) as info:
            validate_submit(
                {"kind": "suite", "tests": None, "models": ["sc"] * 200}
            )
        assert info.value.status == 413

    def test_verify_accepts_family_and_litmus_programs(self):
        by_family = validate_submit(
            {"kind": "verify", "program": {"family": "sb", "n": 2}}
        )
        by_litmus = validate_submit(
            {"kind": "verify", "program": {"litmus": "SB"}}
        )
        assert len(by_family.tasks) == len(by_litmus.tasks) == 1

    def test_priority_names_and_numbers_agree(self):
        named = validate_submit(
            {"kind": "litmus", "test": "SB", "priority": "high"}
        )
        numbered = validate_submit(
            {"kind": "litmus", "test": "SB", "priority": 0}
        )
        assert named.priority == numbered.priority == 0

    def test_suite_builds_the_matrix(self):
        sub = validate_submit(
            {"kind": "suite", "tests": ["SB", "MP"], "models": ["sc", "tso"]}
        )
        assert sub.kind == "suite"
        assert len(sub.tasks) == 4


class TestJobStateMachine:
    def test_happy_path(self):
        job = Job(make_submission())
        assert job.state == "queued" and not job.is_terminal
        assert job.transition("running")
        assert job.transition("done")
        assert job.is_terminal

    def test_cancel_only_wins_while_queued(self):
        queued = Job(make_submission())
        assert queued.cancel_if_queued()
        assert queued.state == "cancelled"
        running = Job(make_submission())
        assert running.transition("running")
        assert not running.cancel_if_queued()
        assert running.state == "running"

    def test_terminal_states_are_sticky(self):
        job = Job(make_submission())
        job.transition("cancelled")
        assert not job.transition("running")
        assert job.state == "cancelled"

    def test_events_accumulate_with_sequence_numbers(self):
        job = Job(make_submission())
        job.add_event("alpha", x=1)
        job.add_event("beta")
        events, cursor = job.events_since(0)
        assert [e["t"] for e in events] == ["job_queued", "alpha", "beta"]
        assert cursor == 3
        later, _ = job.events_since(cursor)
        assert later == []

    def test_ring_overflow_leaves_a_dropped_marker(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_JOB_EVENTS", 4)
        job = Job(make_submission())
        for i in range(10):
            job.add_event("tick", i=i)
        events, _ = job.events_since(0)
        assert events[0]["t"] == "events_dropped"
        assert events[0]["dropped"] == 7
        assert [e["i"] for e in events[1:]] == [6, 7, 8, 9]


class TestJobQueue:
    def test_priority_order_fifo_within_priority(self):
        q = JobQueue(capacity=8)
        low = Job(make_submission(priority=2, label="low"))
        first = Job(make_submission(priority=1, label="first"))
        second = Job(make_submission(priority=1, label="second"))
        high = Job(make_submission(priority=0, label="high"))
        for job in (low, first, second, high):
            q.put(job)
        order = [q.get(timeout=0.1).submission.label for _ in range(4)]
        assert order == ["high", "first", "second", "low"]

    def test_put_raises_queue_full_at_capacity(self):
        q = JobQueue(capacity=2)
        q.put(Job(make_submission()))
        q.put(Job(make_submission()))
        with pytest.raises(QueueFull) as info:
            q.put(Job(make_submission()), retry_after=7.5)
        assert info.value.retry_after == 7.5

    def test_cancelled_jobs_free_capacity_and_are_skipped(self):
        q = JobQueue(capacity=1)
        doomed = Job(make_submission(label="doomed"))
        q.put(doomed)
        assert doomed.transition("cancelled")
        assert len(q) == 0
        survivor = Job(make_submission(label="survivor"))
        q.put(survivor)  # capacity freed by the lazy cancel
        assert q.get(timeout=0.1) is survivor

    def test_get_times_out_empty(self):
        q = JobQueue()
        assert q.get(timeout=0.01) is None

    def test_close_rejects_puts_and_wakes_getters(self):
        q = JobQueue()
        q.close()
        with pytest.raises(QueueFull):
            q.put(Job(make_submission()))
        assert q.get(timeout=5) is None  # returns immediately, no wait


class TestEndToEnd:
    """The acceptance path: HTTP results vs the direct API."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_litmus_job_bit_identical_to_direct_api(self, tmp_path, jobs):
        svc = VerificationService(
            port=0, jobs=jobs, queue_size=8, cache=str(tmp_path / "c")
        )
        svc.start()
        try:
            client = ServiceClient(svc.url)
            job = client.submit(
                {"kind": "litmus", "test": "SB", "model": "tso"}
            )
            result = client.wait(job["id"], timeout=60)
            verdict = run_litmus(get_litmus("SB"), "tso")
            assert result["verdict"]["observed"] == verdict.observed
            assert result["verdict"]["executions"] == verdict.executions
            assert result["verdict"]["duplicates"] == verdict.duplicates
            direct = run_suite(
                [litmus_task("SB", "tso")], jobs=jobs, cache=False
            )
            assert normalize(result["result"]) == normalize(
                to_dict(direct.tasks[0].result)
            )
        finally:
            svc.stop()

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_verify_job_bit_identical_to_direct_verify(self, tmp_path, jobs):
        svc = VerificationService(
            port=0, jobs=jobs, queue_size=8, cache=str(tmp_path / "c")
        )
        svc.start()
        try:
            client = ServiceClient(svc.url)
            job = client.submit(
                {
                    "kind": "verify",
                    "program": {"litmus": "MP"},
                    "model": "sc",
                }
            )
            result = client.wait(job["id"], timeout=60)
            direct = verify(
                get_litmus("MP").program, "sc", stop_on_error=False
            )
            assert normalize(result["result"]) == normalize(to_dict(direct))
        finally:
            svc.stop()

    def test_second_submission_hits_cache_and_metrics_show_it(
        self, service, client
    ):
        payload = {"kind": "litmus", "test": "MP", "model": "sc"}
        first = client.wait(client.submit(payload)["id"], timeout=60)
        assert first["cached"] is False
        second = client.wait(client.submit(payload)["id"], timeout=60)
        assert second["cached"] is True
        assert second["cache_hits"] == 1
        assert normalize(second["result"]) == normalize(first["result"])
        metrics = client.metrics()
        hits = [
            line
            for line in metrics.splitlines()
            if line.startswith("repro_service_cache_hits_total")
        ]
        assert hits and int(hits[0].split()[-1]) >= 1

    def test_inline_cat_model_round_trip(self, service, client):
        job = client.submit(
            {
                "kind": "litmus",
                "test": "SB",
                "model": {"cat": CAT_SC, "name": "sc-inline"},
            }
        )
        result = client.wait(job["id"], timeout=60)
        assert result["verdict"]["model"] == "sc-inline"
        # SB's relaxed outcome is forbidden under an SC-equivalent model
        assert result["verdict"]["observed"] is False

    def test_suite_job_matches_direct_run(self, service, client):
        job = client.submit(
            {
                "kind": "suite",
                "tests": ["SB", "MP"],
                "models": ["sc", "tso"],
            }
        )
        result = client.wait(job["id"], timeout=60)
        manifest = result["manifest"]
        assert manifest["totals"]["tasks"] == 4
        by_pair = {
            (t["program"], t["model"]): t["observed"]
            for t in manifest["tasks"]
        }
        for name in ("SB", "MP"):
            for model in ("sc", "tso"):
                expected = run_litmus(get_litmus(name), model).observed
                assert by_pair[(name, model)] == expected

    def test_event_stream_covers_the_lifecycle(self, service, client):
        job = client.submit({"kind": "litmus", "test": "LB", "model": "sc"})
        types = [e["t"] for e in client.stream(job["id"], timeout=60)]
        assert types[0] == "job_queued"
        assert "job_running" in types
        assert "suite_task_done" in types
        assert types[-1] == "job_done"
        seqs = [
            e["seq"] for e in client.stream(job["id"], timeout=5)
        ]
        assert seqs == sorted(seqs)

    def test_options_reach_the_engine(self, service, client):
        job = client.submit(
            {
                "kind": "verify",
                "program": {"litmus": "SB"},
                "model": "sc",
                "options": {"max_executions": 1},
            }
        )
        result = client.wait(job["id"], timeout=60)
        assert result["result"]["truncated"] is True
        assert result["result"]["executions"] == 1

    def test_status_and_list_reflect_the_job(self, service, client):
        job = client.submit({"kind": "litmus", "test": "SB", "model": "sc"})
        client.wait(job["id"], timeout=60)
        status = client.status(job["id"])
        assert status["state"] == "done"
        assert status["result_ready"] is True
        assert job["id"] in [j["id"] for j in client.list_jobs()]

    def test_health_and_ready(self, client):
        assert client.health() is True
        assert client.ready() is True


class TestBackpressureAndErrors:
    @pytest.fixture
    def frozen(self, tmp_path):
        """A service whose executor never starts: jobs stay queued."""
        svc = VerificationService(
            port=0, jobs=1, queue_size=1, cache=str(tmp_path / "c")
        )
        svc.start(start_executor=False)
        yield svc, ServiceClient(svc.url)
        svc.stop()

    def test_full_queue_is_429_with_retry_after(self, frozen):
        _svc, client = frozen
        payload = {"kind": "litmus", "test": "SB", "model": "sc"}
        client.submit(payload)
        with pytest.raises(ServiceError) as info:
            client.submit(payload)
        assert info.value.status == 429
        assert info.value.retry_after >= 1

    def test_queued_job_cancels_and_frees_the_slot(self, frozen):
        _svc, client = frozen
        payload = {"kind": "litmus", "test": "SB", "model": "sc"}
        job = client.submit(payload)
        cancelled = client.cancel(job["id"])
        assert cancelled["cancelled"] is True
        assert cancelled["state"] == "cancelled"
        client.submit(payload)  # the 429 slot is free again

    def test_result_before_terminal_is_409(self, frozen):
        _svc, client = frozen
        job = client.submit({"kind": "litmus", "test": "SB", "model": "sc"})
        with pytest.raises(ServiceError) as info:
            client.result(job["id"])
        assert info.value.status == 409

    def test_cancel_terminal_job_is_409(self, service, client):
        job = client.submit({"kind": "litmus", "test": "SB", "model": "sc"})
        client.wait(job["id"], timeout=60)
        with pytest.raises(ServiceError) as info:
            client.cancel(job["id"])
        assert info.value.status == 409

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as info:
            client.status("feedfacecafe")
        assert info.value.status == 404

    def test_invalid_payload_is_400(self, client):
        with pytest.raises(ServiceError) as info:
            client.submit({"kind": "litmus", "test": "NOPE"})
        assert info.value.status == 400

    def test_draining_rejects_submissions_and_flips_readyz(self, frozen):
        svc, client = frozen
        svc.begin_drain()
        assert client.ready() is False
        assert client.health() is True
        with pytest.raises(ServiceError) as info:
            client.submit({"kind": "litmus", "test": "SB", "model": "sc"})
        assert info.value.status == 503


class TestSigtermDrain:
    """`hmc serve` under SIGTERM: finish in-flight work, exit 0."""

    def test_serve_drains_and_exits_zero(self, tmp_path):
        port_file = tmp_path / "port"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--port-file",
                str(port_file),
                "--jobs",
                "1",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--quiet",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not port_file.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert port_file.exists(), "server never published its port"
            port = int(port_file.read_text())
            client = ServiceClient(f"http://127.0.0.1:{port}")
            submitted = [
                client.submit(
                    {"kind": "litmus", "test": name, "model": "tso"}
                )["id"]
                for name in ("SB", "MP", "LB")
            ]
            assert len(submitted) == 3
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        # every accepted job finished before exit — none were dropped
        assert "drained cleanly: 3 done, 0 failed" in out


class TestCachePrune:
    """Satellite: the LRU-by-mtime size cap on the result cache."""

    def _fill(self, cache, count):
        """Store ``count`` distinct entries; returns their keys oldest
        mtime first (mtimes are spread so LRU order is deterministic)."""
        keys = []
        for i in range(count):
            task = litmus_task("SB", "sc", max_executions=100 + i)
            key = task_key(
                task.program,
                task.model,
                task.options,
                kind=task.kind,
                probe="SB",
            )
            result = verify(
                task.program, task.model, options=task.options
            )
            path = cache.store(key, result, task={"id": f"t{i}"})
            os.utime(path, (i, i))
            keys.append(key)
        return keys

    def test_prune_unlimited_is_a_no_op(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        self._fill(cache, 3)
        assert cache.max_mb is None
        assert cache.prune() == 0
        assert len(cache) == 3

    def test_prune_removes_oldest_first(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        keys = self._fill(cache, 4)
        entry_size = max(
            os.path.getsize(cache.path(k)) for k in keys
        )
        # cap to roughly two entries
        cap_mb = (2 * entry_size + 64) / (1024 * 1024)
        removed = cache.prune(max_mb=cap_mb)
        assert removed >= 1
        remaining = set(cache.keys())
        assert len(remaining) == 4 - removed
        # strictly the oldest-mtime entries went first
        assert remaining == set(keys[removed:])

    def test_store_prunes_automatically_under_a_cap(self, tmp_path):
        tiny = 1 / 1024  # 1 KiB: smaller than a single entry
        cache = ResultCache(str(tmp_path), max_mb=tiny)
        self._fill(cache, 3)
        assert len(cache) <= 1

    def test_env_var_sets_the_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_CACHE_MAX_MB", "0.5")
        cache = ResultCache(str(tmp_path))
        assert cache.max_mb == 0.5
        monkeypatch.setenv("REPRO_SUITE_CACHE_MAX_MB", "bogus")
        assert ResultCache(str(tmp_path)).max_mb is None

    def test_zero_cap_empties_the_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        self._fill(cache, 2)
        assert cache.prune(max_mb=0) == 2
        assert len(cache) == 0


def _store_same_key(root, key, results, index):
    """Worker for the concurrent-store test (threads)."""
    cache = ResultCache(root)
    result = verify(get_litmus("SB").program, "sc", stop_on_error=False)
    for _ in range(20):
        cache.store(key, result, task={"id": "race"})
        entry = cache.load(key)
        results[index] = entry is not None


def _store_in_subprocess(root, key):
    from repro.litmus import get_litmus
    from repro.core import verify
    from repro.suite import ResultCache

    cache = ResultCache(root)
    result = verify(get_litmus("SB").program, "sc", stop_on_error=False)
    for _ in range(20):
        cache.store(key, result, task={"id": "race"})


class TestConcurrentStore:
    """Satellite: same-key stores from two threads and two processes
    publish atomically — a reader never sees torn JSON."""

    def test_two_threads_never_tear_an_entry(self, tmp_path):
        task = litmus_task("SB", "sc")
        key = task_key(
            task.program, task.model, task.options,
            kind=task.kind, probe="SB",
        )
        results = [False, False]
        threads = [
            threading.Thread(
                target=_store_same_key,
                args=(str(tmp_path), key, results, i),
            )
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(results)
        entry = ResultCache(str(tmp_path)).load(key)
        assert entry is not None and entry["key"] == key
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []

    def test_two_processes_never_tear_an_entry(self, tmp_path):
        task = litmus_task("SB", "sc")
        key = task_key(
            task.program, task.model, task.options,
            kind=task.kind, probe="SB",
        )
        ctx = multiprocessing.get_context()
        procs = [
            ctx.Process(
                target=_store_in_subprocess, args=(str(tmp_path), key)
            )
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        entry = ResultCache(str(tmp_path)).load(key)
        assert entry is not None and entry["result"]["executions"] > 0
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []


class TestServiceFamilies:
    """Satellite: the service metric families in the Prometheus text."""

    SNAPSHOT = {
        "jobs": {"done": 3, "failed": 1, "cancelled": 0},
        "queue_depth": 2,
        "inflight": 1,
        "submitted": 6,
        "rejected": 4,
        "cache_hits": 2,
        "executions": 123,
        "uptime_seconds": 9.5,
    }

    def test_families_render_and_parse(self):
        text = to_prometheus({}, service=self.SNAPSHOT)
        parsed = {}
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name_labels, value = line.rsplit(" ", 1)
            parsed[name_labels] = float(value)
        assert parsed['repro_service_jobs_total{state="done"}'] == 3
        assert parsed['repro_service_jobs_total{state="failed"}'] == 1
        assert parsed['repro_service_jobs_total{state="cancelled"}'] == 0
        assert parsed["repro_service_queue_depth"] == 2
        assert parsed["repro_service_inflight"] == 1
        assert parsed["repro_service_submitted_total"] == 6
        assert parsed["repro_service_rejected_total"] == 4
        assert parsed["repro_service_cache_hits_total"] == 2
        assert parsed["repro_service_executions_total"] == 123

    def test_every_family_has_help_and_type(self):
        lines = service_families(self.SNAPSHOT)
        names = {
            line.split()[2]
            for line in lines
            if line.startswith("# HELP")
        }
        for name in names:
            assert f"# TYPE {name}" in "\n".join(lines)

    def test_run_manifest_export_is_unchanged(self):
        # the service families ride alongside, never instead of,
        # the per-run export — and an empty manifest contributes
        # nothing but the service block
        text = to_prometheus({}, service=self.SNAPSHOT)
        assert "repro_executions_total" not in text
        assert text.endswith("\n")

    def test_state_labels_survive_escaping_rules(self):
        snapshot = dict(self.SNAPSHOT)
        snapshot["jobs"] = {'do"ne\\': 1}
        text = to_prometheus({}, service=snapshot)
        assert 'state="do\\"ne\\\\"' in text


class TestCliInterrupt:
    """Satellite: Ctrl-C during a run exits 130 with a clean line."""

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        from repro import cli

        def boom(_args):
            sys.stderr.write("exploring... 42%")
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "verify", boom)
        code = main(["verify", "SB"])
        assert code == 130
        err = capsys.readouterr().err
        assert err.endswith("exploring... 42%\ninterrupted\n")

    def test_interrupt_in_suite_run_exits_130(self, monkeypatch):
        from repro import cli

        monkeypatch.setitem(
            cli._COMMANDS,
            "suite",
            lambda _args: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        assert main(["suite", "run"]) == 130


class TestSpansEndToEnd:
    """Tentpole: one trace_id from HTTP submit to worker subprocess."""

    @pytest.fixture
    def traced_job(self, tmp_path):
        # jobs=2 + cache off forces real pool execution so worker
        # processes contribute span segments under the job's trace
        svc = VerificationService(port=0, jobs=2, queue_size=8, cache=False)
        svc.start()
        try:
            client = ServiceClient(svc.url)
            job = client.submit(
                {
                    "kind": "suite",
                    "tests": ["SB", "MP", "LB", "CoRR"],
                    "models": ["sc", "tso"],
                }
            )
            client.wait(job["id"], timeout=300)
            yield client, job["id"]
        finally:
            svc.stop()

    def test_one_trace_spans_submit_to_worker_phase(self, traced_job):
        from repro.obs import to_perfetto, validate_perfetto

        client, job_id = traced_job
        doc = client.spans(job_id)
        spans = doc["spans"]
        assert {s["trace_id"] for s in spans} == {doc["trace_id"]}
        # >= 2 distinct pids: the executor process and pool workers
        assert len({s["pid"] for s in spans}) >= 2
        # the submit span is the single root of the whole tree
        by_id = {s["span_id"]: s for s in spans}
        roots = [s for s in spans if s.get("parent_id") not in by_id]
        assert [s["name"] for s in roots] == ["http:submit"]
        # chain intact: http -> job -> task -> worker -> phase
        cats = {s["cat"] for s in spans}
        assert {"http", "job", "task", "worker", "phase"} <= cats
        phase = next(
            s
            for s in spans
            if s["cat"] == "phase"
            and by_id[s["parent_id"]]["cat"] == "worker"
        )
        chain = [phase["cat"]]
        cursor = phase
        while cursor.get("parent_id"):
            cursor = by_id[cursor["parent_id"]]
            chain.append(cursor["cat"])
        assert chain[-1] == "http"
        # the exported Perfetto document passes the schema check
        report = validate_perfetto(
            to_perfetto(spans), trace_id=doc["trace_id"], min_pids=2
        )
        assert report["events"] == len(spans)

    def test_event_stream_carries_span_records(self, traced_job):
        client, job_id = traced_job
        events = list(client.stream(job_id, timeout=5.0))
        span_events = [e for e in events if e["t"] == "span"]
        assert span_events
        assert all("span_id" in e and "trace_id" in e for e in span_events)

    def test_status_reports_trace_fields(self, traced_job):
        client, job_id = traced_job
        status = client.status(job_id)
        assert status["trace_id"]
        assert status["spans"] > 0
        assert status["events_dropped"] == 0

    def test_trace_export_cli_against_service(self, traced_job, tmp_path):
        from repro.obs import validate_perfetto

        client, job_id = traced_job
        out = str(tmp_path / "trace.json")
        code = main(
            [
                "trace", "export", "--job", job_id, "--url", client.url,
                "--perfetto", "-o", out,
            ]
        )
        assert code == 0
        import json

        with open(out) as handle:
            doc = json.load(handle)
        validate_perfetto(doc, min_pids=2)

    def test_trace_flame_cli_against_service(self, traced_job, capsys):
        client, job_id = traced_job
        code = main(["trace", "flame", "--job", job_id, "--url", client.url])
        assert code == 0
        flame = capsys.readouterr().out
        assert "http:submit" in flame and "job:suite" in flame


class TestEventsDropped:
    """Satellite: ring eviction is counted, hooked and exported."""

    def test_job_counts_dropped_events(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_JOB_EVENTS", 4)
        drops = []
        job = Job(make_submission())
        job.on_drop = lambda n: drops.append(n)
        for i in range(10):
            job.add_event("tick", i=i)
        assert job.events_dropped == 7
        assert sum(drops) == 7
        assert job.status()["events_dropped"] == 7

    def test_stats_accumulate_across_jobs(self):
        from repro.service.worker import ServiceStats

        stats = ServiceStats()
        stats.record_events_dropped(3)
        stats.record_events_dropped(4)
        assert stats.snapshot()["events_dropped"] == 7

    def test_family_renders_in_metrics(self):
        text = to_prometheus({}, service={"events_dropped": 12})
        assert "repro_service_events_dropped_total 12" in text
        # shape-stable: absent key renders as zero
        assert (
            "repro_service_events_dropped_total 0"
            in to_prometheus({}, service={})
        )

    def test_submit_wires_the_drop_hook(self, service, client, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_JOB_EVENTS", 4)
        job = client.submit({"kind": "litmus", "test": "SB", "model": "sc"})
        client.wait(job["id"], timeout=60)
        dropped = service.stats.snapshot()["events_dropped"]
        assert dropped == service.job(job["id"]).events_dropped
        assert f"repro_service_events_dropped_total {dropped}" in (
            client.metrics()
        )


class TestRetryAfterParsing:
    """Satellite: Retry-After hardening (delta-seconds, HTTP-date,
    garbage)."""

    def test_delta_seconds(self):
        from repro.service.client import _parse_retry_after

        assert _parse_retry_after("120") == 120.0
        assert _parse_retry_after("1.5") == 1.5
        assert _parse_retry_after("-3") == 0.0

    def test_http_date(self):
        from email.utils import formatdate

        from repro.service.client import _parse_retry_after

        future = _parse_retry_after(formatdate(time.time() + 60, usegmt=True))
        assert future is not None and 50.0 <= future <= 70.0
        past = _parse_retry_after(formatdate(time.time() - 60, usegmt=True))
        assert past == 0.0

    def test_garbage_degrades_to_none(self):
        from repro.service.client import _parse_retry_after

        assert _parse_retry_after(None) is None
        assert _parse_retry_after("") is None
        assert _parse_retry_after("soon") is None
        assert _parse_retry_after("Wed, 99 Xxx") is None

    def test_http_error_with_date_header_does_not_raise(self):
        import io
        from email.message import Message
        from email.utils import formatdate
        from urllib.error import HTTPError

        headers = Message()
        headers["Retry-After"] = formatdate(time.time() + 30, usegmt=True)
        exc = HTTPError(
            "http://x/v1/jobs", 429, "Too Many Requests", headers,
            io.BytesIO(b'{"error": "queue full"}'),
        )
        err = ServiceClient._service_error(exc)
        assert err.status == 429
        assert err.retry_after is not None and err.retry_after > 0


class TestPrometheusConcurrency:
    """Satellite: label-escaping round-trips and scrapes while a job
    is in flight."""

    def test_counter_label_escaping_round_trips(self):
        from repro.obs import build_manifest

        class FakeResult:
            program = 'p"rog\\ram\nx'
            model = "m"
            executions = 1
            blocked = 0
            duplicates = 0
            errors = ()
            truncated = False
            elapsed = 0.0
            outcomes = {}
            phase_times = {}
            meta = {}

            class stats:
                @staticmethod
                def as_dict():
                    return {}

        snapshot = {
            "counters": {'hit"rate\\per\nsec': 7},
            "gauges": {},
            "histograms": {},
        }
        text = to_prometheus(build_manifest(FakeResult(), snapshot))
        line = next(
            l for l in text.splitlines()
            if l.startswith("repro_counter_total")
        )
        # unescape per the exposition format: the original strings
        # round-trip through the label values
        import re

        values = re.findall(r'"((?:[^"\\]|\\.)*)"', line)
        decoded = [
            v.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
            for v in values
        ]
        assert 'p"rog\\ram\nx' in decoded
        assert 'hit"rate\\per\nsec' in decoded

    def test_metrics_scrape_during_inflight_job(self, tmp_path):
        svc = VerificationService(port=0, jobs=1, queue_size=8, cache=False)
        svc.start()
        try:
            client = ServiceClient(svc.url)
            job = client.submit(
                {"kind": "suite", "tests": ["SB", "MP"], "models": ["sc"]}
            )
            texts, errors = [], []

            def scrape():
                try:
                    for _ in range(5):
                        texts.append(client.metrics())
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=scrape) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            client.wait(job["id"], timeout=120)
            assert not errors
            assert len(texts) == 20
            # every concurrent snapshot is a complete, consistent text
            for text in texts:
                assert "repro_service_jobs_total" in text
                assert "repro_service_events_dropped_total" in text
                assert text.endswith("\n")
        finally:
            svc.stop()
