"""Unit tests for the dependency-tracking thread interpreter."""

import pytest

from repro.events import Event, FenceKind, MemOrder, ReadLabel, WriteLabel
from repro.lang import ProgramBuilder, ReplayStatus, replay


def build_thread(fill):
    p = ProgramBuilder("t")
    t = p.thread()
    fill(t)
    return p.build().threads[0]


class TestBasicReplay:
    def test_straight_line_writes(self):
        stmts = build_thread(lambda t: (t.store("x", 1), t.store("y", 2)))
        rep = replay(stmts, 0, [])
        assert rep.status is ReplayStatus.FINISHED
        assert [lab.loc for lab in rep.labels] == ["x", "y"]
        assert [lab.value for lab in rep.labels] == [1, 2]

    def test_read_needs_value(self):
        stmts = build_thread(lambda t: t.load("x"))
        rep = replay(stmts, 0, [])
        assert rep.status is ReplayStatus.NEEDS_VALUE
        assert rep.pending is not None and rep.pending.loc == "x"
        assert rep.labels == ()

    def test_read_consumes_value(self):
        def fill(t):
            a = t.load("x")
            t.store("y", a + 1)

        stmts = build_thread(fill)
        rep = replay(stmts, 0, [41])
        assert rep.status is ReplayStatus.FINISHED
        assert rep.labels[1].value == 42

    def test_registers_at_finish(self):
        def fill(t):
            a = t.load("x", into=None)

        p = ProgramBuilder("t")
        t = p.thread()
        a = t.load("x")
        prog = p.build()
        rep = replay(prog.threads[0], 0, [7])
        assert rep.registers[a.name] == 7

    def test_truncation(self):
        stmts = build_thread(lambda t: (t.store("x", 1), t.store("y", 2)))
        rep = replay(stmts, 0, [], max_events=1)
        assert rep.status is ReplayStatus.TRUNCATED
        assert len(rep.labels) == 1

    def test_determinism(self):
        def fill(t):
            a = t.load("x")
            t.if_(a.eq(1), lambda b: b.store("y", 10), lambda b: b.store("z", 20))

        stmts = build_thread(fill)
        assert replay(stmts, 0, [1]) == replay(stmts, 0, [1])
        assert replay(stmts, 0, [1]).labels != replay(stmts, 0, [0]).labels


class TestControlFlow:
    def test_if_branches(self):
        def fill(t):
            a = t.load("x")
            t.if_(a.eq(0), lambda b: b.store("y", 1), lambda b: b.store("y", 2))

        stmts = build_thread(fill)
        assert replay(stmts, 0, [0]).labels[1].value == 1
        assert replay(stmts, 0, [5]).labels[1].value == 2

    def test_repeat_unrolls(self):
        stmts = build_thread(lambda t: t.repeat(3, lambda b: b.store("x", 1)))
        assert len(replay(stmts, 0, []).labels) == 3

    def test_assume_blocks(self):
        def fill(t):
            a = t.load("x")
            t.assume(a.eq(1))
            t.store("y", 1)

        stmts = build_thread(fill)
        blocked = replay(stmts, 0, [0])
        assert blocked.status is ReplayStatus.BLOCKED
        assert len(blocked.labels) == 1  # the read happened, the store did not
        ok = replay(stmts, 0, [1])
        assert ok.status is ReplayStatus.FINISHED

    def test_assert_fails(self):
        def fill(t):
            a = t.load("x")
            t.assert_(a.eq(1), "x must be 1")

        stmts = build_thread(fill)
        rep = replay(stmts, 0, [0])
        assert rep.status is ReplayStatus.ERROR
        assert rep.error == "x must be 1"


class TestRmw:
    def test_fai_emits_pair(self):
        p = ProgramBuilder("t")
        t = p.thread()
        old = t.fai("c", 2)
        prog = p.build()
        rep = replay(prog.threads[0], 0, [5])
        read, write = rep.labels
        assert isinstance(read, ReadLabel) and read.exclusive
        assert isinstance(write, WriteLabel) and write.exclusive
        assert write.value == 7
        assert rep.registers[old.name] == 5

    def test_cas_success_and_failure(self):
        p = ProgramBuilder("t")
        t = p.thread()
        ok = t.cas("l", 0, 1)
        prog = p.build()
        success = replay(prog.threads[0], 0, [0])
        assert len(success.labels) == 2 and success.registers[ok.name] == 1
        failure = replay(prog.threads[0], 0, [3])
        assert len(failure.labels) == 1 and failure.registers[ok.name] == 0

    def test_cas_old_reg(self):
        p = ProgramBuilder("t")
        t = p.thread()
        old = t.fresh_reg("old")
        t.cas("l", 0, 1, old_into=old)
        prog = p.build()
        rep = replay(prog.threads[0], 0, [9])
        assert rep.registers[old.name] == 9

    def test_xchg(self):
        p = ProgramBuilder("t")
        t = p.thread()
        old = t.xchg("l", 42)
        prog = p.build()
        rep = replay(prog.threads[0], 0, [7])
        assert rep.labels[1].value == 42
        assert rep.registers[old.name] == 7


class TestDependencies:
    def test_data_dependency(self):
        def fill(t):
            a = t.load("x")
            t.store("y", a + 1)

        stmts = build_thread(fill)
        rep = replay(stmts, 0, [0])
        assert rep.labels[1].data_deps == {Event(0, 0)}

    def test_addr_dependency(self):
        def fill(t):
            a = t.load("x")
            t.load(("arr", a))

        stmts = build_thread(fill)
        rep = replay(stmts, 0, [2, 0])
        second = rep.labels[1]
        assert second.loc == "arr[2]"
        assert second.addr_deps == {Event(0, 0)}

    def test_ctrl_dependency_is_sticky(self):
        def fill(t):
            a = t.load("x")
            t.if_(a.eq(1), lambda b: b.store("y", 1))
            t.store("z", 1)  # after the branch: still ctrl-dependent

        stmts = build_thread(fill)
        rep = replay(stmts, 0, [1])
        assert rep.labels[1].ctrl_deps == {Event(0, 0)}
        assert rep.labels[2].ctrl_deps == {Event(0, 0)}

    def test_independent_store_has_no_deps(self):
        def fill(t):
            t.load("x")
            t.store("y", 1)

        stmts = build_thread(fill)
        rep = replay(stmts, 0, [0])
        assert rep.labels[1].deps == frozenset()

    def test_fai_write_depends_on_read(self):
        p = ProgramBuilder("t")
        t = p.thread()
        t.fai("c", 1)
        rep = replay(p.build().threads[0], 0, [0])
        assert Event(0, 0) in rep.labels[1].data_deps

    def test_cas_write_ctrl_depends_on_read(self):
        p = ProgramBuilder("t")
        t = p.thread()
        t.cas("l", 0, 1)
        rep = replay(p.build().threads[0], 0, [0])
        assert Event(0, 0) in rep.labels[1].ctrl_deps

    def test_fence_kinds(self):
        def fill(t):
            t.fence(FenceKind.LWSYNC)

        stmts = build_thread(fill)
        rep = replay(stmts, 0, [])
        assert rep.labels[0].kind is FenceKind.LWSYNC
