"""Property-based tests of the relation calculus (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relations import Relation, seq, union

nodes = st.integers(min_value=0, max_value=7)
pairs = st.tuples(nodes, nodes)
relations = st.lists(pairs, max_size=25).map(Relation)


@given(relations)
def test_closure_is_transitive(rel):
    assert rel.transitive_closure().is_transitive()


@given(relations)
def test_closure_is_idempotent(rel):
    once = rel.transitive_closure()
    assert once.transitive_closure() == once


@given(relations)
def test_closure_contains_relation(rel):
    closed = rel.transitive_closure()
    assert all(p in closed for p in rel.pairs())


@given(relations)
def test_acyclic_iff_closure_irreflexive(rel):
    assert rel.is_acyclic() == rel.transitive_closure().is_irreflexive()


@given(relations, relations)
def test_union_commutes(a, b):
    assert (a | b) == (b | a)


@given(relations, relations, relations)
@settings(max_examples=50)
def test_compose_distributes_over_union(a, b, c):
    left = seq(a, union(b, c))
    right = union(seq(a, b), seq(a, c))
    assert left == right


@given(relations)
def test_double_inverse_is_identity(rel):
    assert rel.inverse().inverse() == rel


@given(relations, relations)
def test_inverse_antidistributes_over_compose(a, b):
    assert seq(a, b).inverse() == seq(b.inverse(), a.inverse())


@given(relations)
def test_restrict_to_nodes_is_noop(rel):
    assert rel.restrict(rel.nodes()) == rel


@given(relations)
def test_acyclic_subrelation_of_total_order(rel):
    """Any subrelation of < over ints is acyclic."""
    below = Relation((a, b) for a, b in rel.pairs() if a < b)
    assert below.is_acyclic()


@given(st.lists(nodes, unique=True, max_size=8))
def test_topological_sort_respects_order(ordered):
    rel = Relation.total_order(ordered)
    assert rel.topological_sort(list(reversed(ordered))) == ordered
