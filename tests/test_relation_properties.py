"""Property-based tests of the relation calculus (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relations import Relation, bracket, optional, seq, union

nodes = st.integers(min_value=0, max_value=7)
pairs = st.tuples(nodes, nodes)
relations = st.lists(pairs, max_size=25).map(Relation)


@given(relations)
def test_closure_is_transitive(rel):
    assert rel.transitive_closure().is_transitive()


@given(relations)
def test_closure_is_idempotent(rel):
    once = rel.transitive_closure()
    assert once.transitive_closure() == once


@given(relations)
def test_closure_contains_relation(rel):
    closed = rel.transitive_closure()
    assert all(p in closed for p in rel.pairs())


@given(relations)
def test_acyclic_iff_closure_irreflexive(rel):
    assert rel.is_acyclic() == rel.transitive_closure().is_irreflexive()


@given(relations, relations)
def test_union_commutes(a, b):
    assert (a | b) == (b | a)


@given(relations, relations, relations)
@settings(max_examples=50)
def test_compose_distributes_over_union(a, b, c):
    left = seq(a, union(b, c))
    right = union(seq(a, b), seq(a, c))
    assert left == right


@given(relations)
def test_double_inverse_is_identity(rel):
    assert rel.inverse().inverse() == rel


@given(relations, relations)
def test_inverse_antidistributes_over_compose(a, b):
    assert seq(a, b).inverse() == seq(b.inverse(), a.inverse())


@given(relations)
def test_restrict_to_nodes_is_noop(rel):
    assert rel.restrict(rel.nodes()) == rel


@given(relations)
def test_acyclic_subrelation_of_total_order(rel):
    """Any subrelation of < over ints is acyclic."""
    below = Relation((a, b) for a, b in rel.pairs() if a < b)
    assert below.is_acyclic()


@given(st.lists(nodes, unique=True, max_size=8))
def test_topological_sort_respects_order(ordered):
    rel = Relation.total_order(ordered)
    assert rel.topological_sort(list(reversed(ordered))) == ordered


# -- fixpoint (r+ / r*) edge cases ---------------------------------------


def test_closure_of_empty_is_empty():
    assert Relation().transitive_closure() == Relation()
    assert Relation().is_acyclic()


def test_rtc_of_empty_is_identity():
    universe = range(4)
    rtc = Relation().reflexive_transitive_closure(universe)
    assert rtc == Relation.identity(universe)


def test_self_loop_is_cyclic_but_closure_stable():
    loop = Relation([(1, 1)])
    assert not loop.is_acyclic()
    assert not loop.is_irreflexive()
    assert loop.transitive_closure() == loop


def test_two_cycle_closure_saturates():
    cycle = Relation([(0, 1), (1, 0)])
    closed = cycle.transitive_closure()
    assert closed == Relation([(0, 1), (1, 0), (0, 0), (1, 1)])
    assert not cycle.is_acyclic()


@given(relations)
def test_rtc_equals_closure_plus_identity(rel):
    universe = rel.nodes() | {99}
    rtc = rel.reflexive_transitive_closure(universe)
    assert rtc == (rel.transitive_closure() | Relation.identity(universe))


@given(relations)
def test_closure_grows_monotonically(rel):
    closed = rel.transitive_closure()
    assert set(rel.pairs()) <= set(closed.pairs())
    assert (closed | closed.compose(closed)) == closed  # fixpoint reached


# -- inverse / composition identities ------------------------------------


@given(relations)
def test_inverse_preserves_acyclicity(rel):
    assert rel.is_acyclic() == rel.inverse().is_acyclic()


@given(relations)
def test_compose_with_identity_is_noop(rel):
    ident = Relation.identity(rel.nodes())
    assert seq(ident, rel) == rel
    assert seq(rel, ident) == rel


@given(relations)
def test_compose_with_empty_is_empty(rel):
    empty = Relation()
    assert seq(rel, empty) == empty
    assert seq(empty, rel) == empty


@given(st.sets(nodes, max_size=8))
def test_bracket_is_idempotent_under_compose(s):
    b = bracket(s)
    assert seq(b, b) == b


@given(relations)
def test_optional_adds_exactly_identity(rel):
    universe = rel.nodes() | {42}
    assert optional(rel, universe) == (rel | Relation.identity(universe))


@given(relations, relations)
def test_inverse_distributes_over_union(a, b):
    assert (a | b).inverse() == (a.inverse() | b.inverse())


@given(relations, relations)
def test_intersection_bounded_by_operands(a, b):
    inter = a & b
    assert set(inter.pairs()) <= set(a.pairs())
    assert set(inter.pairs()) <= set(b.pairs())
    assert (a - b) | inter == a
