"""Tests for the parallel subtree-sharding engine (`repro.core.parallel`)
and the result-merge machinery it relies on."""

import os
import pickle

import pytest

from repro.core import (
    ExplorationOptions,
    Explorer,
    VerificationResult,
    effective_jobs,
    from_json,
    split_frontier,
    to_json,
    verify,
    verify_parallel,
)
from repro.core.result import ExecutionRecord, Stats
from repro.lang import ProgramBuilder
from repro.litmus import MODELS, all_litmus_tests
from repro.obs import NULL_OBSERVER


def sb():
    p = ProgramBuilder("SB")
    t1 = p.thread(); t1.store("x", 1); a = t1.load("y")
    t2 = p.thread(); t2.store("y", 1); b = t2.load("x")
    p.observe(a, b)
    return p.build()


def sb_n(n):
    p = ProgramBuilder(f"sb({n})")
    regs = []
    for i in range(n):
        t = p.thread()
        t.store(f"x{i}", 1)
        regs.append(t.load(f"x{(i + 1) % n}"))
    p.observe(*regs)
    return p.build()


def racy():
    p = ProgramBuilder("racy-assert")
    t1 = p.thread(); t1.store("x", 1)
    t2 = p.thread(); r = t2.load("x"); t2.assert_(r.eq(0), "saw the store")
    return p.build()


def serial_result(program, model, **overrides):
    options = ExplorationOptions(stop_on_error=False, **overrides)
    return Explorer(program, model, options).run()


class TestStatsMerge:
    def test_fieldwise_sum(self):
        a = Stats(reads_added=3, writes_added=1)
        b = Stats(reads_added=4, revisits_considered=2)
        merged = a.merge(b)
        assert merged.reads_added == 7
        assert merged.writes_added == 1
        assert merged.revisits_considered == 2

    def test_identity(self):
        a = Stats(reads_added=5)
        assert a.merge(Stats()) == a


class TestResultMerge:
    def test_program_mismatch_raises(self):
        left = serial_result(sb(), "sc")
        right = serial_result(sb_n(3), "sc")
        with pytest.raises(ValueError):
            left.merge(right)

    def test_keyed_merge_equals_serial(self):
        """Splitting records across parts and re-merging reproduces the
        serial counts exactly."""
        whole = serial_result(sb(), "tso", collect_keys=True)
        assert whole.keyed
        records = whole.execution_records
        for cut in range(len(records) + 1):
            left = VerificationResult(program=whole.program, model=whole.model)
            left.execution_records = list(records[:cut])
            left.executions = cut
            right = VerificationResult(program=whole.program, model=whole.model)
            right.execution_records = list(records[cut:])
            right.executions = len(records) - cut
            merged = left.merge(right)
            assert merged.executions == whole.executions
            assert merged.outcomes == whole.outcomes
            assert {r.key for r in merged.execution_records} == {
                r.key for r in records
            }

    def test_merge_dedups_shared_executions(self):
        whole = serial_result(sb(), "tso", collect_keys=True)
        merged = whole.merge(whole)
        assert merged.executions == whole.executions
        assert merged.duplicates == whole.executions  # every right rec dup

    def test_merge_associative(self):
        whole = serial_result(sb_n(3), "tso", collect_keys=True)
        records = whole.execution_records
        thirds = [records[0::3], records[1::3], records[2::3]]
        parts = []
        for chunk in thirds:
            part = VerificationResult(program=whole.program, model=whole.model)
            part.execution_records = list(chunk)
            part.executions = len(chunk)
            parts.append(part)
        a, b, c = parts
        left_assoc = a.merge(b).merge(c)
        right_assoc = a.merge(b.merge(c))
        assert left_assoc.executions == right_assoc.executions == len(records)
        assert {r.key for r in left_assoc.execution_records} == {
            r.key for r in right_assoc.execution_records
        }

    def test_blocked_truncated_elapsed(self):
        a = VerificationResult(program="p", model="sc", blocked=2, elapsed=1.0)
        b = VerificationResult(
            program="p", model="sc", blocked=3, truncated=True, elapsed=0.5
        )
        merged = a.merge(b)
        assert merged.blocked == 5
        assert merged.truncated
        assert merged.elapsed == 1.0


class TestJsonRoundTrip:
    def test_round_trip_counts_and_outcomes(self):
        result = serial_result(sb(), "tso", collect_executions=True)
        back = from_json(to_json(result))
        assert back.executions == result.executions
        assert back.blocked == result.blocked
        assert back.outcomes == result.outcomes
        assert back.final_states == result.final_states
        assert back.model == result.model

    def test_round_trip_errors_and_meta(self):
        result = verify(racy(), "sc", stop_on_error=False)
        result.meta["jobs"] = 4
        back = from_json(to_json(result))
        assert len(back.errors) == len(result.errors)
        assert back.errors[0].message == result.errors[0].message
        assert back.meta["jobs"] == 4


class TestPickling:
    def test_result_with_witness_graph_pickles(self):
        result = verify(racy(), "sc", stop_on_error=True)
        assert result.errors and result.errors[0].graph is not None
        clone = pickle.loads(pickle.dumps(result))
        assert clone.errors[0].graph.pretty() == result.errors[0].graph.pretty()
        assert clone.executions == result.executions

    def test_execution_record_pickles(self):
        whole = serial_result(sb(), "sc", collect_keys=True)
        rec = whole.execution_records[0]
        clone = pickle.loads(pickle.dumps(rec))
        assert isinstance(clone, ExecutionRecord)
        assert clone.key == rec.key


class TestEffectiveJobs:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert effective_jobs(ExplorationOptions()) == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert effective_jobs(ExplorationOptions()) == 3

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert effective_jobs(ExplorationOptions(jobs=2)) == 2

    def test_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert effective_jobs(ExplorationOptions(jobs=0)) == (
            os.cpu_count() or 1
        )

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        with pytest.raises(ValueError):
            effective_jobs(ExplorationOptions())

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            ExplorationOptions(jobs=-1)


class TestSplitFrontier:
    def test_subtrees_partition_the_search(self):
        program = sb_n(3)
        options = ExplorationOptions(stop_on_error=False, collect_keys=True)
        subtrees, partial, aborted = split_frontier(
            program, "tso", options, target=4, observer=NULL_OBSERVER
        )
        assert not aborted
        assert len(subtrees) >= 4
        merged = partial
        for root in subtrees:
            part = Explorer(program, "tso", options, root=root).run()
            merged = merged.merge(part)
        serial = serial_result(program, "tso", collect_keys=True)
        assert merged.executions == serial.executions
        assert merged.blocked == serial.blocked

    def test_tiny_program_completes_during_split(self):
        p = ProgramBuilder("one-store")
        p.thread().store("x", 1)
        program = p.build()
        options = ExplorationOptions(stop_on_error=False, collect_keys=True)
        subtrees, partial, aborted = split_frontier(
            program, "sc", options, target=8, observer=NULL_OBSERVER
        )
        assert not aborted
        assert subtrees == []
        assert partial.executions == 1


class TestParallelEquivalence:
    def test_dispatch_guard(self, monkeypatch):
        """verify() shards deduplicated runs — bounded ones included
        (a GlobalBudget holds the limit globally) — but a run that
        explicitly disabled deduplication stays serial."""
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        bounded = verify(sb(), "tso", jobs=2, max_executions=2)
        assert bounded.meta.get("jobs") == 2  # sharded, budget enforced
        assert bounded.executions <= 2 and bounded.truncated
        no_dedup = verify(
            sb(), "tso", jobs=2, stop_on_error=False, deduplicate=False
        )
        assert "jobs" not in no_dedup.meta  # stayed serial
        sharded = verify(sb(), "tso", jobs=2, stop_on_error=False)
        assert sharded.meta.get("jobs") == 2

    def test_jobs_equivalent_on_workload(self):
        program = sb_n(3)
        for model in ("sc", "tso", "imm"):
            serial = serial_result(program, model)
            parallel = verify_parallel(
                program,
                model,
                ExplorationOptions(stop_on_error=False),
                jobs=2,
            )
            assert parallel.executions == serial.executions, model
            assert parallel.blocked == serial.blocked, model
            assert parallel.outcomes == serial.outcomes, model

    def test_stop_on_error_still_reports(self):
        result = verify_parallel(
            racy(),
            "sc",
            ExplorationOptions(stop_on_error=True),
            jobs=2,
        )
        assert result.errors
        assert not result.ok

    def test_jobs_one_degrades_to_serial(self):
        result = verify_parallel(
            sb(), "sc", ExplorationOptions(stop_on_error=False), jobs=1
        )
        serial = serial_result(sb(), "sc")
        assert result.executions == serial.executions
        assert "jobs" not in result.meta


class TestWorkerMetricsMerge:
    """Worker-side registries must not be lost: their snapshots merge
    into the coordinator's registry, reproducing the serial counters."""

    def run_observed(self, program, model, jobs):
        from repro.obs import Observer

        obs = Observer()
        if jobs is None:
            result = Explorer(
                program,
                model,
                ExplorationOptions(stop_on_error=False),
                observer=obs,
            ).run()
        else:
            result = verify_parallel(
                program,
                model,
                ExplorationOptions(stop_on_error=False),
                observer=obs,
                jobs=jobs,
            )
        return result, obs.metrics.snapshot()

    def test_merged_counters_match_serial(self):
        program = sb_n(3)
        serial_res, serial_snap = self.run_observed(program, "tso", None)
        parallel_res, parallel_snap = self.run_observed(program, "tso", 2)
        assert parallel_res.meta.get("tasks", 0) > 0  # workers really ran
        assert parallel_res.executions == serial_res.executions
        # subtree tasks partition the serial DFS, so the merged hook
        # counters (memo hits, fail counts) reproduce the serial run's
        assert parallel_snap["counters"] == serial_snap["counters"]
        # histograms carry the same population (bucket-exact)
        for name, hist in serial_snap["histograms"].items():
            merged = parallel_snap["histograms"][name]
            assert merged["count"] == hist["count"], name
            assert merged["buckets"] == hist["buckets"], name
            assert merged["min"] == hist["min"], name
            assert merged["max"] == hist["max"], name

    def test_worker_skew_meta(self):
        result, _ = self.run_observed(sb_n(3), "tso", 2)
        skew = result.meta.get("worker_skew")
        assert skew is not None
        assert skew["tasks"] == result.meta["tasks"]
        assert skew["min_executions"] <= skew["max_executions"]
        assert skew["imbalance"] >= 1.0

    def test_unobserved_parallel_collects_nothing(self):
        result = verify_parallel(
            sb_n(3),
            "tso",
            ExplorationOptions(stop_on_error=False),
            jobs=2,
        )
        assert result.executions == 8
        assert "worker_skew" not in result.meta

    def test_worker_metrics_trace_records(self, tmp_path):
        from repro.obs import Observer, summarize_file

        trace_path = str(tmp_path / "run.jsonl")
        obs = Observer.to_file(trace_path)
        verify_parallel(
            sb_n(3),
            "tso",
            ExplorationOptions(stop_on_error=False),
            observer=obs,
            jobs=2,
        )
        obs.close()
        summary = summarize_file(trace_path)
        assert summary.workers  # one record per completed subtree task
        skew = summary.worker_skew
        assert skew is not None and skew["tasks"] == len(summary.workers)
        assert sum(
            w["executions"] + w["blocked"] for w in summary.workers.values()
        ) >= summary.executions


@pytest.mark.slow
class TestLitmusCorpusEquivalence:
    """The acceptance bar: jobs=N matches serial on every litmus test
    under every model."""

    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_corpus_matches_serial(self, model):
        options = ExplorationOptions(stop_on_error=False, collect_executions=True)
        for test in all_litmus_tests():
            serial = Explorer(test.program, model, options).run()
            parallel = verify_parallel(test.program, model, options, jobs=2)
            label = f"{test.name}/{model}"
            assert parallel.executions == serial.executions, label
            assert parallel.blocked == serial.blocked, label
            assert parallel.outcomes == serial.outcomes, label
            assert parallel.final_states == serial.final_states, label
