"""Known, documented limitations — pinned so any change in behaviour
is noticed.

The single known completeness gap: under *porf-cyclic* models, an
execution that requires a CAS to flip between success and failure
while its thread's po-suffix is causally needed by the revisiting
write cannot be produced by single-read backward revisits (the kept
set is po ∪ rf closed, and the suffix would have to change shape).
Constructing such executions needs multi-read revisits, which the
original tools handle with additional machinery out of scope here.

Measured incidence (differential sweep, EXPERIMENTS.md): zero for all
porf-acyclic models and for IMM/ARMv8 everywhere; a handful of
executions in ~2/280 random RMW-heavy programs under POWER and
coherence-only (whose axioms are weak enough to admit those chains).
The gap is *completeness-only*: no spurious executions are ever
produced.
"""

import pytest

from repro import verify
from repro.baselines import brute_force
from repro.graphs import canonical_key
from repro.util.randprog import RandomProgramGenerator


def _gap_program():
    """The first sweep witness (random program rand-61, seed 7)."""
    return list(RandomProgramGenerator(seed=7).programs(62))[61]


def _power_gap_program():
    """The POWER-affecting witness (random program rand-13, seed 99)."""
    return list(RandomProgramGenerator(seed=99).programs(14))[13]


@pytest.mark.xfail(
    reason="known gap: CAS status flips inside a kept causal chain need "
    "multi-read revisits (see module docstring)",
    strict=True,
)
def test_cas_flip_chain_completeness_under_coherence():
    program = _gap_program()
    bf = brute_force(program, "coherence")
    result = verify(
        program, "coherence", stop_on_error=False, collect_executions=True
    )
    keys = {canonical_key(g) for g in result.execution_graphs}
    assert keys == bf.keys


def test_gap_is_completeness_only():
    """Even on the gap witness, everything found is consistent and a
    subset of the ground truth (soundness intact)."""
    program = _gap_program()
    bf = brute_force(program, "coherence")
    result = verify(
        program, "coherence", stop_on_error=False, collect_executions=True
    )
    keys = {canonical_key(g) for g in result.execution_graphs}
    assert keys <= bf.keys
    assert len(keys) >= len(bf.keys) - 4


def test_gap_absent_under_annotated_models():
    """IMM/ARMv8 order the chains through their dependency/annotation
    axioms: no gap there, on either witness."""
    for program in (_gap_program(), _power_gap_program()):
        for model in ("imm", "armv8"):
            bf = brute_force(program, model)
            result = verify(
                program, model, stop_on_error=False, collect_executions=True
            )
            keys = {canonical_key(g) for g in result.execution_graphs}
            assert keys == bf.keys, (program.name, model)


@pytest.mark.xfail(
    reason="known gap: the CAS-flip chains can also be power-consistent",
    strict=True,
)
def test_cas_flip_chain_completeness_under_power():
    program = _power_gap_program()
    bf = brute_force(program, "power")
    result = verify(
        program, "power", stop_on_error=False, collect_executions=True
    )
    keys = {canonical_key(g) for g in result.execution_graphs}
    assert keys == bf.keys


def test_power_gap_is_completeness_only():
    program = _power_gap_program()
    bf = brute_force(program, "power")
    result = verify(
        program, "power", stop_on_error=False, collect_executions=True
    )
    keys = {canonical_key(g) for g in result.execution_graphs}
    assert keys <= bf.keys
