"""Tests for the run store, manifest diff/check, and exporters.

Covers manifest construction (schema golden), the store's
save/list/load/prefix semantics, ``diff_manifests``/``check_manifest``
gating rules, the Prometheus text exporter (byte-for-byte golden), and
the CLI verbs end to end: ``verify --save-run/--manifest/--prom-out``
feeding ``runs list|show|diff|check`` across serial, parallel and
``.cat``-model runs.
"""

import copy
import json
import os

import pytest

from repro import ProgramBuilder, verify
from repro.cli import main
from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    Observer,
    RunStore,
    build_manifest,
    check_manifest,
    diff_manifests,
    format_check,
    format_diff,
    to_prometheus,
)
from repro.obs.runstore import manifest_run_id

GOLDEN = os.path.join(os.path.dirname(__file__), "golden")


def sb_program():
    p = ProgramBuilder("SB")
    t0 = p.thread()
    t0.store("x", 1)
    a = t0.load("y")
    t1 = p.thread()
    t1.store("y", 1)
    b = t1.load("x")
    p.observe(a, b)
    return p.build()


def make_manifest(created: float = 1000.0) -> dict:
    obs = Observer()
    result = verify(sb_program(), "tso", observer=obs)
    return build_manifest(
        result,
        obs.metrics_snapshot(),
        command="verify SB --model tso",
        jobs=1,
        created=created,
    )


@pytest.fixture
def store(tmp_path) -> RunStore:
    return RunStore(str(tmp_path / "runs"))


class TestBuildManifest:
    def test_schema_matches_golden(self):
        with open(os.path.join(GOLDEN, "manifest_schema.json")) as fh:
            golden = json.load(fh)
        manifest = make_manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA_VERSION
        assert sorted(manifest) == golden["top"]
        assert sorted(manifest["result"]) == golden["result"]
        assert sorted(manifest["metrics"]) == golden["metrics"]

    def test_json_round_trip(self):
        manifest = make_manifest()
        assert json.loads(json.dumps(manifest)) == manifest

    def test_counts_and_outcomes(self):
        manifest = make_manifest()
        result = manifest["result"]
        assert result["executions"] == 4
        assert result["errors"] == 0
        assert len(result["outcomes"]) == 4
        assert all("=" in key for key in result["outcomes"])

    def test_profiler_metrics_present(self):
        counters = make_manifest()["metrics"]["counters"]
        assert any(k.startswith("relation:") for k in counters)


class TestRunStore:
    def test_save_and_load(self, store):
        manifest = make_manifest()
        path = store.save(manifest)
        assert os.path.isfile(path)
        loaded = store.load(os.path.basename(path)[: -len(".json")])
        assert loaded["result"] == manifest["result"]
        assert loaded["run_id"] == manifest_run_id(manifest)

    def test_env_var_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "envruns"))
        assert RunStore().root == str(tmp_path / "envruns")

    def test_list_and_latest(self, store):
        assert store.list_runs() == [] and store.latest() is None
        first = store.save(make_manifest(created=1000.0))
        second = store.save(make_manifest(created=2000.0))
        assert first != second
        ids = store.run_ids()
        assert len(ids) == 2 and ids == sorted(ids)
        assert store.latest()["created"] == 2000.0

    def test_prefix_lookup(self, store):
        store.save(make_manifest(created=1000.0))
        run_id = store.run_ids()[0]
        assert store.load(run_id[:12])["run_id"] == run_id
        with pytest.raises(FileNotFoundError):
            store.load("zzzz")

    def test_ambiguous_prefix_rejected(self, store):
        store.save(make_manifest(created=1000.0))
        store.save(make_manifest(created=1001.0))
        prefix = os.path.commonprefix(store.run_ids())
        assert prefix  # same second-resolution timestamp family
        with pytest.raises(ValueError, match="ambiguous"):
            store.load(prefix[:4])

    def test_load_by_path(self, store, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(make_manifest()))
        assert store.load(str(path))["program"] == "SB"

    def test_rejects_non_manifest(self, store, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="not a run manifest"):
            store.load(str(path))

    def test_rejects_future_schema(self, store, tmp_path):
        manifest = make_manifest()
        manifest["schema"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported manifest schema"):
            store.load(str(path))


class TestDiffAndCheck:
    def test_identical_runs_diff_clean(self):
        manifest = make_manifest()
        diff = diff_manifests(manifest, copy.deepcopy(manifest))
        assert not diff["counts"] and not diff["stats"] and not diff["counters"]
        assert "results identical" in format_diff(diff)

    def test_diff_detects_changes(self):
        a = make_manifest()
        b = copy.deepcopy(a)
        b["result"]["executions"] = 5
        b["result"]["outcomes"]["r9@9=9"] = 1
        b["metrics"]["counters"]["relation:co:memo_hit"] = 999
        diff = diff_manifests(a, b)
        assert diff["counts"]["executions"] == {"old": 4, "new": 5}
        assert "r9@9=9" in diff["outcomes"]["added"]
        assert "relation:co:memo_hit" in diff["counters"]
        text = format_diff(diff)
        assert "executions: 4 -> 5" in text and "+ {r9@9=9}" in text

    def test_check_passes_identical(self):
        manifest = make_manifest()
        violations, warnings = check_manifest(
            copy.deepcopy(manifest), manifest
        )
        assert violations == [] and warnings == []
        assert "check passed" in format_check(violations, warnings)

    def test_check_flags_count_mismatch(self):
        baseline = make_manifest()
        current = copy.deepcopy(baseline)
        current["result"]["executions"] = 3
        current["result"]["outcomes"].pop(
            next(iter(current["result"]["outcomes"]))
        )
        violations, _ = check_manifest(current, baseline)
        assert any("executions" in v for v in violations)
        assert any("outcome lost" in v for v in violations)
        assert "FAILED" in format_check(violations, [])

    def test_check_warns_on_timing_regression(self):
        baseline = make_manifest()
        baseline["result"]["elapsed"] = 1.0
        current = copy.deepcopy(baseline)
        current["result"]["elapsed"] = 2.0
        violations, warnings = check_manifest(current, baseline)
        assert violations == []
        assert any("elapsed regression" in w for w in warnings)
        # below the noise floor nothing fires
        baseline["result"]["elapsed"] = 0.001
        current["result"]["elapsed"] = 0.04
        _, warnings = check_manifest(current, baseline)
        assert warnings == []

    def test_check_flags_baseline_zero_instead_of_passing(self):
        # a ~zero baseline used to make the ratio None and the
        # slowdown gate silently pass; now it warns explicitly
        baseline = make_manifest()
        baseline["result"]["elapsed"] = 0.0
        current = copy.deepcopy(baseline)
        current["result"]["elapsed"] = 3.0
        violations, warnings = check_manifest(current, baseline)
        assert violations == []
        assert any("elapsed baseline-zero" in w for w in warnings)
        assert not any("elapsed regression" in w for w in warnings)

    def test_check_flags_phase_baseline_zero(self):
        baseline = make_manifest()
        baseline["phases"] = {"revisit": {"self": 0.0, "total": 0.0}}
        current = copy.deepcopy(baseline)
        current["phases"] = {"revisit": {"self": 2.0, "total": 2.0}}
        _, warnings = check_manifest(current, baseline)
        assert any("'revisit' baseline-zero" in w for w in warnings)

    def test_baseline_zero_respects_noise_floor(self):
        # both sides under the floor: still silent (scheduling noise)
        baseline = make_manifest()
        baseline["result"]["elapsed"] = 0.0
        current = copy.deepcopy(baseline)
        current["result"]["elapsed"] = 0.04
        _, warnings = check_manifest(current, baseline)
        assert warnings == []

    def test_diff_marks_zero_baseline_ratio(self):
        a = make_manifest()
        a["result"]["elapsed"] = 0.0
        b = copy.deepcopy(a)
        b["result"]["elapsed"] = 1.0
        diff = diff_manifests(a, b)
        assert diff["timing"]["elapsed"]["ratio"] is None
        assert "baseline ~0s: ratio n/a" in format_diff(diff)

    def test_check_warns_on_noisy_fields(self):
        baseline = make_manifest()
        current = copy.deepcopy(baseline)
        current["result"]["duplicates"] = 7
        current["result"]["stats"]["events_added"] += 1
        violations, warnings = check_manifest(current, baseline)
        assert violations == []
        assert any("duplicates" in w for w in warnings)
        assert any("stats.events_added" in w for w in warnings)

    def test_check_rejects_cross_task_comparison(self):
        baseline = make_manifest()
        current = copy.deepcopy(baseline)
        current["model"] = "sc"
        violations, _ = check_manifest(current, baseline)
        assert any("model mismatch" in v for v in violations)


class TestPrometheusExport:
    def test_golden_byte_for_byte(self):
        with open(os.path.join(GOLDEN, "manifest.json")) as fh:
            manifest = json.load(fh)
        with open(os.path.join(GOLDEN, "prometheus.txt")) as fh:
            golden = fh.read()
        assert to_prometheus(manifest) == golden

    def test_label_escaping(self):
        manifest = {
            "program": 'a"b\\c',
            "model": "m\nn",
            "result": {},
            "metrics": {},
            "phases": {},
        }
        text = to_prometheus(manifest)
        assert 'program="a\\"b\\\\c"' in text
        assert 'model="m\\nn"' in text

    def test_real_manifest_exports(self):
        text = to_prometheus(make_manifest())
        assert "repro_executions_total" in text
        assert "repro_phase_calls_total" in text
        assert text.endswith("\n")


CAT_SOURCE = """(* repro: name=cat-porf *)
let rec hb = po | rf | (hb ; hb)
acyclic hb as porf
"""


class TestCliEndToEnd:
    def run_verify(self, runs_dir, *extra):
        return main(
            [
                "verify",
                "SB",
                "--model",
                "tso",
                "--save-run",
                "--runs-dir",
                str(runs_dir),
                *extra,
            ]
        )

    def test_save_list_show_diff_check(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        manifest_path = tmp_path / "m.json"
        prom_path = tmp_path / "m.prom"
        assert (
            self.run_verify(
                runs_dir,
                "--manifest",
                str(manifest_path),
                "--prom-out",
                str(prom_path),
            )
            == 0
        )
        # a second, parallel run of the same task
        assert self.run_verify(runs_dir, "--jobs", "2") == 0
        assert manifest_path.is_file() and prom_path.is_file()
        assert "repro_executions_total" in prom_path.read_text()
        capsys.readouterr()

        assert main(["runs", "list", "--dir", str(runs_dir)]) == 0
        listing = capsys.readouterr().out
        assert listing.count("SB/tso") == 2

        assert main(["runs", "show", "--dir", str(runs_dir)]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["result"]["executions"] == 4

        ids = RunStore(str(runs_dir)).run_ids()
        assert (
            main(["runs", "diff", "--dir", str(runs_dir), ids[0], ids[1]])
            == 0
        )
        assert "results identical" in capsys.readouterr().out

        # serial manifest as baseline, latest (parallel) run as current:
        # merged worker metrics must reproduce the serial counts
        assert (
            main(
                [
                    "runs",
                    "check",
                    "--dir",
                    str(runs_dir),
                    "--baseline",
                    str(manifest_path),
                ]
            )
            == 0
        )
        assert "check passed" in capsys.readouterr().out

    def test_check_fails_on_regression_and_warn_only(self, tmp_path, capsys):
        runs_dir = tmp_path / "runs"
        baseline_path = tmp_path / "baseline.json"
        assert self.run_verify(runs_dir, "--manifest", str(baseline_path)) == 0
        baseline = json.loads(baseline_path.read_text())
        baseline["result"]["executions"] = 17
        baseline_path.write_text(json.dumps(baseline))
        capsys.readouterr()
        args = [
            "runs",
            "check",
            "--dir",
            str(runs_dir),
            "--baseline",
            str(baseline_path),
        ]
        assert main(args) == 1
        assert "VIOLATION" in capsys.readouterr().out
        assert main([*args, "--warn-only"]) == 0
        assert "warn-only" in capsys.readouterr().out

    def test_cat_model_manifest_has_memo_attribution(self, tmp_path, capsys):
        cat_path = tmp_path / "porf.cat"
        cat_path.write_text(CAT_SOURCE)
        runs_dir = tmp_path / "runs"
        manifest_path = tmp_path / "cat.json"
        assert (
            main(
                [
                    "verify",
                    "SB",
                    "--model-file",
                    str(cat_path),
                    "--save-run",
                    "--runs-dir",
                    str(runs_dir),
                    "--manifest",
                    str(manifest_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        manifest = json.loads(manifest_path.read_text())
        counters = manifest["metrics"]["counters"]
        assert any(k.startswith("cat:memo_hit:") for k in counters)
        # the cat manifest gates against itself end to end
        store = RunStore(str(runs_dir))
        violations, _ = check_manifest(store.latest(), manifest)
        assert violations == []
