"""Tests for the deep-profiling layer (repro.obs.profile).

Covers the process-global activation hook (armed exactly while an
observed run is live, nested activations compose, disabled runs never
touch it), the hotspot metrics the hooks record (per-relation memo
hits and compute phases, cat memo hit/miss attribution, fixpoint
rounds, fanout histograms), snapshot merging, the ``--stats`` profile
rendering, and the disabled-overhead claim.
"""

import time

from repro import ProgramBuilder, verify
from repro.cat import CatModel
from repro.obs import (
    NULL_OBSERVER,
    Histogram,
    MetricsRegistry,
    Observer,
    format_profile,
    memo_rates,
)
from repro.obs import profile as profile_mod
from repro.obs.profile import activation, active


def sb_program(n: int = 2):
    p = ProgramBuilder(f"sb({n})" if n != 2 else "SB")
    locations = [f"x{i}" for i in range(n)]
    for i in range(n):
        t = p.thread()
        t.store(locations[i], 1)
        t.load(locations[(i + 1) % n])
    return p.build()


CAT_MPORF = """(* repro: name=test-porf *)
let rec hb = po | rf | (hb ; hb)
acyclic hb as porf
"""


class TestActivation:
    def test_off_by_default(self):
        assert active() is None

    def test_activation_installs_and_restores(self):
        obs = Observer()
        with activation(obs):
            assert active() is obs.metrics
        assert active() is None

    def test_disabled_observer_activates_nothing(self):
        with activation(NULL_OBSERVER):
            assert active() is None

    def test_nesting_restores_outer_registry(self):
        outer, inner = Observer(), Observer()
        with activation(outer):
            with activation(inner):
                assert active() is inner.metrics
            assert active() is outer.metrics
        assert active() is None

    def test_unobserved_run_leaves_hook_untouched(self):
        result = verify(sb_program(), "tso")
        assert result.executions == 4
        assert active() is None

    def test_observed_run_detaches_on_exit(self):
        obs = Observer()
        verify(sb_program(), observer=obs)
        assert active() is None


class TestHotspotMetrics:
    def test_relation_memo_attribution(self):
        obs = Observer()
        verify(sb_program(), "tso", observer=obs)
        counters = obs.metrics.counters
        hits = {k for k in counters if k.endswith(":memo_hit")}
        assert any(k.startswith("relation:") for k in hits)
        # every relation that was memo-hit was also computed (timed)
        phases = obs.metrics.phase_stats()
        for key in hits:
            name = key[len("relation:"):-len(":memo_hit")]
            assert f"relation:{name}" in phases

    def test_relation_phases_nest_inside_checks(self):
        obs = Observer()
        verify(sb_program(), "tso", observer=obs)
        phases = obs.metrics.phase_stats()
        axiom = phases["check:axiom:tso"]
        # relation computation is charged to the relation phase, so the
        # axiom's self time excludes it (self <= total strictly when a
        # relation phase ran inside)
        assert axiom.self_time <= axiom.total

    def test_fanout_histograms(self):
        obs = Observer()
        verify(sb_program(), "tso", observer=obs)
        hists = obs.metrics.histograms
        assert hists["rf_fanout"].count > 0
        assert hists["co_fanout"].count > 0
        assert hists["graph_events"].count == 4  # one per execution
        assert hists["graph_events"].max == 6  # 3 events per thread

    def test_cat_memo_and_fixpoint_attribution(self):
        model = CatModel.from_source(CAT_MPORF)
        obs = Observer()
        verify(sb_program(), model, observer=obs)
        counters = obs.metrics.counters
        assert any(k.startswith("cat:memo_hit:") for k in counters)
        assert any(k.startswith("cat:memo_miss:") for k in counters)
        fixpoints = [
            h
            for name, h in obs.metrics.histograms.items()
            if name.startswith("cat:fixpoint_iters:")
        ]
        assert fixpoints and all(h.min >= 1 for h in fixpoints)

    def test_axiom_fail_counter(self):
        # message passing under a porf-acyclicity .cat model: litmus IRIW
        # style program where some graphs violate the axiom
        p = ProgramBuilder("lb")
        t0 = p.thread()
        t0.load("y")
        t0.store("x", 1)
        t1 = p.thread()
        t1.load("x")
        t1.store("y", 1)
        model = CatModel.from_source(CAT_MPORF)
        obs = Observer()
        verify(p.build(), model, observer=obs)
        # the porf-acyclic filter prunes candidate revisits; whether the
        # failure lands on the axiom or coherence counter is model
        # detail — the run must simply have recorded its checks
        assert obs.metrics.phase_stats()["check:axiom:test-porf"].calls > 0


class TestSnapshotMerge:
    def test_histogram_merge_dict(self):
        a, b = Histogram(), Histogram()
        for v in (1, 3, 200):
            a.observe(v)
        for v in (2, 64):
            b.observe(v)
        a.merge_dict(b.as_dict())
        assert a.count == 5
        assert a.total == 270
        assert a.min == 1 and a.max == 200
        assert sum(a.counts) == 5
        assert a.counts[-1] == 1  # only 200 overflows

    def test_merge_snapshot_counters_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 2)
        b.inc("n", 3)
        b.inc("only_b")
        a.gauge("g", 5)
        b.gauge("g", 3)
        a.merge_snapshot(b.snapshot())
        assert a.counters == {"n": 5, "only_b": 1}
        assert a.gauges["g"] == 5  # max wins

    def test_merge_snapshot_skips_phases_by_default(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        with b.phase("work"):
            pass
        a.merge_snapshot(b.snapshot())
        assert "work" not in a.phase_stats()
        a.merge_snapshot(b.snapshot(), include_phases=True)
        assert a.phase_stats()["work"].calls == 1


class TestFormatProfile:
    def test_sections_render(self):
        reg = MetricsRegistry()
        reg.inc("cat:memo_hit:hb", 3)
        reg.inc("cat:memo_miss:hb", 1)
        reg.observe("rf_fanout", 2)
        text = format_profile(reg.snapshot())
        assert "profile:" in text
        assert "cat memo hit rates:" in text
        assert "hb: 75.0% (3 hit / 1 miss)" in text
        assert "rf_fanout: n=1" in text

    def test_empty_snapshot(self):
        assert "no profile data" in format_profile(MetricsRegistry().snapshot())

    def test_memo_rates(self):
        rates = memo_rates(
            {"cat:memo_hit:a": 9, "cat:memo_miss:a": 1, "other": 5}
        )
        assert rates == {"a": {"hits": 9, "misses": 1, "hit_rate": 0.9}}


class TestDisabledOverhead:
    def test_disabled_run_does_zero_profile_work(self, monkeypatch):
        # plant a canary where a registry would go: it has none of a
        # registry's methods, so any hook that fires during the run
        # would AttributeError.  An unobserved run masks the hook with
        # None for its whole duration (and restores the canary after).
        canary = object()
        monkeypatch.setattr(profile_mod._STATE, "registry", canary)
        result = verify(sb_program(), "tso")
        assert result.executions == 4
        assert profile_mod._STATE.registry is canary

    def test_disabled_overhead_bounded(self):
        # the <5% claim can't be A/B-tested against a build without the
        # hooks, so this guards the proxy that matters: repeated
        # disabled runs stay within a generous factor of each other
        # (the hooks are a single attribute load + None check).  The
        # bound is deliberately loose — it catches an accidentally
        # always-armed registry (which costs >2x), not scheduler noise.
        program = sb_program(3)
        verify(program, "tso")  # warm imports and caches

        def best_of(runs: int = 3) -> float:
            best = float("inf")
            for _ in range(runs):
                t0 = time.perf_counter()
                verify(program, "tso")
                best = min(best, time.perf_counter() - t0)
            return best

        baseline = best_of()
        again = best_of()
        assert again <= baseline * 3 + 0.05
