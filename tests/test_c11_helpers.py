"""Unit tests for the C11 synchronisation helpers (sw, hb, psc)."""

from repro.events import (
    FenceKind,
    FenceLabel,
    MemOrder,
    ReadLabel,
    WriteLabel,
)
from repro.graphs import ExecutionGraph
from repro.models.c11 import (
    fence_c11_order,
    happens_before,
    release_sequence,
    sc_events,
    strong_happens_before,
    synchronizes_with,
)


def rel_acq_mp():
    """W d (rlx); W f (rel)  ||  R f (acq); R d (rlx)."""
    g = ExecutionGraph(["d", "f"])
    g.add_write(0, WriteLabel(loc="d", value=1))
    wf = g.add_write(0, WriteLabel(loc="f", value=1, order=MemOrder.REL))
    rf_ = g.add_read(1, ReadLabel(loc="f", order=MemOrder.ACQ), wf)
    g.add_read(1, ReadLabel(loc="d"), g.init_write("d"))
    return g, wf, rf_


class TestSynchronizesWith:
    def test_rel_acq_pair_syncs(self):
        g, wf, rf_ = rel_acq_mp()
        assert (wf, rf_) in synchronizes_with(g)

    def test_rlx_pair_does_not(self):
        g = ExecutionGraph(["f"])
        wf = g.add_write(0, WriteLabel(loc="f", value=1))
        g.add_read(1, ReadLabel(loc="f"), wf)
        assert not synchronizes_with(g)

    def test_release_fence_is_the_source(self):
        g = ExecutionGraph(["f"])
        fence = g.add_fence(0, FenceLabel(kind=FenceKind.C11, order=MemOrder.REL))
        wf = g.add_write(0, WriteLabel(loc="f", value=1))
        r = g.add_read(1, ReadLabel(loc="f", order=MemOrder.ACQ), wf)
        assert (fence, r) in synchronizes_with(g)

    def test_acquire_fence_is_the_target(self):
        g = ExecutionGraph(["f"])
        wf = g.add_write(0, WriteLabel(loc="f", value=1, order=MemOrder.REL))
        r = g.add_read(1, ReadLabel(loc="f"), wf)
        fence = g.add_fence(1, FenceLabel(kind=FenceKind.C11, order=MemOrder.ACQ))
        assert (wf, fence) in synchronizes_with(g)

    def test_release_sequence_through_rmws(self):
        g = ExecutionGraph(["c"])
        w = g.add_write(0, WriteLabel(loc="c", value=1, order=MemOrder.REL))
        r1 = g.add_read(1, ReadLabel(loc="c", exclusive=True), w)
        u1 = g.add_write(1, WriteLabel(loc="c", value=2, exclusive=True))
        assert release_sequence(g, w) == {w, u1}
        # an acquire read of the RMW's write syncs with the original release
        r2 = g.add_read(2, ReadLabel(loc="c", order=MemOrder.ACQ), u1)
        assert (w, r2) in synchronizes_with(g)


class TestHappensBefore:
    def test_hb_extends_po_with_sw(self):
        g, wf, rf_ = rel_acq_mp()
        wd = g.thread_events(0)[0]
        rd = g.thread_events(1)[1]
        assert (wd, rd) in happens_before(g)

    def test_strong_hb_syncs_every_rf(self):
        g = ExecutionGraph(["f"])
        wf = g.add_write(0, WriteLabel(loc="f", value=1))  # rlx!
        r = g.add_read(1, ReadLabel(loc="f"), wf)
        assert (wf, r) in strong_happens_before(g)
        assert (wf, r) not in happens_before(g)


class TestScEvents:
    def test_hardware_full_fences_count_as_sc(self):
        g = ExecutionGraph(["x"])
        f = g.add_fence(0, FenceLabel(kind=FenceKind.SYNC))
        assert sc_events(g) == [f]

    def test_lwsync_is_not_sc(self):
        g = ExecutionGraph(["x"])
        g.add_fence(0, FenceLabel(kind=FenceKind.LWSYNC))
        assert sc_events(g) == []

    def test_sc_accesses_optional(self):
        g = ExecutionGraph(["x"])
        w = g.add_write(0, WriteLabel(loc="x", value=1, order=MemOrder.SC))
        assert sc_events(g) == [w]
        assert sc_events(g, accesses=False) == []


class TestFenceCorrespondence:
    def test_mapping(self):
        cases = {
            FenceKind.SYNC: MemOrder.SC,
            FenceKind.MFENCE: MemOrder.SC,
            FenceKind.LWSYNC: MemOrder.ACQ_REL,
            FenceKind.DMB_LD: MemOrder.ACQ,
            FenceKind.DMB_ST: MemOrder.REL,
            FenceKind.ISYNC: MemOrder.ACQ,
        }
        for kind, expected in cases.items():
            assert fence_c11_order(FenceLabel(kind=kind)) is expected

    def test_c11_fence_keeps_its_order(self):
        lab = FenceLabel(kind=FenceKind.C11, order=MemOrder.REL)
        assert fence_c11_order(lab) is MemOrder.REL
