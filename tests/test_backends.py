"""Tests for the unified backend registry (`repro.backends`)."""

import pytest

from repro.backends import (
    Backend,
    all_backends,
    backend_names,
    get_backend,
    register_backend,
)
from repro.core import ExplorationOptions, Explorer, VerificationResult
from repro.lang import ProgramBuilder


def sb():
    p = ProgramBuilder("SB")
    t1 = p.thread(); t1.store("x", 1); a = t1.load("y")
    t2 = p.thread(); t2.store("y", 1); b = t2.load("x")
    p.observe(a, b)
    return p.build()


def racy():
    p = ProgramBuilder("racy-assert")
    t1 = p.thread(); t1.store("x", 1)
    t2 = p.thread(); r = t2.load("x"); t2.assert_(r.eq(0), "saw the store")
    return p.build()


class TestRegistry:
    def test_known_names(self):
        assert {
            "hmc",
            "hmc-parallel",
            "interleaving",
            "dpor",
            "storebuffer",
            "statehash",
            "exhaustive",
        } <= set(backend_names())

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="unknown backend.*known:.*hmc"):
            get_backend("nidhugg")

    def test_protocol_conformance(self):
        for backend in all_backends():
            assert isinstance(backend, Backend)
            assert backend.name and backend.description

    def test_model_allowlist(self):
        with pytest.raises(ValueError, match="only supports"):
            get_backend("dpor").run(sb(), "tso")
        with pytest.raises(ValueError, match="only supports"):
            get_backend("storebuffer").run(sb(), "sc")

    def test_register_overwrites(self):
        original = get_backend("hmc")
        try:
            register_backend(original)  # same instance, same name: no-op
            assert get_backend("hmc") is original
        finally:
            register_backend(original)


class TestUniformResults:
    def test_every_backend_returns_verification_result(self):
        program = sb()
        for name in backend_names():
            backend = get_backend(name)
            model = "sc" if backend.models is None or "sc" in backend.models else backend.models[0]
            result = backend.run(program, model)
            assert isinstance(result, VerificationResult), name
            assert result.program == program.name, name
            assert result.ok, name

    def test_hmc_backend_matches_explorer(self):
        options = ExplorationOptions(stop_on_error=False)
        direct = Explorer(sb(), "tso", options).run()
        via = get_backend("hmc").run(sb(), "tso", options)
        assert via.executions == direct.executions
        assert via.blocked == direct.blocked
        assert via.outcomes == direct.outcomes

    def test_baseline_adapter_parity(self):
        from repro.baselines.interleaving import explore_interleavings

        raw = explore_interleavings(sb())
        via = get_backend("interleaving").run(sb(), "sc")
        assert via.executions == raw.executions
        assert via.blocked == raw.blocked
        assert via.meta["traces"] == raw.traces

    def test_baseline_error_traces_become_reports(self):
        result = get_backend("interleaving").run(racy(), "sc")
        assert not result.ok
        assert result.errors[0].witness == ""  # placeholder, no witness

    def test_parallel_backend_shards(self):
        options = ExplorationOptions(stop_on_error=False, jobs=2)
        result = get_backend("hmc-parallel").run(sb(), "tso", options)
        serial = get_backend("hmc").run(
            sb(), "tso", ExplorationOptions(stop_on_error=False)
        )
        assert result.meta.get("jobs") == 2
        assert result.executions == serial.executions


class TestDeprecatedWrappers:
    def test_explore_wrappers_warn(self):
        import repro.baselines as B

        for name in (
            "brute_force",
            "explore_dpor",
            "explore_interleavings",
            "explore_store_buffers",
            "explore_with_state_hashing",
        ):
            fn = getattr(B, name)
            with pytest.warns(DeprecationWarning, match="get_backend"):
                if name == "brute_force":
                    fn(sb(), "sc")
                elif name == "explore_store_buffers":
                    fn(sb(), "tso")
                else:
                    fn(sb())

    def test_wrappers_still_return_legacy_types(self):
        from repro.baselines import InterleavingResult, explore_interleavings

        with pytest.warns(DeprecationWarning):
            raw = explore_interleavings(sb())
        assert isinstance(raw, InterleavingResult)
