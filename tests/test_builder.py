"""Unit tests for the program builder and Program introspection."""

import pytest

from repro.events import FenceKind, MemOrder
from repro.lang import (
    Assert,
    Assume,
    Cas,
    Fai,
    Fence,
    If,
    Load,
    ProgramBuilder,
    Repeat,
    Store,
    Xchg,
    loc,
)


class TestBuilder:
    def test_threads_get_sequential_ids(self):
        p = ProgramBuilder("p")
        assert p.thread().tid == 0
        assert p.thread().tid == 1

    def test_registers_unique_across_threads(self):
        p = ProgramBuilder("p")
        a = p.thread().load("x")
        b = p.thread().load("x")
        assert a.name != b.name

    def test_statement_kinds(self):
        p = ProgramBuilder("p")
        t = p.thread()
        t.store("x", 1, MemOrder.REL)
        r = t.load("y", MemOrder.ACQ)
        t.cas("l", 0, 1)
        t.fai("c", 1)
        t.xchg("s", 5)
        t.fence(FenceKind.MFENCE)
        t.assign(r, r + 1)
        t.assume(r.eq(1))
        t.assert_(r.eq(1))
        kinds = [type(s) for s in p.build().threads[0]]
        assert kinds == [
            Store, Load, Cas, Fai, Xchg, Fence,
            type(p.build().threads[0][6]), Assume, Assert,
        ]

    def test_if_builds_both_branches(self):
        p = ProgramBuilder("p")
        t = p.thread()
        a = t.load("x")
        t.if_(a.eq(0), lambda b: b.store("y", 1), lambda b: b.store("z", 1))
        stmt = p.build().threads[0][1]
        assert isinstance(stmt, If)
        assert len(stmt.then) == 1 and len(stmt.orelse) == 1

    def test_repeat(self):
        p = ProgramBuilder("p")
        t = p.thread()
        t.repeat(4, lambda b: b.store("x", 1))
        stmt = p.build().threads[0][0]
        assert isinstance(stmt, Repeat) and stmt.count == 4

    def test_await_eq_is_load_plus_assume(self):
        p = ProgramBuilder("p")
        t = p.thread()
        t.await_eq("f", 1)
        stmts = p.build().threads[0]
        assert isinstance(stmts[0], Load) and isinstance(stmts[1], Assume)

    def test_observe_finds_owner_thread(self):
        p = ProgramBuilder("p")
        t0 = p.thread()
        a = t0.load("x")
        t1 = p.thread()
        b = t1.load("x")
        p.observe(b, a)
        prog = p.build()
        assert set(prog.observables) == {(0, a.name), (1, b.name)}

    def test_observe_unknown_register_raises(self):
        p = ProgramBuilder("p")
        p.thread().store("x", 1)
        from repro.lang import Reg

        with pytest.raises(ValueError):
            p.observe(Reg("ghost"))

    def test_observe_inside_if(self):
        p = ProgramBuilder("p")
        t = p.thread()
        a = t.fresh_reg()
        t.assign(a, 0)
        t.if_(a.eq(0), lambda b: b.load("x", into=a))
        p.observe(a)
        assert p.build().observables == ((0, a.name),)


class TestLoc:
    def test_plain(self):
        assert loc("x").base == "x" and loc("x").index is None

    def test_indexed(self):
        spec = loc(("arr", 3))
        assert spec.base == "arr" and spec.index is not None

    def test_passthrough(self):
        spec = loc("x")
        assert loc(spec) is spec


class TestProgram:
    def test_location_bases(self):
        p = ProgramBuilder("p")
        t = p.thread()
        a = t.load("x")
        t.if_(a.eq(0), lambda b: b.store("hidden", 1))
        t.repeat(2, lambda b: b.fai("c", 1))
        t.cas(("arr", a), 0, 1)
        prog = p.build()
        assert prog.location_bases() == ["arr", "c", "hidden", "x"]

    def test_max_events_estimate_upper_bounds(self):
        p = ProgramBuilder("p")
        t = p.thread()
        a = t.load("x")
        t.if_(a.eq(0), lambda b: b.store("y", 1))
        t.repeat(2, lambda b: b.fai("c", 1))
        prog = p.build()
        # 1 load + 1 branch store + 2 * (read+write) = 6
        assert prog.max_events_estimate() == 6

    def test_repr(self):
        p = ProgramBuilder("demo")
        p.thread()
        assert "demo" in repr(p.build())
