"""Differential validation: every shipped ``.cat`` model must agree
with its hand-coded twin on the full litmus corpus.

This is the correctness argument for the whole DSL: the ``.cat`` files
in ``src/repro/models/cat/`` re-state sc/tso/ra/coherence
declaratively, and these tests assert the two formulations are
*extensionally identical* — same observed verdicts, same execution
counts, same duplicate counts — test by test.  A mismatch in
``executions`` matters as much as one in ``observed``: the axioms run
on partial graphs during exploration, so any divergence there changes
what gets pruned.
"""

from pathlib import Path

import pytest

import repro.models
from repro.litmus import get_litmus, litmus_names, run_litmus
from repro.models import load_cat

CAT_DIR = Path(repro.models.__file__).parent / "cat"

#: shipped .cat file stem -> the hand-coded registry twin
TWINS = {"sc": "sc", "tso": "tso", "ra": "ra", "coherence": "coherence"}


def cat_path(stem: str) -> str:
    return str(CAT_DIR / f"{stem}.cat")


def test_all_shipped_files_have_twins():
    stems = sorted(p.stem for p in CAT_DIR.glob("*.cat"))
    assert stems == sorted(TWINS)


@pytest.mark.parametrize("stem", sorted(TWINS))
def test_cat_twin_matches_handcoded_on_corpus(stem):
    cat_model = load_cat(cat_path(stem))
    twin = TWINS[stem]
    assert cat_model.name == twin
    mismatches = []
    for name in litmus_names():
        test = get_litmus(name)
        got = run_litmus(test, cat_model)
        want = run_litmus(test, twin)
        if (got.observed, got.executions, got.duplicates) != (
            want.observed,
            want.executions,
            want.duplicates,
        ):
            mismatches.append(
                f"{name}: cat=({got.observed}, {got.executions}, "
                f"{got.duplicates}) hand=({want.observed}, "
                f"{want.executions}, {want.duplicates})"
            )
    assert not mismatches, f"{stem}.cat diverges:\n" + "\n".join(mismatches)


@pytest.mark.parametrize("stem", sorted(TWINS))
def test_cat_twin_exploration_hypotheses_match(stem):
    """The explorer-facing knobs must match too, or counts drift."""
    cat_model = load_cat(cat_path(stem))
    from repro.models import get_model

    twin = get_model(TWINS[stem])
    assert cat_model.porf_acyclic == twin.porf_acyclic


@pytest.mark.parametrize("stem", sorted(TWINS))
def test_cat_twin_parallel_matches_serial(stem):
    """An unregistered CatModel rides the process pool: the pickled
    task tuples carry the model object itself."""
    cat_model = load_cat(cat_path(stem))
    for name in ("SB", "MP", "IRIW"):
        test = get_litmus(name)
        serial = run_litmus(test, cat_model)
        parallel = run_litmus(test, cat_model, jobs=2)
        assert (serial.observed, serial.executions) == (
            parallel.observed,
            parallel.executions,
        ), f"{stem}.cat on {name}: serial and jobs=2 disagree"
