"""Unit tests for prefix closures, restriction sets and canonical hashing."""

from repro.events import Event, ReadLabel, WriteLabel
from repro.graphs import (
    ExecutionGraph,
    canonical_key,
    deleted_set,
    final_state,
    porf_prefix,
    replay_closure,
    revisit_kept_set,
    rf_key,
)


def chain_graph():
    """T0: W x 1  |  T1: R x (from W); W y 1  |  T2: R y (from W y)."""
    g = ExecutionGraph(["x", "y"])
    wx = g.add_write(0, WriteLabel(loc="x", value=1))
    rx = g.add_read(1, ReadLabel(loc="x"), wx)
    wy = g.add_write(1, WriteLabel(loc="y", value=1))
    ry = g.add_read(2, ReadLabel(loc="y"), wy)
    return g, wx, rx, wy, ry


class TestPorfPrefix:
    def test_follows_rf_and_po(self):
        g, wx, rx, wy, ry = chain_graph()
        prefix = porf_prefix(g, ry)
        assert prefix == {ry, wy, rx, wx}

    def test_prefix_of_root_is_self(self):
        g, wx, *_ = chain_graph()
        assert porf_prefix(g, wx) == {wx}

    def test_replay_closure_multiple_roots(self):
        g, wx, rx, wy, ry = chain_graph()
        assert replay_closure(g, [rx]) == {rx, wx}


class TestRevisitSets:
    def test_kept_set_contains_old_and_needed(self):
        g = ExecutionGraph(["x"])
        r = g.add_read(0, ReadLabel(loc="x"), g.init_write("x"))
        w1 = g.add_write(1, WriteLabel(loc="x", value=1))
        w2 = g.add_write(1, WriteLabel(loc="x", value=2))
        kept = revisit_kept_set(g, w2, r)
        # w1 is a po-predecessor of the revisiting write: it must stay
        assert {r, w1, w2} <= kept

    def test_deleted_set_excludes_prefix(self):
        g = ExecutionGraph(["x", "y"])
        r = g.add_read(0, ReadLabel(loc="x"), g.init_write("x"))
        wy = g.add_write(1, WriteLabel(loc="y", value=1))  # unrelated, newer
        wx = g.add_write(2, WriteLabel(loc="x", value=1))
        deleted = deleted_set(g, wx, r)
        assert deleted == {wy}


class TestCanonicalKey:
    def test_equal_behaviour_equal_key(self):
        g1, *_ = chain_graph()
        g2, *_ = chain_graph()
        assert canonical_key(g1) == canonical_key(g2)

    def test_rf_change_changes_key(self):
        g1, wx, rx, wy, ry = chain_graph()
        g2 = g1.copy()
        g2.set_rf(ry, g2.init_write("y"))
        assert canonical_key(g1) != canonical_key(g2)

    def test_co_change_changes_key(self):
        def two_writes(flip):
            g = ExecutionGraph(["x"])
            g.add_write(0, WriteLabel(loc="x", value=1))
            g.add_write(1, WriteLabel(loc="x", value=2), co_index=1 if flip else 2)
            return g

        assert canonical_key(two_writes(True)) != canonical_key(two_writes(False))

    def test_key_ignores_untouched_locations(self):
        g1, *_ = chain_graph()
        g2, *_ = chain_graph()
        g2.ensure_location("never_written")
        assert canonical_key(g1) == canonical_key(g2)

    def test_key_stable_across_init_creation_order(self):
        def build(order):
            g = ExecutionGraph(order)
            wx = g.add_write(0, WriteLabel(loc="x", value=1))
            g.add_read(1, ReadLabel(loc="y"), g.init_write("y"))
            return g

        assert canonical_key(build(["x", "y"])) == canonical_key(build(["y", "x"]))

    def test_rf_key_ignores_co(self):
        def two_writes(flip):
            g = ExecutionGraph(["x"])
            g.add_write(0, WriteLabel(loc="x", value=1))
            g.add_write(1, WriteLabel(loc="x", value=2), co_index=1 if flip else 2)
            return g

        assert rf_key(two_writes(True)) == rf_key(two_writes(False))


class TestFinalState:
    def test_reports_written_locations_only(self):
        g, *_ = chain_graph()
        g.ensure_location("z")
        assert final_state(g) == (("x", 1), ("y", 1))

    def test_tracks_coherence_last(self):
        g = ExecutionGraph(["x"])
        g.add_write(0, WriteLabel(loc="x", value=1))
        g.add_write(1, WriteLabel(loc="x", value=2), co_index=1)
        assert final_state(g) == (("x", 1),)
