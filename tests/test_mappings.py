"""Compilation-mapping tests: the IMM story, end to end.

The standard C11 -> hardware compilation schemes must not introduce
behaviours the *source* model forbids.  Checking both directions over
the litmus corpus reproduces the central result of the IMM line of
work:

* against **IMM** the mappings are sound on every corpus entry;
* against **RC11** the relaxed-access mapping is *unsound*, witnessed
  exactly by load buffering (LB) — the discrepancy IMM was invented
  to close.
"""

import pytest

from repro import verify
from repro.events import FenceKind, MemOrder
from repro.lang import Fence, Load, ProgramBuilder, Store
from repro.lang.mappings import compile_to, mapping_targets
from repro.litmus import all_litmus_tests, get_litmus

TARGETS = ("tso", "power", "armv8")


def outcomes(program, model):
    result = verify(program, model, stop_on_error=False)
    return set(result.outcomes), set(result.final_states)


class TestMappingShapes:
    def test_targets(self):
        assert mapping_targets() == ["armv8", "power", "tso"]

    def test_unknown_target(self):
        with pytest.raises(KeyError):
            compile_to(get_litmus("SB").program, "riscv")

    def test_x86_sc_store_gets_mfence(self):
        p = ProgramBuilder("s")
        p.thread().store("x", 1, MemOrder.SC)
        compiled = compile_to(p.build(), "tso")
        kinds = [type(s) for s in compiled.threads[0]]
        assert kinds == [Store, Fence]
        assert compiled.threads[0][0].order is MemOrder.RLX
        assert compiled.threads[0][1].kind is FenceKind.MFENCE

    def test_power_release_store_gets_lwsync(self):
        p = ProgramBuilder("s")
        p.thread().store("x", 1, MemOrder.REL)
        compiled = compile_to(p.build(), "power")
        first, second = compiled.threads[0]
        assert isinstance(first, Fence) and first.kind is FenceKind.LWSYNC
        assert second.order is MemOrder.RLX

    def test_power_acquire_load_gets_isync(self):
        p = ProgramBuilder("s")
        p.thread().load("x", MemOrder.ACQ)
        compiled = compile_to(p.build(), "power")
        first, second = compiled.threads[0]
        assert isinstance(first, Load) and first.order is MemOrder.RLX
        assert second.kind is FenceKind.ISYNC

    def test_armv8_is_native(self):
        p = ProgramBuilder("s")
        p.thread().store("x", 1, MemOrder.REL)
        compiled = compile_to(p.build(), "armv8")
        assert compiled.threads[0][0].order is MemOrder.REL

    def test_mapping_recurses_into_branches(self):
        p = ProgramBuilder("s")
        t = p.thread()
        a = t.load("x")
        t.if_(a.eq(0), lambda b: b.store("y", 1, MemOrder.REL))
        compiled = compile_to(p.build(), "power")
        branch = compiled.threads[0][1]
        assert isinstance(branch.then[0], Fence)

    def test_observables_preserved(self):
        program = get_litmus("MP+rel+acq").program
        compiled = compile_to(program, "power")
        assert compiled.observables == program.observables


class TestSoundnessAgainstImm:
    @pytest.mark.parametrize("target", TARGETS)
    def test_corpus_inclusion(self, target):
        """behaviours(compile(P), target) ⊆ behaviours(P, imm)."""
        for test in all_litmus_tests():
            src_out, src_fin = outcomes(test.program, "imm")
            tgt_out, tgt_fin = outcomes(compile_to(test.program, target), target)
            assert tgt_out <= src_out, (test.name, target)
            assert tgt_fin <= src_fin, (test.name, target)

    def test_annotated_programs_keep_their_guarantees(self):
        """MP with rel/acq stays forbidden after compilation."""
        program = get_litmus("MP+rel+acq").program
        for target in TARGETS:
            result = verify(compile_to(program, target), target, stop_on_error=False)
            stale = {
                tuple(v for _, v in o) for o in result.outcomes
            }
            assert (1, 0) not in stale, target


class TestRc11Gap:
    def test_lb_witnesses_rc11_unsoundness(self):
        """The famous discrepancy: compiled relaxed LB exhibits (1,1)
        on hardware, which RC11 forbids at the source level."""
        program = get_litmus("LB").program
        src_out, _ = outcomes(program, "rc11")
        for target in ("power", "armv8"):
            tgt_out, _ = outcomes(compile_to(program, target), target)
            assert not (tgt_out <= src_out), target

    def test_everything_else_on_corpus_is_rc11_sound(self):
        bad = []
        for test in all_litmus_tests():
            src_out, src_fin = outcomes(test.program, "rc11")
            for target in TARGETS:
                tgt_out, tgt_fin = outcomes(
                    compile_to(test.program, target), target
                )
                if not (tgt_out <= src_out and tgt_fin <= src_fin):
                    bad.append((test.name, target))
        assert set(bad) == {("LB", "power"), ("LB", "armv8")}
