"""Unit tests for DSL expressions and taint tracking."""

import pytest

from repro.events import Event
from repro.lang import BinOp, Const, EvalError, Reg, Tainted, lift


def env(**values):
    out = {}
    for name, spec in values.items():
        if isinstance(spec, tuple):
            value, taint = spec
            out[name] = Tainted(value, frozenset(taint))
        else:
            out[name] = Tainted(spec, frozenset())
    return out


class TestEvaluation:
    def test_const(self):
        assert Const(7).evaluate({}).value == 7

    def test_reg(self):
        assert Reg("a").evaluate(env(a=3)).value == 3

    def test_unset_reg_raises(self):
        with pytest.raises(EvalError):
            Reg("a").evaluate({})

    @pytest.mark.parametrize(
        "expr, expected",
        [
            (Reg("a") + 1, 4),
            (Reg("a") - 1, 2),
            (Reg("a") * 2, 6),
            (Reg("a") % 2, 1),
            (Reg("a") // 2, 1),
            (Reg("a") & 1, 1),
            (Reg("a") | 4, 7),
            (Reg("a") ^ 1, 2),
            (Reg("a").eq(3), 1),
            (Reg("a").ne(3), 0),
            (Reg("a").lt(4), 1),
            (Reg("a").le(3), 1),
            (Reg("a").gt(3), 0),
            (Reg("a").ge(4), 0),
            (Reg("a").eq(3).and_(Reg("a").gt(0)), 1),
            (Reg("a").eq(9).or_(Reg("a").gt(0)), 1),
        ],
    )
    def test_operators(self, expr, expected):
        assert expr.evaluate(env(a=3)).value == expected

    def test_reverse_operators(self):
        assert (1 + Reg("a")).evaluate(env(a=3)).value == 4
        assert (10 - Reg("a")).evaluate(env(a=3)).value == 7


class TestTaint:
    def test_taint_propagates(self):
        e1, e2 = Event(0, 0), Event(0, 1)
        result = (Reg("a") + Reg("b")).evaluate(
            env(a=(1, [e1]), b=(2, [e2]))
        )
        assert result.taint == {e1, e2}

    def test_const_untainted(self):
        assert Const(1).evaluate({}).taint == frozenset()

    def test_mixed_taint(self):
        e1 = Event(0, 0)
        result = (Reg("a") * 2 + 5).evaluate(env(a=(1, [e1])))
        assert result.taint == {e1}


class TestLift:
    def test_int(self):
        assert isinstance(lift(3), Const)

    def test_bool_coerced(self):
        assert lift(True).value == 1

    def test_expr_passthrough(self):
        r = Reg("a")
        assert lift(r) is r

    def test_rejects_other(self):
        with pytest.raises(EvalError):
            lift("nope")

    def test_bad_operator_rejected(self):
        with pytest.raises(EvalError):
            BinOp("<<", Const(1), Const(2))
