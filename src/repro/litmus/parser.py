"""A parser for column-style litmus files.

The classic herd/diy layout, adapted to this library's statement
vocabulary::

    SB+example
    { }
    P0          | P1          ;
    x = 1       | y = 1       ;
    r0 = y      | r1 = x      ;
    exists (0:r0=0 /\\ 1:r1=0)

Cell grammar (one statement per cell; ``-`` or blank is a no-op):

* ``x = 3`` / ``x =rel 3``            — store (optional ordering)
* ``r0 = x`` / ``r0 =acq x``          — load into a register
* ``r0 = FAI(x, 1)``                  — fetch-and-add, old value
* ``r0 = CAS(x, 0, 1)``               — compare-and-swap, success flag
* ``r0 = XCHG(x, 2)``                 — exchange, old value
* ``fence`` / ``fence(lwsync)`` / ``mfence`` / ``dmb ld`` …
* ``if r0 == 1: x = 2``               — one-line conditional
* ``assume r0 == 1`` / ``assert r0 == 1``

Registers are names starting with ``r``; everything else on the right
of a plain assignment is a location.  The ``exists`` clause names the
observation the litmus probes: ``parse_litmus`` returns it as a
predicate usable with :class:`~repro.litmus.catalog.LitmusTest`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..events import FenceKind, MemOrder
from ..lang import Expr, Program, ProgramBuilder, Reg, lift
from ..lang.builder import BlockBuilder
from .catalog import LitmusTest


class LitmusParseError(Exception):
    """Raised on malformed litmus input."""


_ORDERS = {
    "": MemOrder.RLX,
    "rlx": MemOrder.RLX,
    "acq": MemOrder.ACQ,
    "rel": MemOrder.REL,
    "acqrel": MemOrder.ACQ_REL,
    "sc": MemOrder.SC,
}

_FENCES = {
    "fence": (FenceKind.SYNC, MemOrder.SC),
    "sync": (FenceKind.SYNC, MemOrder.SC),
    "mfence": (FenceKind.MFENCE, MemOrder.SC),
    "lwsync": (FenceKind.LWSYNC, MemOrder.SC),
    "isync": (FenceKind.ISYNC, MemOrder.SC),
    "isb": (FenceKind.ISYNC, MemOrder.SC),
    "dmb": (FenceKind.SYNC, MemOrder.SC),
    "dmb ld": (FenceKind.DMB_LD, MemOrder.SC),
    "dmb st": (FenceKind.DMB_ST, MemOrder.SC),
    "fence(sc)": (FenceKind.C11, MemOrder.SC),
    "fence(acq)": (FenceKind.C11, MemOrder.ACQ),
    "fence(rel)": (FenceKind.C11, MemOrder.REL),
    "fence(acqrel)": (FenceKind.C11, MemOrder.ACQ_REL),
    "fence(sync)": (FenceKind.SYNC, MemOrder.SC),
    "fence(lwsync)": (FenceKind.LWSYNC, MemOrder.SC),
    "fence(mfence)": (FenceKind.MFENCE, MemOrder.SC),
}

_CMP = r"(==|!=|<=|>=|<|>)"


@dataclass
class _ThreadState:
    block: BlockBuilder
    regs: dict[str, Reg]


def _is_reg(token: str) -> bool:
    return bool(re.fullmatch(r"r\d+", token))


class _Parser:
    def __init__(self) -> None:
        self.threads: list[_ThreadState] = []

    # -- expressions over registers/constants ---------------------------------

    def _operand(self, state: _ThreadState, token: str) -> Expr:
        token = token.strip()
        if re.fullmatch(r"-?\d+", token):
            return lift(int(token))
        if _is_reg(token):
            if token not in state.regs:
                raise LitmusParseError(f"register {token} used before set")
            return state.regs[token]
        raise LitmusParseError(f"cannot parse operand {token!r}")

    def _condition(self, state: _ThreadState, text: str) -> Expr:
        match = re.fullmatch(rf"\s*(\S+)\s*{_CMP}\s*(\S+)\s*", text)
        if not match:
            raise LitmusParseError(f"cannot parse condition {text!r}")
        lhs, op, rhs = match.groups()
        left = self._operand(state, lhs)
        right = self._operand(state, rhs)
        method = {
            "==": "eq", "!=": "ne", "<": "lt",
            "<=": "le", ">": "gt", ">=": "ge",
        }[op]
        return getattr(left, method)(right)

    # -- statements ----------------------------------------------------------------

    def statement(self, tid: int, cell: str) -> None:
        state = self.threads[tid]
        cell = cell.strip()
        if not cell or cell == "-":
            return
        lowered = cell.lower()
        if lowered in _FENCES:
            kind, order = _FENCES[lowered]
            state.block.fence(kind, order)
            return
        if lowered.startswith("if "):
            head, _, body = cell.partition(":")
            if not body.strip():
                raise LitmusParseError(f"if without body: {cell!r}")
            cond = self._condition(state, head[3:])
            sub = _Parser._sub_statement
            state.block.if_(cond, lambda b: sub(self, state, b, body.strip()))
            return
        if lowered.startswith("assume "):
            state.block.assume(self._condition(state, cell[7:]))
            return
        if lowered.startswith("assert "):
            state.block.assert_(self._condition(state, cell[7:]))
            return
        self._assignment(state, state.block, cell)

    def _sub_statement(self, state: _ThreadState, block: BlockBuilder, text: str) -> None:
        lowered = text.lower()
        if lowered in _FENCES:
            kind, order = _FENCES[lowered]
            block.fence(kind, order)
            return
        self._assignment(state, block, text)

    def _assignment(self, state: _ThreadState, block: BlockBuilder, cell: str) -> None:
        match = re.fullmatch(r"\s*(\S+)\s*=(\w*)\s*(.+?)\s*", cell)
        if not match:
            raise LitmusParseError(f"cannot parse statement {cell!r}")
        target, suffix, rhs = match.groups()
        order = _ORDERS.get(suffix)
        if order is None:
            raise LitmusParseError(f"unknown ordering {suffix!r} in {cell!r}")
        rmw = re.fullmatch(r"(FAI|CAS|XCHG)\s*\(([^)]*)\)", rhs, re.IGNORECASE)
        if rmw is not None:
            self._rmw(state, block, target, rmw, order)
            return
        if _is_reg(target):
            # load: target register, rhs location
            state.regs[target] = block.load(rhs, order)
            return
        # store: target location, rhs expression
        block.store(target, self._operand(state, rhs), order)

    def _rmw(self, state, block, target, match, order) -> None:
        if not _is_reg(target):
            raise LitmusParseError("RMW result must go into a register")
        kind = match.group(1).upper()
        args = [a.strip() for a in match.group(2).split(",")]
        if kind == "FAI":
            if len(args) != 2:
                raise LitmusParseError("FAI needs (loc, delta)")
            state.regs[target] = block.fai(args[0], self._operand(state, args[1]), order)
        elif kind == "CAS":
            if len(args) != 3:
                raise LitmusParseError("CAS needs (loc, expected, desired)")
            state.regs[target] = block.cas(
                args[0],
                self._operand(state, args[1]),
                self._operand(state, args[2]),
                order,
            )
        else:  # XCHG
            if len(args) != 2:
                raise LitmusParseError("XCHG needs (loc, value)")
            state.regs[target] = block.xchg(args[0], self._operand(state, args[1]), order)


def parse_litmus(text: str) -> LitmusTest:
    """Parse a column-style litmus file into a :class:`LitmusTest`."""
    lines = [
        line.rstrip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("//")
    ]
    if not lines:
        raise LitmusParseError("empty litmus file")
    name = lines.pop(0).strip()
    if lines and lines[0].strip().startswith("{"):
        lines.pop(0)  # initialisation block: everything starts at 0 anyway

    exists_clause = None
    if lines and lines[-1].strip().lower().startswith("exists"):
        exists_clause = lines.pop().strip()

    rows = [[cell.strip() for cell in line.rstrip(";").split("|")] for line in lines]
    if not rows:
        raise LitmusParseError("no thread rows")
    header = rows.pop(0)
    num_threads = len(header)
    for i, cell in enumerate(header):
        if not re.fullmatch(rf"P{i}", cell.strip()):
            raise LitmusParseError(f"bad thread header {cell!r}")

    builder = ProgramBuilder(name)
    parser = _Parser()
    for tid in range(num_threads):
        thread = builder.thread()
        parser.threads.append(_ThreadState(thread, {}))
    for row in rows:
        if len(row) != num_threads:
            raise LitmusParseError(f"row has {len(row)} cells, want {num_threads}")
        for tid, cell in enumerate(row):
            parser.statement(tid, cell)

    # observe every named register
    observed: dict[tuple[int, str], str] = {}
    for tid, state in enumerate(parser.threads):
        for public, reg in state.regs.items():
            builder.observe(reg)
            observed[(tid, public)] = reg.name
    program = builder.build()

    predicate = _parse_exists(exists_clause, observed)
    return LitmusTest(
        name=name,
        program=program,
        interesting=predicate,
        description=exists_clause or "",
    )


def _parse_exists(clause: str | None, observed: dict[tuple[int, str], str]):
    """Turn ``exists (0:r0=1 /\\ 1:r1=0)`` into an observation predicate."""
    if clause is None:
        return lambda o, s: False
    body = clause.strip()
    body = re.sub(r"^exists\s*\(", "", body).rstrip(")")
    conjuncts = []
    for part in body.split("/\\"):
        match = re.fullmatch(r"\s*(\d+):(\w+)\s*=\s*(-?\d+)\s*", part)
        if match is None:
            match_loc = re.fullmatch(r"\s*(\w+)\s*=\s*(-?\d+)\s*", part)
            if match_loc is None:
                raise LitmusParseError(f"cannot parse exists conjunct {part!r}")
            loc, value = match_loc.groups()
            conjuncts.append(("loc", loc, int(value)))
            continue
        tid, reg, value = match.groups()
        key = observed.get((int(tid), reg))
        if key is None:
            raise LitmusParseError(f"exists references unknown register {part!r}")
        conjuncts.append(("reg", f"{key}@{tid}", int(value)))

    def predicate(obs, state, conjuncts=tuple(conjuncts)):
        for kind, key, value in conjuncts:
            if kind == "reg":
                if obs.get(key) != value:
                    return False
            else:
                if dict(state).get(key, 0) != value:
                    return False
        return True

    return predicate
