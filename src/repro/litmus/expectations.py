"""Per-model verdicts for the litmus corpus.

``ALLOWED[test][model]`` says whether the test's *interesting outcome*
(the relaxed behaviour it probes) is allowed under that model, per the
published model definitions (Alglave–Maranget–Tautschnig herd models,
x86-TSO, RC11, IMM) — with the caveats below for the places where our
reduced POWER/ARM cores are known to deviate.

Legend per row: sc, tso, pso, ra, rc11, imm, armv8, power, coherence.

Known deviations of the reduced models (documented, also asserted by
the tests so drift is caught):

* none currently — the corpus below was chosen so the reduced models
  agree with the published verdicts on every entry.  IRIW+lwsyncs (the
  classic lwsync non-cumulativity example) *is* included and our POWER
  core gets it right (allowed).

``coherence`` is SC-per-location only: it admits every verdict its
axiom admits, including LB shapes that syntactic-but-constant
dependencies or fences would forbid under every real model.
"""

from __future__ import annotations

MODELS = (
    "sc",
    "tso",
    "pso",
    "ra",
    "rc11",
    "imm",
    "armv8",
    "power",
    "coherence",
)


def _row(**verdicts: bool) -> dict[str, bool]:
    missing = set(MODELS) - set(verdicts)
    if missing:
        raise ValueError(f"missing verdicts for {missing}")
    return verdicts


ALLOWED: dict[str, dict[str, bool]] = {
    # -- store buffering ---------------------------------------------------
    "SB": _row(
        sc=False, tso=True, pso=True, ra=True, rc11=True,
        imm=True, armv8=True, power=True, coherence=True,
    ),
    "SB+fences": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=False,
        imm=False, armv8=False, power=False, coherence=True,
    ),
    # lwsync does not order W->R: SB stays visible on POWER
    "SB+lwsyncs": _row(
        sc=False, tso=True, pso=True, ra=True, rc11=True,
        imm=True, armv8=True, power=True, coherence=True,
    ),
    "SB+sc": _row(
        sc=False, tso=True, pso=True, ra=True, rc11=False,
        imm=False, armv8=False, power=True, coherence=True,
    ),
    # -- message passing ---------------------------------------------------
    "MP": _row(
        sc=False, tso=False, pso=True, ra=False, rc11=True,
        imm=True, armv8=True, power=True, coherence=True,
    ),
    "MP+fences": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=False,
        imm=False, armv8=False, power=False, coherence=True,
    ),
    "MP+lwsyncs": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=False,
        imm=False, armv8=False, power=False, coherence=True,
    ),
    "MP+rel+acq": _row(
        sc=False, tso=False, pso=True, ra=False, rc11=False,
        imm=False, armv8=False, power=True, coherence=True,
    ),
    # IMM deliberately sits above the hardware models: its ar has no
    # from-read component, so dependency-ordered observation shapes
    # that POWER/ARM forbid stay allowed (needed for compilation
    # soundness towards hardware)
    "MP+lwsync+addr": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=True,
        imm=True, armv8=False, power=False, coherence=True,
    ),
    # dmb.st orders the writer; the ctrl dependency orders the reader
    # (ctrl -> the dependent load is *not* ordered on ARM/POWER — reads
    # may speculate — but here the load only executes inside the taken
    # branch whose condition reads 1, and the probed outcome needs the
    # load to return 0 *after* the branch saw 1; speculation makes that
    # observable, so the outcome IS allowed on armv8/power/imm).
    "MP+dmbst+ctrl": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=True,
        imm=True, armv8=True, power=True, coherence=True,
    ),
    # -- load buffering ----------------------------------------------------
    "LB": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=False,
        imm=True, armv8=True, power=True, coherence=True,
    ),
    # the "data dependency" writes a constant (r - r + 1): the
    # coherence-only model has no dependency axiom, so the outcome is
    # axiomatically consistent — and constructible, since the value
    # does not actually change under the revisit
    "LB+datas": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=False,
        imm=False, armv8=False, power=False, coherence=True,
    ),
    # likewise fences mean nothing to bare coherence
    "LB+fences": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=False,
        imm=False, armv8=False, power=False, coherence=True,
    ),
    # -- IRIW ----------------------------------------------------------------
    "IRIW": _row(
        sc=False, tso=False, pso=False, ra=True, rc11=True,
        imm=True, armv8=True, power=True, coherence=True,
    ),
    "IRIW+fences": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=False,
        imm=False, armv8=False, power=False, coherence=True,
    ),
    # the classic: lwsync is not cumulative enough for IRIW
    "IRIW+lwsyncs": _row(
        sc=False, tso=False, pso=False, ra=True, rc11=True,
        imm=True, armv8=False, power=True, coherence=True,
    ),
    "IRIW+sc": _row(
        sc=False, tso=False, pso=False, ra=True, rc11=False,
        imm=False, armv8=False, power=True, coherence=True,
    ),
    # -- causality chains ---------------------------------------------------
    # WRC with dependencies: the canonical non-multi-copy-atomicity
    # probe — observable on POWER, forbidden on (MCA) ARMv8 and TSO;
    # IMM allows it (see above)
    "WRC": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=True,
        imm=True, armv8=False, power=True, coherence=True,
    ),
    "R": _row(
        sc=False, tso=True, pso=True, ra=True, rc11=True,
        imm=True, armv8=True, power=True, coherence=True,
    ),
    # -- coherence shapes (forbidden everywhere) ------------------------------
    "CoRR": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=False,
        imm=False, armv8=False, power=False, coherence=False,
    ),
    "CoRW1": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=False,
        imm=False, armv8=False, power=False, coherence=False,
    ),
    "CoWR": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=False,
        imm=False, armv8=False, power=False, coherence=False,
    ),
    # -- RMW atomicity (forbidden everywhere) ---------------------------------
    "2xFAI": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=False,
        imm=False, armv8=False, power=False, coherence=False,
    ),
    "CAS-race": _row(
        sc=False, tso=False, pso=False, ra=False, rc11=False,
        imm=False, armv8=False, power=False, coherence=False,
    ),
}


ALLOWED["MP+dmbld"] = _row(
    sc=False, tso=False, pso=True, ra=False, rc11=True,
    imm=True, armv8=True, power=True, coherence=True,
)
ALLOWED["SB+dmbsts"] = _row(
    sc=False, tso=True, pso=True, ra=True, rc11=True,
    imm=True, armv8=True, power=True, coherence=True,
)
ALLOWED["LB+ctrls"] = _row(
    sc=False, tso=False, pso=False, ra=False, rc11=False,
    imm=False, armv8=False, power=False, coherence=False,
)
ALLOWED["CoRW2"] = _row(
    sc=False, tso=False, pso=False, ra=False, rc11=False,
    imm=False, armv8=False, power=False, coherence=False,
)


def allowed(test: str, model: str) -> bool:
    return ALLOWED[test][model]


def expected_tests() -> list[str]:
    return sorted(ALLOWED)


# final-state-probed shapes, appended to the same table
ALLOWED["2+2W"] = _row(
    sc=False, tso=False, pso=True, ra=True, rc11=True,
    imm=True, armv8=True, power=True, coherence=True,
)
ALLOWED["CoWW"] = _row(
    sc=False, tso=False, pso=False, ra=False, rc11=False,
    imm=False, armv8=False, power=False, coherence=False,
)
ALLOWED["S"] = _row(
    sc=False, tso=False, pso=True, ra=False, rc11=True,
    imm=True, armv8=True, power=True, coherence=True,
)
