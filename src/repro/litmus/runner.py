"""Running litmus tests and evaluating their verdicts."""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ExplorationOptions, VerificationResult, verify
from ..models import MemoryModel, get_model
from ..obs import NULL_OBSERVER
from .catalog import LitmusTest


@dataclass(frozen=True)
class LitmusVerdict:
    test: str
    model: str
    #: the probed relaxed outcome was observed in some execution
    observed: bool
    executions: int
    duplicates: int
    elapsed: float

    def __str__(self) -> str:
        word = "allowed" if self.observed else "forbidden"
        return f"{self.test:16s} {self.model:9s} {word:9s} ({self.executions} executions)"


def run_litmus(
    test: LitmusTest,
    model: MemoryModel | str,
    options: ExplorationOptions | None = None,
    observer=NULL_OBSERVER,
    **option_overrides,
) -> LitmusVerdict:
    """Explore the test exhaustively and evaluate its probe.

    Routed through :func:`~repro.core.explorer.verify`, so passing
    ``jobs=N`` (or setting ``REPRO_JOBS``) shards the exploration.
    """
    model = get_model(model) if isinstance(model, str) else model
    if options is None:
        defaults: dict = {"stop_on_error": False, "collect_executions": True}
        defaults.update(option_overrides)
        options = ExplorationOptions(**defaults)
    elif option_overrides:
        raise ValueError("pass either options or keyword overrides, not both")
    if not options.collect_executions:
        raise ValueError("litmus evaluation needs collect_executions")
    result = verify(test.program, model, options, observer=observer)
    observed = _probe_observed(test, result)
    return LitmusVerdict(
        test=test.name,
        model=model.name,
        observed=observed,
        executions=result.executions,
        duplicates=result.duplicates,
        elapsed=result.elapsed,
    )


def _probe_observed(test: LitmusTest, result: VerificationResult) -> bool:
    from ..graphs import final_state
    from ..lang import replay

    for graph in result.execution_graphs:
        observation: dict[str, int] = {}
        for tid, reg in test.program.observables:
            rep = replay(
                test.program.threads[tid], tid, graph.read_values(tid)
            )
            if reg in rep.registers:
                observation[f"{reg}@{tid}"] = rep.registers[reg]
        state = dict(final_state(graph))
        try:
            if test.interesting(observation, state):
                return True
        except KeyError:
            continue  # a probed register never got assigned: not this one
    return False
