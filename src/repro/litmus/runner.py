"""Running litmus tests and evaluating their verdicts."""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ExplorationOptions, VerificationResult, verify
from ..core.config import resolve_options
from ..models import MemoryModel, get_model
from ..obs import NULL_OBSERVER
from .catalog import LitmusTest


@dataclass(frozen=True)
class LitmusVerdict:
    test: str
    model: str
    #: the probed relaxed outcome was observed in some execution
    observed: bool
    executions: int
    duplicates: int
    elapsed: float

    def __str__(self) -> str:
        word = "allowed" if self.observed else "forbidden"
        return f"{self.test:16s} {self.model:9s} {word:9s} ({self.executions} executions)"


#: the exploration defaults litmus evaluation needs (the probe is a
#: predicate over *all* consistent executions, so the search must not
#: stop early and must keep the graphs); repro.suite reuses these so
#: batched verdicts are bit-identical to individual run_litmus calls
LITMUS_DEFAULTS: dict = {"stop_on_error": False, "collect_executions": True}


def run_litmus(
    test: LitmusTest,
    model: MemoryModel | str,
    *,
    options: ExplorationOptions | None = None,
    observer=NULL_OBSERVER,
    **option_overrides,
) -> LitmusVerdict:
    """Explore the test exhaustively and evaluate its probe.

    Keyword-only after the model argument; accepts the same
    ``options``/keyword-override convention as :func:`repro.verify`.
    Routed through :func:`~repro.core.explorer.verify`, so passing
    ``jobs=N`` (or setting ``REPRO_JOBS``) shards the exploration.
    """
    model = get_model(model) if isinstance(model, str) else model
    options = resolve_options(options, option_overrides, **LITMUS_DEFAULTS)
    if not options.collect_executions:
        raise ValueError("litmus evaluation needs collect_executions")
    result = verify(test.program, model, options=options, observer=observer)
    return verdict_from_result(test, model.name, result)


def verdict_from_result(
    test: LitmusTest, model_name: str, result: VerificationResult
) -> LitmusVerdict:
    """Evaluate ``test``'s probe over an exploration ``result``.

    Factored out of :func:`run_litmus` so the batch engine
    (:mod:`repro.suite`) can run explorations through its shared pool
    and still produce verdicts identical to individual calls.
    """
    return LitmusVerdict(
        test=test.name,
        model=model_name,
        observed=probe_observed(test, result),
        executions=result.executions,
        duplicates=result.duplicates,
        elapsed=result.elapsed,
    )


def probe_observed(test: LitmusTest, result: VerificationResult) -> bool:
    from ..graphs import final_state
    from ..lang import replay

    for graph in result.execution_graphs:
        observation: dict[str, int] = {}
        for tid, reg in test.program.observables:
            rep = replay(
                test.program.threads[tid], tid, graph.read_values(tid)
            )
            if reg in rep.registers:
                observation[f"{reg}@{tid}"] = rep.registers[reg]
        state = dict(final_state(graph))
        try:
            if test.interesting(observation, state):
                return True
        except KeyError:
            continue  # a probed register never got assigned: not this one
    return False
