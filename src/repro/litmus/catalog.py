"""The classic litmus tests, as DSL programs.

Each entry is a :class:`LitmusTest`: a program, the *interesting
outcome* (the relaxed behaviour the test probes, as a predicate over
observed register values), and the per-model verdicts recorded in
:mod:`repro.litmus.expectations`.

Naming follows the herd/diy conventions: SB (store buffering), MP
(message passing), LB (load buffering), IRIW (independent reads of
independent writes), and the Co* coherence shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..events import FenceKind, MemOrder
from ..lang import Program, ProgramBuilder

#: observed register values keyed by "reg@tid"
Observation = dict[str, int]


@dataclass(frozen=True)
class LitmusTest:
    name: str
    program: Program
    #: does this observation exhibit the probed relaxed behaviour?
    interesting: Callable[[Observation], bool]
    description: str = ""


_REGISTRY: dict[str, LitmusTest] = {}


def litmus(name: str):
    """Decorator: register a litmus-test constructor."""

    def wrap(fn: Callable[[], LitmusTest]) -> Callable[[], LitmusTest]:
        test = fn()
        if test.name != name:  # pragma: no cover - defensive
            raise ValueError(f"litmus name mismatch: {test.name} != {name}")
        _REGISTRY[name] = test
        return fn

    return wrap


def get_litmus(name: str) -> LitmusTest:
    return _REGISTRY[name]


def litmus_names() -> list[str]:
    return sorted(_REGISTRY)


def all_litmus_tests() -> list[LitmusTest]:
    return [_REGISTRY[n] for n in litmus_names()]


def _obs(outcome) -> Observation:
    return dict(outcome)


# ---------------------------------------------------------------------------
# store buffering


def _sb(name: str, fence: FenceKind | None, order: MemOrder = MemOrder.RLX):
    p = ProgramBuilder(name)
    regs = []
    for locs in (("x", "y"), ("y", "x")):
        t = p.thread()
        t.store(locs[0], 1, order)
        if fence is not None:
            t.fence(fence)
        regs.append(t.load(locs[1], order))
    p.observe(*regs)
    a, b = regs
    return LitmusTest(
        name,
        p.build(),
        lambda o, s, a=a.name, b=b.name: o[f"{a}@0"] == 0 and o[f"{b}@1"] == 0,
        "can both threads miss the other's store?",
    )


@litmus("SB")
def sb() -> LitmusTest:
    return _sb("SB", None)


@litmus("SB+fences")
def sb_fences() -> LitmusTest:
    return _sb("SB+fences", FenceKind.SYNC)


@litmus("SB+lwsyncs")
def sb_lwsyncs() -> LitmusTest:
    return _sb("SB+lwsyncs", FenceKind.LWSYNC)


@litmus("SB+sc")
def sb_sc() -> LitmusTest:
    return _sb("SB+sc", None, MemOrder.SC)


@litmus("SB+dmbsts")
def sb_dmbsts() -> LitmusTest:
    # a store-store barrier cannot fix store buffering
    return _sb("SB+dmbsts", FenceKind.DMB_ST)


# ---------------------------------------------------------------------------
# message passing


def _mp(
    name: str,
    writer_fence: FenceKind | None = None,
    reader_fence: FenceKind | None = None,
    write_order: MemOrder = MemOrder.RLX,
    read_order: MemOrder = MemOrder.RLX,
    reader_dep: str | None = None,
):
    p = ProgramBuilder(name)
    t1 = p.thread()
    t1.store(("d", 0), 1)  # d[0], so address-dependent readers hit it
    if writer_fence is not None:
        t1.fence(writer_fence)
    t1.store("f", 1, write_order)
    t2 = p.thread()
    a = t2.load("f", read_order)
    if reader_fence is not None:
        t2.fence(reader_fence)
    if reader_dep == "addr":
        # address-dependent read of d[a - a] == d[0]
        b = t2.load(("d", a - a))
    elif reader_dep == "ctrl":
        b = t2.fresh_reg()
        t2.assign(b, 0)
        t2.if_(a.eq(1), lambda blk: blk.load(("d", 0), into=b))
        # observation below treats b as the data read (0 when skipped)
    else:
        b = t2.load(("d", 0))
    p.observe(a, b)
    return LitmusTest(
        name,
        p.build(),
        lambda o, s, a=a.name, b=b.name: o[f"{a}@1"] == 1 and o[f"{b}@1"] == 0,
        "can the reader see the flag but stale data?",
    )


@litmus("MP")
def mp() -> LitmusTest:
    return _mp("MP")


@litmus("MP+fences")
def mp_fences() -> LitmusTest:
    return _mp("MP+fences", FenceKind.SYNC, FenceKind.SYNC)


@litmus("MP+lwsyncs")
def mp_lwsyncs() -> LitmusTest:
    return _mp("MP+lwsyncs", FenceKind.LWSYNC, FenceKind.LWSYNC)


@litmus("MP+rel+acq")
def mp_rel_acq() -> LitmusTest:
    return _mp(
        "MP+rel+acq", write_order=MemOrder.REL, read_order=MemOrder.ACQ
    )


@litmus("MP+lwsync+addr")
def mp_lwsync_addr() -> LitmusTest:
    return _mp("MP+lwsync+addr", FenceKind.LWSYNC, reader_dep="addr")


@litmus("MP+dmbst+ctrl")
def mp_dmbst_ctrl() -> LitmusTest:
    return _mp("MP+dmbst+ctrl", FenceKind.DMB_ST, reader_dep="ctrl")


@litmus("MP+dmbld")
def mp_dmbld() -> LitmusTest:
    # only the reader is fenced: the writer's W->W reordering still
    # breaks message passing on every model that relaxes W->W
    return _mp("MP+dmbld", None, FenceKind.DMB_LD)


# ---------------------------------------------------------------------------
# load buffering


def _lb(name: str, dep: str | None):
    p = ProgramBuilder(name)
    regs = []
    for locs in (("x", "y"), ("y", "x")):
        t = p.thread()
        r = t.load(locs[0])
        if dep == "data":
            t.store(locs[1], r - r + 1)  # data-dependent, still writes 1
        elif dep == "fence":
            t.fence(FenceKind.SYNC)
            t.store(locs[1], 1)
        else:
            t.store(locs[1], 1)
        regs.append(r)
    p.observe(*regs)
    a, b = regs
    return LitmusTest(
        name,
        p.build(),
        lambda o, s, a=a.name, b=b.name: o[f"{a}@0"] == 1 and o[f"{b}@1"] == 1,
        "can both loads see the other thread's later store?",
    )


@litmus("LB")
def lb() -> LitmusTest:
    return _lb("LB", None)


@litmus("LB+datas")
def lb_datas() -> LitmusTest:
    return _lb("LB+datas", "data")


@litmus("LB+fences")
def lb_fences() -> LitmusTest:
    return _lb("LB+fences", "fence")


@litmus("LB+ctrls")
def lb_ctrls() -> LitmusTest:
    """Both stores are control-dependent on the loads: observing
    (1, 1) would need the values to appear out of thin air — no model
    (and no stateless checker) can produce it."""
    p = ProgramBuilder("LB+ctrls")
    regs = []
    for locs in (("x", "y"), ("y", "x")):
        t = p.thread()
        r = t.load(locs[0])
        t.if_(r.eq(1), lambda b, dst=locs[1]: b.store(dst, 1))
        regs.append(r)
    p.observe(*regs)
    a, b = regs
    return LitmusTest(
        "LB+ctrls",
        p.build(),
        lambda o, s, a=a.name, b=b.name: o[f"{a}@0"] == 1 and o[f"{b}@1"] == 1,
        "control-dependent LB: out-of-thin-air values",
    )


@litmus("CoRW2")
def corw2() -> LitmusTest:
    p = ProgramBuilder("CoRW2")
    t1 = p.thread()
    a = t1.load("x")
    t1.store("x", 2)
    t2 = p.thread()
    b = t2.load("x")
    t2.store("x", 1)
    p.observe(a, b)
    return LitmusTest(
        "CoRW2",
        p.build(),
        lambda o, s, a=a.name, b=b.name: o[f"{a}@0"] == 1 and o[f"{b}@1"] == 2,
        "cross-thread read/write coherence cycle",
    )


# ---------------------------------------------------------------------------
# independent reads of independent writes


def _iriw(name: str, fence: FenceKind | None, order: MemOrder = MemOrder.RLX):
    p = ProgramBuilder(name)
    w1 = p.thread()
    w1.store("x", 1, order)
    w2 = p.thread()
    w2.store("y", 1, order)
    regs = []
    for locs in (("x", "y"), ("y", "x")):
        t = p.thread()
        r1 = t.load(locs[0], order)
        if fence is not None:
            t.fence(fence)
        r2 = t.load(locs[1], order)
        regs += [r1, r2]
    p.observe(*regs)
    a, b, c, d = regs
    return LitmusTest(
        name,
        p.build(),
        lambda o, s, a=a.name, b=b.name, c=c.name, d=d.name: (
            o[f"{a}@2"] == 1
            and o[f"{b}@2"] == 0
            and o[f"{c}@3"] == 1
            and o[f"{d}@3"] == 0
        ),
        "can the two readers disagree on the order of the writes?",
    )


@litmus("IRIW")
def iriw() -> LitmusTest:
    return _iriw("IRIW", None)


@litmus("IRIW+fences")
def iriw_fences() -> LitmusTest:
    return _iriw("IRIW+fences", FenceKind.SYNC)


@litmus("IRIW+lwsyncs")
def iriw_lwsyncs() -> LitmusTest:
    return _iriw("IRIW+lwsyncs", FenceKind.LWSYNC)


@litmus("IRIW+sc")
def iriw_sc() -> LitmusTest:
    return _iriw("IRIW+sc", None, MemOrder.SC)


# ---------------------------------------------------------------------------
# write-to-read causality and friends


@litmus("WRC")
def wrc() -> LitmusTest:
    p = ProgramBuilder("WRC")
    t1 = p.thread()
    t1.store(("x", 0), 1)
    t2 = p.thread()
    a = t2.load(("x", 0))
    t2.store("y", a - a + 1)  # data dependency x -> y
    t3 = p.thread()
    b = t3.load("y")
    c = t3.load(("x", b - b))  # address dependency y -> x[0]
    p.observe(a, b, c)
    return LitmusTest(
        "WRC",
        p.build(),
        lambda o, s, a=a.name, b=b.name, c=c.name: (
            o[f"{a}@1"] == 1 and o[f"{b}@2"] == 1 and o[f"{c}@2"] == 0
        ),
        "write-to-read causality through a middleman thread",
    )


@litmus("2+2W")
def two_plus_two_w() -> LitmusTest:
    p = ProgramBuilder("2+2W")
    for locs in (("x", "y"), ("y", "x")):
        t = p.thread()
        t.store(locs[0], 2)
        t.store(locs[1], 1)
    return LitmusTest(
        "2+2W",
        p.build(),
        lambda o, s: s.get("x") == 2 and s.get("y") == 2,
        "can both locations end up holding 2?",
    )


@litmus("R")
def r_shape() -> LitmusTest:
    p = ProgramBuilder("R")
    t1 = p.thread()
    t1.store("x", 1)
    t1.store("y", 1)
    t2 = p.thread()
    t2.store("y", 2)
    a = t2.load("x")
    p.observe(a)
    return LitmusTest(
        "R",
        p.build(),
        lambda o, s, a=a.name: o[f"{a}@1"] == 0 and s.get("y") == 2,
        "R shape: store-store vs store-load",
    )


@litmus("S")
def s_shape() -> LitmusTest:
    p = ProgramBuilder("S")
    t1 = p.thread()
    t1.store("x", 2)
    t1.store("y", 1)
    t2 = p.thread()
    a = t2.load("y")
    t2.store("x", a - a + 1)  # data dependency
    p.observe(a)
    return LitmusTest(
        "S",
        p.build(),
        lambda o, s, a=a.name: o[f"{a}@1"] == 1 and s.get("x") == 2,
        "S shape: the dependent store must not lose to the po-earlier store",
    )


# ---------------------------------------------------------------------------
# coherence shapes (forbidden everywhere)


@litmus("CoRR")
def corr() -> LitmusTest:
    p = ProgramBuilder("CoRR")
    t1 = p.thread()
    t1.store("x", 1)
    t2 = p.thread()
    a = t2.load("x")
    b = t2.load("x")
    p.observe(a, b)
    return LitmusTest(
        "CoRR",
        p.build(),
        lambda o, s, a=a.name, b=b.name: o[f"{a}@1"] == 1 and o[f"{b}@1"] == 0,
        "same-location reads must not go backwards",
    )


@litmus("CoWW")
def coww() -> LitmusTest:
    p = ProgramBuilder("CoWW")
    t1 = p.thread()
    t1.store("x", 1)
    t1.store("x", 2)
    return LitmusTest(
        "CoWW",
        p.build(),
        lambda o, s: s.get("x") == 1,
        "program-order same-location stores must not reorder",
    )


@litmus("CoRW1")
def corw1() -> LitmusTest:
    p = ProgramBuilder("CoRW1")
    t1 = p.thread()
    a = t1.load("x")
    t1.store("x", 1)
    p.observe(a)
    return LitmusTest(
        "CoRW1",
        p.build(),
        lambda o, s, a=a.name: o[f"{a}@0"] == 1,
        "a read must not observe its own po-later store",
    )


@litmus("CoWR")
def cowr() -> LitmusTest:
    p = ProgramBuilder("CoWR")
    t1 = p.thread()
    t1.store("x", 1)
    a = t1.load("x")
    t2 = p.thread()
    t2.store("x", 2)
    p.observe(a)
    return LitmusTest(
        "CoWR",
        p.build(),
        lambda o, s, a=a.name: o[f"{a}@0"] == 0,
        "a read after an own store must not see the initial value",
    )


# ---------------------------------------------------------------------------
# RMW shapes


@litmus("2xFAI")
def two_fai() -> LitmusTest:
    p = ProgramBuilder("2xFAI")
    regs = []
    for _ in range(2):
        t = p.thread()
        regs.append(t.fai("c", 1))
    p.observe(*regs)
    a, b = regs
    return LitmusTest(
        "2xFAI",
        p.build(),
        lambda o, s, a=a.name, b=b.name: o[f"{a}@0"] == o[f"{b}@1"],
        "two fetch-and-adds must not both read the same value",
    )


@litmus("CAS-race")
def cas_race() -> LitmusTest:
    p = ProgramBuilder("CAS-race")
    regs = []
    for _ in range(2):
        t = p.thread()
        regs.append(t.cas("l", 0, 1))
    p.observe(*regs)
    a, b = regs
    return LitmusTest(
        "CAS-race",
        p.build(),
        lambda o, s, a=a.name, b=b.name: o[f"{a}@0"] == 1 and o[f"{b}@1"] == 1,
        "two CAS(0->1) must not both succeed",
    )
