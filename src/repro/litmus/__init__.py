"""The litmus-test corpus, expected verdicts, and runner."""

from .catalog import LitmusTest, all_litmus_tests, get_litmus, litmus_names
from .expectations import ALLOWED, MODELS, allowed, expected_tests
from .parser import LitmusParseError, parse_litmus
from .runner import LitmusVerdict, run_litmus

__all__ = [
    "ALLOWED",
    "LitmusTest",
    "LitmusVerdict",
    "MODELS",
    "all_litmus_tests",
    "allowed",
    "expected_tests",
    "get_litmus",
    "litmus_names",
    "parse_litmus",
    "LitmusParseError",
    "run_litmus",
]
