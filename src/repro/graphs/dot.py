"""Graphviz export of execution graphs.

Produces DOT text with the conventional weak-memory layout: one
cluster per thread with po edges running downwards, rf edges (green,
dashed), immediate co edges (brown) and fr edges (red) across.  Handy
for inspecting error witnesses::

    from repro.graphs.dot import to_dot
    print(to_dot(result.execution_graphs[0]))
"""

from __future__ import annotations

from ..events import Event
from .graph import ExecutionGraph


def _node_id(ev: Event) -> str:
    if ev.is_initial:
        return f"init_{ev.index}"
    return f"e{ev.tid}_{ev.index}"


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(graph: ExecutionGraph, name: str = "execution") -> str:
    """Render the graph as Graphviz DOT text."""
    lines = [f'digraph "{_escape(name)}" {{', "  rankdir=TB;", "  node [shape=box, fontsize=10];"]

    inits = graph.init_events()
    if inits:
        lines.append("  subgraph cluster_init {")
        lines.append('    label="init"; style=dashed;')
        for ev in inits:
            lines.append(
                f'    {_node_id(ev)} [label="{_escape(repr(graph.label(ev)))}"];'
            )
        lines.append("  }")

    for tid in graph.thread_ids():
        lines.append(f"  subgraph cluster_t{tid} {{")
        lines.append(f'    label="thread {tid}";')
        events = graph.thread_events(tid)
        for ev in events:
            lines.append(
                f'    {_node_id(ev)} [label="{_escape(repr(graph.label(ev)))}"];'
            )
        for a, b in zip(events, events[1:]):  # po, kept inside the cluster
            lines.append(f"    {_node_id(a)} -> {_node_id(b)};")
        lines.append("  }")

    for read, write in graph.rf_map().items():
        lines.append(
            f'  {_node_id(write)} -> {_node_id(read)} '
            f'[color=darkgreen, style=dashed, label="rf", fontsize=8];'
        )
    for loc in graph.locations():
        order = graph.co_order(loc)
        for a, b in zip(order, order[1:]):
            lines.append(
                f'  {_node_id(a)} -> {_node_id(b)} '
                f'[color=brown, label="co", fontsize=8, constraint=false];'
            )
    from .derived import fr

    for a, b in fr(graph).pairs():
        lines.append(
            f'  {_node_id(a)} -> {_node_id(b)} '
            f'[color=red, style=dotted, label="fr", fontsize=8, constraint=false];'
        )
    lines.append("}")
    return "\n".join(lines)
