"""Prefix closures and revisit restriction.

Two different closures matter for exploration:

* the **causal prefix** of an event decides which reads a newly added
  write may *backward-revisit* (a read inside the prefix can never be
  revisited: the write's existence already depends on it).  Which edges
  enter this closure is *model-specific*: porf (po ∪ rf) for
  porf-acyclic models, a dependency-based relation for hardware models
  — this distinction is the heart of HMC;

* the **replay closure** decides which events survive a revisit: the
  kept graph must contain every po-predecessor and every rf source of a
  kept event so that threads can deterministically re-execute it.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..events import Event
from .graph import ExecutionGraph

#: Maps an event to the events that must causally precede it.
PredFn = Callable[[ExecutionGraph, Event], Iterable[Event]]


def closure(
    graph: ExecutionGraph, roots: Iterable[Event], preds: PredFn
) -> set[Event]:
    """The set of events reachable from ``roots`` going backwards
    through ``preds`` (roots included)."""
    out: set[Event] = set()
    stack = list(roots)
    while stack:
        ev = stack.pop()
        if ev in out:
            continue
        out.add(ev)
        stack.extend(p for p in preds(graph, ev) if p not in out)
    return out


def porf_preds(graph: ExecutionGraph, ev: Event) -> list[Event]:
    """Predecessors under po ∪ rf (the GenMC causal prefix)."""
    out: list[Event] = []
    prev = ev.po_prev()
    if prev is not None and prev in graph:
        out.append(prev)
    if graph.label(ev).is_read:
        src = graph.rf(ev)
        if not src.is_initial:
            out.append(src)
    return out


def porf_prefix(graph: ExecutionGraph, ev: Event) -> set[Event]:
    return closure(graph, [ev], porf_preds)


def replay_closure(graph: ExecutionGraph, roots: Iterable[Event]) -> set[Event]:
    """Closure under po-predecessor and rf-source: the smallest
    restriction containing ``roots`` that threads can re-execute."""
    return closure(graph, roots, porf_preds)


def revisit_kept_set(
    graph: ExecutionGraph, write: Event, read: Event
) -> set[Event]:
    """Events surviving a backward revisit of ``read`` by ``write``.

    Following GenMC/HMC, the restricted graph keeps (a) everything added
    no later than the read and (b) the replay closure of the revisiting
    write; everything else — events added after the read that the write
    does not causally need — is deleted and will be re-executed.
    """
    read_stamp = graph.stamp(read)
    roots = [e for e in graph.events() if graph.stamp(e) <= read_stamp]
    roots.append(write)
    # The whole kept set must be closed under po-predecessor and
    # rf-source: after earlier revisits a low-stamp read may legally
    # read from a higher-stamp write, which must then survive too.
    return replay_closure(graph, roots)


def deleted_set(
    graph: ExecutionGraph, write: Event, read: Event
) -> set[Event]:
    """The events a backward revisit of ``read`` by ``write`` removes."""
    kept = revisit_kept_set(graph, write, read)
    return {e for e in graph.events() if e not in kept}
