"""Canonical forms of execution graphs.

Two complete execution graphs describe the same behaviour iff they have
the same events with the same labels, the same reads-from map, and the
same per-location coherence orders.  :func:`canonical_key` turns a
graph into a hashable value with exactly that equality, which the
explorer uses (a) to assert optimality for porf-acyclic models and
(b) to suppress residual duplicates for load-buffering-capable models.
"""

from __future__ import annotations

from ..events import Event
from .graph import ExecutionGraph


def _event_key(graph: ExecutionGraph, ev: Event):
    """Identity of an event that is stable across construction orders:
    initialisation writes are named by location, not by creation slot."""
    if ev.is_initial:
        return ("init", graph.label(ev).location)
    return (ev.tid, ev.index)


def canonical_key(graph: ExecutionGraph) -> tuple:
    """A hashable canonical form of the graph's behaviour.

    Locations that were never written (beyond initialisation) carry no
    coherence information and are omitted, so graphs built by different
    front ends (explorer vs brute force) compare equal.
    """
    threads = []
    for tid in graph.thread_ids():
        rows = []
        for ev in graph.thread_events(tid):
            lab = graph.label(ev)
            rf = _event_key(graph, graph.rf(ev)) if lab.is_read else None
            rows.append((repr(lab), rf))
        threads.append((tid, tuple(rows)))
    co = tuple(
        (loc, tuple(_event_key(graph, w) for w in order))
        for loc in graph.locations()
        for order in [
            [w for w in graph.co_order(loc) if not w.is_initial]
        ]
        if order
    )
    return (tuple(threads), co)


def rf_key(graph: ExecutionGraph) -> tuple:
    """Canonical form ignoring coherence (useful for rf-equivalence)."""
    threads, _co = canonical_key(graph)
    return threads


def final_state(graph: ExecutionGraph) -> tuple[tuple[str, int], ...]:
    """Final memory state: the coherence-last written value for every
    location that was actually written (untouched locations carry no
    information and are omitted), as a sorted hashable tuple."""
    return tuple(
        sorted(
            (loc, graph.final_value(loc))
            for loc in graph.locations()
            if any(not w.is_initial for w in graph.co_order(loc))
        )
    )
