"""Incremental consistency machinery: mode flags, the differential
cross-check, and a Pearce–Kelly-style incremental acyclicity checker.

The exploration core copies a graph per candidate extension and every
copy differs from its parent by exactly one event, so consistency
checks dominated exploration cost by recomputing derived relations and
re-running a full cycle search on near-identical graphs.  This module
holds the pieces that turn those checks into per-delta work:

* **Flags.**  ``REPRO_INCREMENTAL`` (default on) enables incremental
  maintenance of derived relations and acyclicity orders;
  ``REPRO_CHECK_INCREMENTAL=1`` arms *differential* mode, in which
  every incrementally produced value is recomputed from scratch and
  compared — the correctness harness CI runs.  Both are re-read from
  the environment at the start of every :class:`Explorer` run (so the
  environment is authoritative per run, including inside pool
  workers); tests flip them directly via :func:`set_incremental` /
  :func:`set_differential`.

* **Acyclicity.**  :func:`acyclic_check` maintains an online
  topological order per ``(graph, relation family)`` in the graph's
  auxiliary cache.  A family names the :func:`graph_cached` components
  whose union the axiom requires acyclic; on each check only the edges
  inserted since the stored order's version are verified, with new
  nodes placed between the ordinals of their constraining neighbours.
  When an inserted edge ``(x, y)`` contradicts the stored order, the
  checker does the Pearce–Kelly affected-region repair (*A dynamic
  topological sort algorithm for directed acyclic graphs*, JEA 2006):
  the nodes forward-reachable from ``y`` within the ordinal window up
  to ``x`` are shifted to just after ``x``, preserving their relative
  order — which keeps every already-valid edge valid, so one pass over
  the inserted edges restores a topological order or proves the edge
  closes a cycle.  The union's adjacency rides along in the checker
  state (extended copy-on-write per delta) to power the reachability
  walk.  A genuine cycle — or exhausted float precision in the ordinal
  arithmetic — falls back to the full DFS of
  :meth:`Relation.is_acyclic` and rebuilds the order, so verdicts —
  and the :meth:`Relation.find_cycle` explanations diagnosis derives
  from the built relation — are unchanged.

Profile counters (live under ``--stats``): ``acyclic:incremental_hit``
when a stored order absorbs the inserted edges,``acyclic:fallback``
when it cannot and the full DFS runs instead, and (from
:mod:`repro.graphs.derived`) ``relation:<name>:incremental_hit`` when
a cached relation is extended rather than recomputed.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable

from ..obs.profile import _STATE as _PROFILE
from ..relations import Relation
from .graph import ExecutionGraph


class IncrementalMismatch(AssertionError):
    """Differential mode found an incremental value that disagrees
    with the from-scratch computation — always a bug, never a user
    error."""


class _Flags:
    __slots__ = ("enabled", "differential")

    def __init__(self) -> None:
        self.enabled = True
        self.differential = False


_FLAGS = _Flags()

_OFF = ("0", "false", "no", "off")
_ON = ("1", "true", "yes", "on")


def configure_from_env() -> None:
    """Re-read both mode flags from the environment (done at the start
    of every exploration run, so spawned workers and subprocess tests
    pick the modes up without extra plumbing)."""
    _FLAGS.enabled = (
        os.environ.get("REPRO_INCREMENTAL", "1").strip().lower() not in _OFF
    )
    _FLAGS.differential = (
        os.environ.get("REPRO_CHECK_INCREMENTAL", "0").strip().lower() in _ON
    )


configure_from_env()


def incremental_enabled() -> bool:
    return _FLAGS.enabled


def differential_enabled() -> bool:
    return _FLAGS.differential


def set_incremental(flag: bool) -> None:
    """Programmatic override of ``REPRO_INCREMENTAL`` (process-local;
    the next observed run re-reads the environment)."""
    _FLAGS.enabled = bool(flag)


def set_differential(flag: bool) -> None:
    """Programmatic override of ``REPRO_CHECK_INCREMENTAL``."""
    _FLAGS.differential = bool(flag)


def check_equal(name: str, incremental, scratch) -> None:
    """Differential-mode assertion: raise :class:`IncrementalMismatch`
    (with a bounded sample of the disagreement) unless the values are
    equal.  Works for relations and event sets alike."""
    if incremental == scratch:
        return
    if isinstance(incremental, Relation) and isinstance(scratch, Relation):
        inc_pairs, ref_pairs = set(incremental.pairs()), set(scratch.pairs())
        missing = sorted(map(repr, ref_pairs - inc_pairs))[:6]
        extra = sorted(map(repr, inc_pairs - ref_pairs))[:6]
    else:
        ref_set, inc_set = set(scratch), set(incremental)
        missing = sorted(map(repr, ref_set - inc_set))[:6]
        extra = sorted(map(repr, inc_set - ref_set))[:6]
    raise IncrementalMismatch(
        f"incremental {name!r} diverged from scratch recomputation: "
        f"missing={missing} extra={extra}"
    )


# -- incremental acyclicity --------------------------------------------------


class AcyclicFamily:
    """A named acyclicity obligation: the union of ``components`` (all
    :func:`graph_cached` wrappers with registered delta functions) must
    be acyclic.  ``build`` materialises the union for full checks and
    diagnosis."""

    __slots__ = ("name", "components", "build")

    def __init__(
        self,
        name: str,
        components: tuple,
        build: Callable[[ExecutionGraph], Relation],
    ) -> None:
        for component in components:
            if getattr(component, "delta_pairs", None) is None:
                raise TypeError(
                    f"acyclic family {name!r}: component "
                    f"{getattr(component, '__name__', component)!r} has no "
                    "registered delta function"
                )
        self.name = name
        self.components = components
        self.build = build


def acyclic_check(graph: ExecutionGraph, family: AcyclicFamily) -> bool:
    """Is the family's union acyclic on ``graph``?

    Verdicts are identical to ``family.build(graph).is_acyclic()``;
    incrementality only changes the cost.  Acyclic graphs store their
    (version-tagged) topological order in ``graph._aux`` so the next
    check — typically on a child copy one event larger — verifies only
    the inserted edges.  Cyclic graphs store nothing: the exploration
    discards them.
    """
    if not _FLAGS.enabled:
        return family.build(graph).is_acyclic()
    key = "acyc:" + family.name
    version = graph._version
    state = graph._aux.get(key)
    reg = _PROFILE.registry
    if state is not None:
        verdict = None
        if state[0] == version:
            # an order exists for this exact version: proven acyclic
            verdict = True
        else:
            deltas = graph.deltas_since(state[0])
            if deltas is not None:
                added: list[tuple] = []
                for delta in deltas:
                    for component in family.components:
                        added.extend(component.delta_pairs(graph, delta))
                if not added:
                    # nothing relevant inserted: re-tag the state
                    graph._aux[key] = (
                        version, state[1], state[2], state[3], state[4]
                    )
                    verdict = True
                else:
                    pending = state[4] + tuple(added)
                    adjacency = _Adjacency(state[3], pending)
                    outcome, new_order, new_top = _place_and_verify(
                        state[1], state[2], added, adjacency
                    )
                    if outcome is None:
                        # Ordinal float precision exhausted (deep
                        # lineages subdivide the same interval over
                        # and over): renumber with integer spacing
                        # and retry before surrendering to a rebuild.
                        spread = {
                            node: float(position)
                            for position, node in enumerate(
                                sorted(state[1], key=state[1].__getitem__)
                            )
                        }
                        outcome, new_order, new_top = _place_and_verify(
                            spread, float(len(spread)), added, adjacency
                        )
                    if outcome is True:
                        if adjacency.rel is not None:
                            # a repair walk materialised the extended
                            # union: store it with an empty pending tail
                            graph._aux[key] = (
                                version, new_order, new_top, adjacency.rel, ()
                            )
                        elif len(pending) > 128:
                            # keep the pending tail bounded so walks (and
                            # lineage memory) stay O(recent deltas)
                            graph._aux[key] = (
                                version, new_order, new_top,
                                state[3].extended(pending), (),
                            )
                        else:
                            graph._aux[key] = (
                                version, new_order, new_top, state[3], pending
                            )
                        verdict = True
                    elif outcome is False:
                        # The repair walk found a path back to an inserted
                        # edge's source: the new edges close a cycle in the
                        # exact union, so the full DFS would reject too —
                        # no need to run it.
                        if reg is not None:
                            reg.inc("acyclic:incremental_hit")
                        if _FLAGS.differential and family.build(graph).is_acyclic():
                            raise IncrementalMismatch(
                                f"incremental acyclicity of {family.name!r} "
                                "found a cycle; full DFS says acyclic"
                            )
                        return False
                    elif reg is not None:
                        reg.inc("acyclic:fallback")
        if verdict:
            if reg is not None:
                reg.inc("acyclic:incremental_hit")
            if _FLAGS.differential and not family.build(graph).is_acyclic():
                raise IncrementalMismatch(
                    f"incremental acyclicity of {family.name!r} said "
                    "acyclic; full DFS found a cycle"
                )
            return True
    rel = family.build(graph)
    # DFS roots in stamp (addition) order: ties in the resulting order
    # lean towards the order events entered the graph, which is the
    # order future edges overwhelmingly point in — so child copies'
    # inserted edges usually respect the stored order and the
    # incremental path above keeps absorbing them without repair work.
    stamp = graph._stamp
    universe = sorted(rel.nodes(), key=lambda node: stamp.get(node, -1))
    ordered = rel.topological_order(universe)
    if ordered is None:
        return False
    order = {
        node: float(position) for position, node in enumerate(ordered)
    }
    graph._aux[key] = (version, order, float(len(order)), rel, ())
    return True


class _Adjacency:
    """Lazy merged adjacency for repair walks: the stored union plus
    the pairs inserted since it was last materialised.  The extension
    (a copy-on-write :meth:`Relation.extended`) happens on the first
    :meth:`successors` call — checks that absorb their deltas without
    a repair never pay for it, they just append to the pending tail."""

    __slots__ = ("base", "pending", "rel")

    def __init__(self, base: Relation, pending: tuple) -> None:
        self.base = base
        self.pending = pending
        self.rel: Relation | None = None

    def successors(self, node) -> Iterable:
        if self.rel is None:
            self.rel = (
                self.base.extended(self.pending)
                if self.pending
                else self.base
            )
        return self.rel._succ.get(node, ())


def _place_and_verify(
    order: dict, top: float, pairs: Iterable[tuple], adjacency: "_Adjacency"
) -> tuple:
    """Absorb ``pairs`` into a copy of the topological order.

    Endpoints not yet in the order are placed in first-appearance
    order: unconstrained nodes go at the end, nodes with both bounds
    placed midway between their tightest bounds, and nodes whose
    bounds conflict *at* their lower bound (the subsequent repair pass
    shifts their forward set out of the way).  A verification pass
    then checks every pair against the resulting ordinals; a violated
    pair ``(x, y)`` triggers :func:`_shift_after` — the Pearce–Kelly
    affected-region repair over ``adjacency`` (the family union
    *including* ``pairs``).  Because the repair only ever moves a node
    rightwards past edges the walk proved safe, already-valid edges
    stay valid, so one pass suffices — and if the pass completes, the
    final order is a valid topological order of the whole union,
    certifying acyclicity.

    Returns a triple: ``(True, order, top)`` with the repaired order,
    ``(False, None, None)`` when an inserted edge provably closes a
    cycle in the union, or ``(None, None, None)`` when the ordinal
    arithmetic runs out of float precision and the caller must fall
    back to the full DFS.
    """
    pairs = list(pairs)
    if not pairs:
        return True, order, top
    # one grouping pass: fresh endpoints (insertion-ordered) with the
    # in-/out-neighbours each is constrained by
    missing: dict = {}
    for a, b in pairs:
        if a not in order:
            entry = missing.get(a)
            if entry is None:
                entry = missing[a] = ([], [])
            entry[1].append(b)
        if b not in order:
            entry = missing.get(b)
            if entry is None:
                entry = missing[b] = ([], [])
            entry[0].append(a)
    copied = False
    if missing:
        order = dict(order)
        copied = True
        get = order.get
        for node, (ins, outs) in missing.items():
            lo: float | None = None
            hi: float | None = None
            for a in ins:
                if a != node:
                    val = get(a)
                    if val is not None and (lo is None or val > lo):
                        lo = val
            for b in outs:
                if b != node:
                    val = get(b)
                    if val is not None and (hi is None or val < hi):
                        hi = val
            if hi is None:
                top += 1.0
                order[node] = top
            elif lo is None:
                order[node] = hi - 1.0
            elif lo < hi:
                order[node] = (lo + hi) * 0.5
            else:
                # Conflicting bounds: land on the lower bound; the
                # repair pass below shifts the offending successors
                # (and this node, off its predecessor) rightwards.
                order[node] = lo
    get = order.get
    for a, b in pairs:
        ord_a = get(a)
        ord_b = get(b)
        if ord_a is None or ord_b is None:
            return None, None, None
        if ord_a >= ord_b:
            if not copied:
                order = dict(order)
                copied = True
            outcome, top = _shift_after(order, top, adjacency, a, b)
            if outcome is not True:
                return outcome, None, None
            get = order.get
    return True, order, top


def _shift_after(
    order: dict, top: float, adjacency: "_Adjacency", x, y
) -> tuple:
    """Repair the violated edge ``(x, y)`` (``order[x] >= order[y]``)
    by moving ``y``'s forward-reachable set after ``x`` in place.

    The affected region is every node reachable from ``y`` through
    the union whose ordinal does not exceed ``x``'s; reaching ``x``
    itself proves the edge closes a cycle.  Otherwise the region is
    re-placed, relative order preserved, into the open ordinal
    interval between ``x`` and the next node outside the region — by
    construction that interval is empty, so no collisions.  Returns
    ``(True, top)`` on success (with ``top`` possibly raised),
    ``(False, top)`` on a proven cycle, or ``(None, top)`` when
    interval subdivision exhausts float precision.
    """
    limit = order[x]
    region: set = set()
    stack = [y]
    while stack:
        node = stack.pop()
        if node in region:
            continue
        if node == x:
            return False, top  # the new edge closes a cycle
        region.add(node)
        for nxt in adjacency.successors(node):
            if nxt not in region:
                val = order.get(nxt)
                if val is not None and val <= limit:
                    stack.append(nxt)
    next_hi: float | None = None
    for node, val in order.items():
        if val > limit and node not in region and (
            next_hi is None or val < next_hi
        ):
            next_hi = val
    ranked = sorted(region, key=order.__getitem__)
    if next_hi is None:
        for node in ranked:
            top += 1.0
            order[node] = top
        return True, top
    step = (next_hi - limit) / (len(region) + 1)
    val = limit
    for node in ranked:
        val += step
        if not limit < val < next_hi:
            return None, top  # float precision exhausted
        order[node] = val
    return True, top


def coherent_check(
    graph: ExecutionGraph, name: str, hb: Relation, eco_rel: Relation
) -> bool:
    """Is ``hb ; eco`` irreflexive on ``graph`` (the COH obligation)?

    Verdicts are identical to scanning every ``hb`` pair, but on a
    live delta log only the *fresh* events need checking: every event
    appended since the last verdict has no outgoing ``po``/``sw`` edge
    to an older event, so every new ``hb`` pair ends at a fresh event,
    and every new ``eco`` pair touches the delta event.  A violation
    ``a ->hb b ->eco a`` therefore involves a fresh ``b`` — caught by
    walking ``b``'s ``eco`` successors and asking whether any of them
    ``hb``-reaches ``b``.  ``co`` reorderings ride along: the inserted
    write appears as its own ``event`` delta in the same range.

    Passing graphs store the verified version (as a 1-tuple — the
    ``_aux`` protocol keys delta-log trimming off ``entry[0]``) under
    ``"coh:" + name`` in ``graph._aux``; failing graphs store nothing
    (they are discarded).
    """
    key = "coh:" + name
    version = graph._version
    state = graph._aux.get(key) if _FLAGS.enabled else None
    if state is not None:
        verdict = None
        if state[0] == version:
            verdict = True
        else:
            deltas = graph.deltas_since(state[0])
            if deltas is not None:
                verdict = True
                hb_succ = hb._succ
                eco_succ = eco_rel._succ
                for delta in deltas:
                    if delta[0] == "co":
                        continue  # its write is an "event" delta too
                    ev = delta[1]
                    for x in eco_succ.get(ev, ()):
                        peers = hb_succ.get(x)
                        if peers is not None and ev in peers:
                            verdict = False
                            break
                    if verdict is False:
                        break
        if verdict is not None:
            reg = _PROFILE.registry
            if reg is not None:
                reg.inc("coherent:incremental_hit")
            if _FLAGS.differential:
                full = all(
                    (b, a) not in eco_rel for a, b in hb.pairs()
                )
                if full != verdict:
                    raise IncrementalMismatch(
                        f"incremental COH of {name!r} said {verdict}; "
                        f"full scan says {full}"
                    )
            if verdict:
                graph._aux[key] = (version,)
            return verdict
    ok = all((b, a) not in eco_rel for a, b in hb.pairs())
    if ok:
        graph._aux[key] = (version,)
    return ok
