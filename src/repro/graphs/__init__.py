"""Execution graphs, their derived relations and prefix machinery."""

from . import derived, dot
from .graph import ExecutionGraph, GraphError
from .hashing import canonical_key, final_state, rf_key
from .prefix import (
    closure,
    deleted_set,
    porf_prefix,
    porf_preds,
    replay_closure,
    revisit_kept_set,
)

__all__ = [
    "ExecutionGraph",
    "GraphError",
    "canonical_key",
    "closure",
    "deleted_set",
    "derived",
    "final_state",
    "porf_prefix",
    "porf_preds",
    "replay_closure",
    "revisit_kept_set",
    "rf_key",
]
