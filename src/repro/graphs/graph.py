"""Execution graphs.

An execution graph is the semantic object stateless model checking
enumerates: a set of labelled events together with

* ``po``   — program order (implicit: events of one thread are ordered
  by index; initialisation writes precede everything),
* ``rf``   — reads-from, one source write per read,
* ``co``   — coherence, a total order per location over same-location
  writes, kept as an explicit list with the initialisation write first.

The graph also records the *stamp* (addition order) of every event;
stamps drive the revisit logic of the exploration algorithm.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..events import (
    Event,
    InitLabel,
    Label,
    Loc,
    ReadLabel,
    Value,
    WriteLabel,
    init_event,
)


class GraphError(Exception):
    """Raised on structurally invalid graph manipulation."""


class ExecutionGraph:
    """A (possibly partial) execution graph.

    The graph is mutable while an exploration extends it and is copied
    (cheaply: flat dicts of immutable values) whenever the exploration
    branches.
    """

    __slots__ = (
        "_labels",
        "_threads",
        "_rf",
        "_co",
        "_stamp",
        "_next_stamp",
        "_init_by_loc",
        "_version",
        "_derived",
        "_aux",
        "_deltas",
        "_delta_base",
        "__weakref__",
    )

    def __init__(self, locations: Iterable[Loc] = ()) -> None:
        self._labels: dict[Event, Label] = {}
        self._threads: dict[int, list[Event]] = {}
        self._rf: dict[Event, Event] = {}
        self._co: dict[Loc, list[Event]] = {}
        self._stamp: dict[Event, int] = {}
        self._next_stamp = 0
        self._init_by_loc: dict[Loc, Event] = {}
        #: monotonic lineage version: bumped on every mutation and
        #: *inherited* by copies, so a cache entry tagged with a version
        #: can never be mistaken for fresh after a mutate-after-copy
        self._version = 0
        #: per-graph derived-relation cache: name -> (version, value);
        #: handed to copies so children extend instead of recompute
        self._derived: dict = {}
        #: auxiliary incremental state (topological orders of the
        #: acyclicity checker, cat evaluation environments):
        #: key -> (version, payload); handed to copies like _derived
        self._aux: dict = {}
        #: typed mutation log: one record per version bump, so a cache
        #: entry at version v is brought current by replaying
        #: ``deltas_since(v)``.  Records are ("init", ev) for a new
        #: initialisation write, ("event", ev) for an appended event
        #: (its label/rf are read off the graph at replay time) and
        #: ("co", ev) for a write's coherence insertion.
        self._deltas: list = []
        #: version of the oldest replayable point: the log covers
        #: versions ``_delta_base .. _version``
        self._delta_base = 0
        for loc in locations:
            self.ensure_location(loc)

    # -- basic structure ---------------------------------------------------

    # -- mutation log ------------------------------------------------------

    def _record_delta(self, delta: tuple) -> None:
        self._version += 1
        self._deltas.append(delta)

    def _reset_deltas(self) -> None:
        """Cut the log after a mutation incremental updates can't
        describe (rf redirection, bulk construction): caches tagged
        with older versions become unreachable by replay."""
        self._deltas.clear()
        self._delta_base = self._version

    def deltas_since(self, version: int) -> list | None:
        """The mutation records after ``version``, oldest first — or
        None when the log no longer reaches back that far (including a
        ``version`` from a different lineage)."""
        if version < self._delta_base or version > self._version:
            return None
        return self._deltas[version - self._delta_base:]

    def ensure_location(self, loc: Loc) -> Event:
        """Make sure ``loc`` has its initialisation write; return it."""
        ev = self._init_by_loc.get(loc)
        if ev is not None:
            return ev
        ev = init_event(len(self._init_by_loc))
        self._record_delta(("init", ev))
        self._init_by_loc[loc] = ev
        self._labels[ev] = InitLabel(loc=loc, value=0)
        self._stamp[ev] = self._next_stamp
        self._next_stamp += 1
        self._co[loc] = [ev]
        return ev

    def init_write(self, loc: Loc) -> Event:
        return self.ensure_location(loc)

    def copy(self) -> "ExecutionGraph":
        dup = ExecutionGraph.__new__(ExecutionGraph)
        dup._labels = dict(self._labels)
        dup._threads = {tid: list(evs) for tid, evs in self._threads.items()}
        dup._rf = dict(self._rf)
        dup._co = {loc: list(ws) for loc, ws in self._co.items()}
        dup._stamp = dict(self._stamp)
        dup._next_stamp = self._next_stamp
        dup._init_by_loc = dict(self._init_by_loc)
        # the child keeps the parent's lineage version and cache: its
        # first mutation bumps past every tagged entry, and the delta
        # log lets cached values be *extended* rather than recomputed.
        # Cached values are immutable-by-convention, so sharing them is
        # safe; the entry tuples themselves are replaced, never mutated.
        dup._version = self._version
        dup._derived = dict(self._derived)
        dup._aux = dict(self._aux)
        base, deltas = self._delta_base, self._deltas
        if deltas:
            # trim records older than the oldest cached value: nothing
            # can ever replay from before it
            oldest = min(
                (entry[0] for entry in dup._derived.values()),
                default=self._version,
            )
            if dup._aux:
                oldest = min(
                    oldest, min(entry[0] for entry in dup._aux.values())
                )
            if oldest > base:
                deltas = deltas[oldest - base:]
                base = oldest
        dup._deltas = list(deltas)
        dup._delta_base = base
        return dup

    @classmethod
    def from_parts(
        cls,
        thread_labels: dict[int, list[Label]],
        rf_map: dict[Event, Event],
        co_orders: dict[Loc, list[Event]],
    ) -> "ExecutionGraph":
        """Assemble a complete graph directly from its components.

        Used by the herd-style brute-force baseline, which enumerates
        (rf, co) candidates instead of exploring incrementally.
        ``co_orders`` lists non-initial writes per location, in
        coherence order; initialisation writes are created here.
        """
        graph = cls()
        for labels in thread_labels.values():
            for lab in labels:
                loc = lab.location
                if loc is not None:
                    graph.ensure_location(loc)
        for loc in co_orders:
            graph.ensure_location(loc)
        for tid in sorted(thread_labels):
            for index, lab in enumerate(thread_labels[tid]):
                ev = Event(tid, index)
                graph._labels[ev] = lab
                graph._threads.setdefault(tid, []).append(ev)
                graph._stamp[ev] = graph._next_stamp
                graph._next_stamp += 1
        for loc, writes in co_orders.items():
            graph._co[loc] = [graph._init_by_loc[loc], *writes]
        for read, write in rf_map.items():
            if read not in graph._labels or write not in graph._labels:
                raise GraphError(f"rf pair ({read}, {write}) not in graph")
            graph._rf[read] = write
        # the bulk construction above bypassed the mutation log; one
        # final bump + log reset keeps version/cache bookkeeping honest
        graph._version += 1
        graph._reset_deltas()
        return graph

    # -- event addition ------------------------------------------------------

    def _append_event(self, tid: int, label: Label) -> Event:
        thread = self._threads.setdefault(tid, [])
        ev = Event(tid, len(thread))
        self._record_delta(("event", ev))
        thread.append(ev)
        self._labels[ev] = label
        self._stamp[ev] = self._next_stamp
        self._next_stamp += 1
        return ev

    def add_read(self, tid: int, label: ReadLabel, rf: Event) -> Event:
        """Append a read to ``tid`` reading from the write ``rf``."""
        self.ensure_location(label.loc)
        rf_label = self._labels.get(rf)
        if not isinstance(rf_label, WriteLabel) or rf_label.loc != label.loc:
            raise GraphError(f"invalid rf source {rf} for read of {label.loc}")
        ev = self._append_event(tid, label)
        self._rf[ev] = rf
        return ev

    def add_write(self, tid: int, label: WriteLabel, co_index: int | None = None) -> Event:
        """Append a write, inserting it at ``co_index`` in its location's
        coherence order (default: coherence-maximal).  Index 0 is the
        initialisation write and is not a legal position."""
        self.ensure_location(label.loc)
        order = self._co[label.loc]
        if co_index is None:
            co_index = len(order)
        if not 1 <= co_index <= len(order):
            raise GraphError(f"bad coherence index {co_index} for {label.loc}")
        ev = self._append_event(tid, label)
        self._record_delta(("co", ev))
        order.insert(co_index, ev)
        return ev

    def add_fence(self, tid: int, label: Label) -> Event:
        return self._append_event(tid, label)

    def set_rf(self, read: Event, write: Event) -> None:
        """Redirect an existing read to a different source write."""
        if read not in self._rf:
            raise GraphError(f"{read} is not a read of this graph")
        # redirecting rf rewrites history (old pairs disappear), which
        # the extend-only delta log cannot express: cut the log
        self._version += 1
        self._reset_deltas()
        self._rf[read] = write

    # -- accessors -------------------------------------------------------------

    def __contains__(self, ev: Event) -> bool:
        return ev in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def label(self, ev: Event) -> Label:
        return self._labels[ev]

    def stamp(self, ev: Event) -> int:
        return self._stamp[ev]

    def events(self) -> Iterator[Event]:
        return iter(self._labels)

    def events_by_stamp(self) -> list[Event]:
        return sorted(self._labels, key=self._stamp.__getitem__)

    def thread_ids(self) -> list[int]:
        return sorted(self._threads)

    def thread_events(self, tid: int) -> list[Event]:
        return list(self._threads.get(tid, ()))

    def thread_size(self, tid: int) -> int:
        return len(self._threads.get(tid, ()))

    def last_event(self, tid: int) -> Event | None:
        thread = self._threads.get(tid)
        return thread[-1] if thread else None

    def init_events(self) -> list[Event]:
        return list(self._init_by_loc.values())

    def locations(self) -> list[Loc]:
        return sorted(self._co)

    def reads(self, loc: Loc | None = None) -> list[Event]:
        return [
            ev
            for ev, lab in self._labels.items()
            if isinstance(lab, ReadLabel) and (loc is None or lab.loc == loc)
        ]

    def writes(self, loc: Loc | None = None) -> list[Event]:
        if loc is not None:
            return list(self._co.get(loc, ()))
        return [w for order in self._co.values() for w in order]

    def rf(self, read: Event) -> Event:
        return self._rf[read]

    def rf_map(self) -> dict[Event, Event]:
        return dict(self._rf)

    def readers_of(self, write: Event) -> list[Event]:
        return [r for r, w in self._rf.items() if w == write]

    def co_order(self, loc: Loc) -> list[Event]:
        return list(self._co.get(loc, ()))

    def co_index(self, write: Event) -> int:
        lab = self._labels[write]
        order = self._co[lab.loc]  # type: ignore[union-attr]
        return order.index(write)

    def value_of(self, read: Event) -> Value:
        """The value the read observes (its rf source's written value)."""
        src = self._labels[self._rf[read]]
        assert isinstance(src, WriteLabel)
        return src.value

    def read_values(self, tid: int) -> list[Value]:
        """Values returned, in program order, by the reads of ``tid``."""
        return [
            self.value_of(ev)
            for ev in self._threads.get(tid, ())
            if isinstance(self._labels[ev], ReadLabel)
        ]

    def final_value(self, loc: Loc) -> Value:
        """Value of the coherence-last write to ``loc``."""
        order = self._co.get(loc)
        if not order:
            return 0
        lab = self._labels[order[-1]]
        assert isinstance(lab, WriteLabel)
        return lab.value

    def exclusive_pair(self, ev: Event) -> Event | None:
        """For an exclusive write, its exclusive read (and vice versa)."""
        lab = self._labels[ev]
        if isinstance(lab, WriteLabel) and lab.exclusive:
            prev = ev.po_prev()
            if prev is not None and prev in self._labels:
                plab = self._labels[prev]
                if isinstance(plab, ReadLabel) and plab.exclusive:
                    return prev
            return None
        if isinstance(lab, ReadLabel) and lab.exclusive:
            nxt = ev.po_next()
            if nxt in self._labels:
                nlab = self._labels[nxt]
                if isinstance(nlab, WriteLabel) and nlab.exclusive:
                    return nxt
        return None

    # -- restriction -------------------------------------------------------------

    def restricted(self, keep: Iterable[Event]) -> "ExecutionGraph":
        """The subgraph induced by ``keep`` (plus all init events).

        ``keep`` must be po-prefix-closed per thread and rf-closed; this
        is validated, since a violation indicates a bug in the caller's
        prefix computation.
        """
        keep_set = set(keep) | set(self._init_by_loc.values())
        dup = ExecutionGraph.__new__(ExecutionGraph)
        dup._labels = {}
        dup._threads = {}
        dup._rf = {}
        dup._co = {}
        dup._stamp = {}
        # a restriction is a different graph: caches start empty, and
        # the version stays on the parent's monotonic lineage
        dup._version = self._version
        dup._derived = {}
        dup._aux = {}
        dup._deltas = []
        dup._delta_base = dup._version
        dup._init_by_loc = dict(self._init_by_loc)
        by_thread: dict[int, list[Event]] = {}
        for ev in keep_set:
            if ev not in self._labels:
                raise GraphError(f"restriction keeps unknown event {ev}")
            if not ev.is_initial:
                by_thread.setdefault(ev.tid, []).append(ev)
        for ev in sorted(keep_set, key=self._stamp.__getitem__):
            dup._labels[ev] = self._labels[ev]
            dup._stamp[ev] = self._stamp[ev]
            if ev in self._rf:
                src = self._rf[ev]
                if src not in keep_set:
                    raise GraphError(f"restriction drops rf source of {ev}")
                dup._rf[ev] = src
        for tid, events in by_thread.items():
            events.sort(key=lambda e: e.index)
            if events[-1].index != len(events) - 1:
                raise GraphError(
                    f"restriction is not po-closed in thread {tid}"
                )
            dup._threads[tid] = events
        for loc, order in self._co.items():
            dup._co[loc] = [w for w in order if w in keep_set]
        dup._next_stamp = self._next_stamp
        return dup

    def touch(self, ev: Event) -> None:
        """Move an event's stamp to the end, as if it was just added.

        Backward revisits re-stamp the revisited read: conceptually the
        read is re-added reading from the new write, which is what makes
        it eligible for further revisits later (completeness for chains
        of revisits)."""
        self._stamp[ev] = self._next_stamp
        self._next_stamp += 1

    def renumber_stamps(self) -> None:
        """Compact stamps to 0..n-1 preserving their relative order."""
        for new, ev in enumerate(self.events_by_stamp()):
            self._stamp[ev] = new
        self._next_stamp = len(self._labels)

    # -- pickling -----------------------------------------------------------------
    #
    # Graphs ride through process pools (subtree dispatch, execution
    # records).  The derived-relation cache, auxiliary incremental
    # state and mutation log are process-local derived data — cheap to
    # rebuild and potentially holding unpicklable payloads (profiler
    # references inside cat environments) — so pickles carry only the
    # defining components.

    def __getstate__(self):
        return (
            self._labels,
            self._threads,
            self._rf,
            self._co,
            self._stamp,
            self._next_stamp,
            self._init_by_loc,
            self._version,
        )

    def __setstate__(self, state):
        (
            self._labels,
            self._threads,
            self._rf,
            self._co,
            self._stamp,
            self._next_stamp,
            self._init_by_loc,
            self._version,
        ) = state
        self._derived = {}
        self._aux = {}
        self._deltas = []
        self._delta_base = self._version

    # -- debugging ----------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"<ExecutionGraph {len(self._labels)} events, "
            f"{len(self._threads)} threads>"
        )

    def pretty(self) -> str:
        """A multi-line human-readable dump (for error witnesses)."""
        lines = []
        for loc, order in sorted(self._co.items()):
            lines.append(f"co[{loc}]: " + " -> ".join(map(repr, order)))
        for tid in self.thread_ids():
            lines.append(f"thread {tid}:")
            for ev in self._threads[tid]:
                lab = self._labels[ev]
                extra = ""
                if ev in self._rf:
                    extra = f"  [rf: {self._rf[ev]!r} = {self.value_of(ev)}]"
                lines.append(f"  {ev!r}: {lab!r}{extra}")
        return "\n".join(lines)
