"""Derived relations of an execution graph.

Memory models are defined over a standard family of relations derived
from ``po``/``rf``/``co``.  This module computes them as
:class:`~repro.relations.Relation` values.  Naming follows herd/cat:

* ``rfe``/``rfi`` — external/internal (cross-thread/same-thread) reads-from
* ``fr``          — from-read: ``rf⁻¹ ; co``
* ``eco``         — extended coherence order
* ``po_loc``      — program order between same-location accesses

Initialisation writes count as external to every thread.

Relations are memoised *on the graph* (``graph._derived``) and the
memo travels through :meth:`ExecutionGraph.copy`, so the exploration's
copy-one-event-extend pattern pays per-delta cost: each
:func:`graph_cached` relation carries a *delta function* mapping one
mutation record (see the graph's delta log) to the pairs it adds, and
a stale cache entry is brought current with
:meth:`Relation.extended` instead of recomputed.  Relations that are
not extend-only under event addition either register a custom
incremental updater (``eco``) or none at all (``co_imm`` — a
mid-order insertion *removes* an immediate pair, and the relation is
cheap enough to rebuild).

Delta functions are written against the *current* graph state, which
makes late replay safe: every emitted pair involves the delta's own
event, thread prefixes are append-only, and a coherence insertion
never reorders existing writes.  Any mutation that breaks those
guarantees (``set_rf``, bulk ``from_parts``) cuts the delta log, which
forces recomputation.
"""

from __future__ import annotations

from ..events import Event, FenceLabel, Label, ReadLabel, WriteLabel
from ..obs.profile import _STATE as _PROFILE
from ..relations import Relation, same, union
from .graph import ExecutionGraph
from .incremental import _FLAGS, check_equal


def graph_cached(fn):
    """Memoise a Relation-valued function of one graph.

    Entries live in ``graph._derived`` keyed by name and tagged with
    the graph's lineage version, so a copied graph starts out with its
    parent's values.  On lookup: a same-version entry is a memo hit; a
    stale entry is *extended* through the graph's delta log when the
    function has a registered incremental updater (and incremental
    mode is on); otherwise the relation is recomputed from scratch.

    Updaters are registered on the wrapper: ``@fn.register_delta_pairs``
    takes a ``(graph, delta) -> iterable of pairs`` function (the
    common, extend-only case — it also feeds the incremental
    acyclicity checker), while ``@fn.register_incremental`` takes a
    full ``(graph, old, deltas) -> Relation`` updater for relations
    with structure beyond added pairs.

    When a profiling registry is active (see :mod:`repro.obs.profile`)
    each call is attributed: memo hits bump ``relation:<name>:memo_hit``,
    incremental extensions bump ``relation:<name>:incremental_hit``,
    and both extensions and full computes are timed under a
    ``relation:<name>`` phase, which nests inside whatever ``check:``
    phase asked for the relation — so axiom self-time excludes
    relation-building time.  Disabled cost is one ``None`` check.
    In differential mode every extension is recomputed from scratch
    and compared (:class:`~repro.graphs.incremental.IncrementalMismatch`
    on divergence).
    """
    name = fn.__name__
    hit_counter = f"relation:{name}:memo_hit"
    inc_counter = f"relation:{name}:incremental_hit"
    compute_phase = f"relation:{name}"

    def wrapper(graph: ExecutionGraph):
        version = graph._version
        entry = graph._derived.get(name)
        reg = _PROFILE.registry
        if entry is not None:
            if entry[0] == version:
                if reg is not None:
                    reg.inc(hit_counter)
                return entry[1]
            updater = wrapper.incremental_update
            if updater is not None and _FLAGS.enabled:
                deltas = graph.deltas_since(entry[0])
                if deltas is not None:
                    if reg is not None:
                        with reg.phase(compute_phase):
                            value = updater(graph, entry[1], deltas)
                        reg.inc(inc_counter)
                    else:
                        value = updater(graph, entry[1], deltas)
                    if _FLAGS.differential:
                        check_equal(name, value, fn(graph))
                    graph._derived[name] = (version, value)
                    return value
        if reg is not None:
            with reg.phase(compute_phase):
                value = fn(graph)
        else:
            value = fn(graph)
        graph._derived[name] = (version, value)
        return value

    def register_delta_pairs(pair_fn):
        wrapper.delta_pairs = pair_fn

        def update(graph, old, deltas):
            pairs = [
                pair for delta in deltas for pair in pair_fn(graph, delta)
            ]
            return old.extended(pairs) if pairs else old

        wrapper.incremental_update = update
        return pair_fn

    def register_incremental(update_fn):
        wrapper.incremental_update = update_fn
        return update_fn

    wrapper.__name__ = name
    wrapper.__doc__ = fn.__doc__
    wrapper.__wrapped__ = fn
    wrapper.delta_pairs = None
    wrapper.incremental_update = None
    wrapper.register_delta_pairs = register_delta_pairs
    wrapper.register_incremental = register_incremental
    return wrapper


def same_thread(a: Event, b: Event) -> bool:
    return a.tid == b.tid and not a.is_initial and not b.is_initial


@graph_cached
def po(graph: ExecutionGraph) -> Relation:
    """Full (transitive) program order, per thread."""
    rel = Relation()
    for tid in graph.thread_ids():
        events = graph.thread_events(tid)
        for i, a in enumerate(events):
            for b in events[i + 1:]:
                rel.add(a, b)
    return rel


@po.register_delta_pairs
def _po_delta(graph, delta):
    if delta[0] != "event":
        return ()
    ev = delta[1]
    return [(p, ev) for p in graph._threads[ev.tid][: ev.index]]


@graph_cached
def po_imm(graph: ExecutionGraph) -> Relation:
    """Immediate (non-transitive) program order."""
    rel = Relation()
    for tid in graph.thread_ids():
        events = graph.thread_events(tid)
        for a, b in zip(events, events[1:]):
            rel.add(a, b)
    return rel


@po_imm.register_delta_pairs
def _po_imm_delta(graph, delta):
    if delta[0] != "event":
        return ()
    ev = delta[1]
    if ev.index == 0:
        return ()
    return [(graph._threads[ev.tid][ev.index - 1], ev)]


@graph_cached
def po_loc(graph: ExecutionGraph) -> Relation:
    """Program order restricted to same-location accesses."""
    rel = Relation()
    for tid in graph.thread_ids():
        events = graph.thread_events(tid)
        for i, a in enumerate(events):
            la = graph.label(a)
            if not la.is_access:
                continue
            for b in events[i + 1:]:
                lb = graph.label(b)
                if lb.is_access and lb.location == la.location:
                    rel.add(a, b)
    return rel


@po_loc.register_delta_pairs
def _po_loc_delta(graph, delta):
    if delta[0] != "event":
        return ()
    ev = delta[1]
    lab = graph._labels[ev]
    if not lab.is_access:
        return ()
    loc = lab.location
    out = []
    for p in graph._threads[ev.tid][: ev.index]:
        plab = graph._labels[p]
        if plab.is_access and plab.location == loc:
            out.append((p, ev))
    return out


@graph_cached
def rf(graph: ExecutionGraph) -> Relation:
    return Relation((w, r) for r, w in graph.rf_map().items())


@rf.register_delta_pairs
def _rf_delta(graph, delta):
    if delta[0] != "event":
        return ()
    ev = delta[1]
    src = graph._rf.get(ev)
    return ((src, ev),) if src is not None else ()


@graph_cached
def rfe(graph: ExecutionGraph) -> Relation:
    return Relation(
        (w, r) for r, w in graph.rf_map().items() if not same_thread(w, r)
    )


@rfe.register_delta_pairs
def _rfe_delta(graph, delta):
    return [
        (w, r) for w, r in _rf_delta(graph, delta) if not same_thread(w, r)
    ]


@graph_cached
def rfi(graph: ExecutionGraph) -> Relation:
    return Relation(
        (w, r) for r, w in graph.rf_map().items() if same_thread(w, r)
    )


@rfi.register_delta_pairs
def _rfi_delta(graph, delta):
    return [(w, r) for w, r in _rf_delta(graph, delta) if same_thread(w, r)]


@graph_cached
def co(graph: ExecutionGraph) -> Relation:
    rel = Relation()
    for loc in graph.locations():
        order = graph.co_order(loc)
        for i, a in enumerate(order):
            for b in order[i + 1:]:
                rel.add(a, b)
    return rel


@co.register_delta_pairs
def _co_delta(graph, delta):
    if delta[0] != "co":
        return ()
    ev = delta[1]
    order = graph._co[graph._labels[ev].location]
    pos = order.index(ev)
    out = [(w, ev) for w in order[:pos]]
    out.extend((ev, w) for w in order[pos + 1:])
    return out


@graph_cached
def co_imm(graph: ExecutionGraph) -> Relation:
    # no incremental updater: a mid-order coherence insertion *removes*
    # the immediate pair it splits, which extend-only deltas cannot say
    rel = Relation()
    for loc in graph.locations():
        order = graph.co_order(loc)
        for a, b in zip(order, order[1:]):
            rel.add(a, b)
    return rel


@graph_cached
def fr(graph: ExecutionGraph) -> Relation:
    """From-read: read r is fr-before every write coherence-after rf(r)."""
    rel = Relation()
    for read, src in graph.rf_map().items():
        loc = graph.label(read).location
        order = graph.co_order(loc)  # type: ignore[arg-type]
        after = order[order.index(src) + 1:]
        for w in after:
            if w != read:
                rel.add(read, w)
    return rel


@fr.register_delta_pairs
def _fr_delta(graph, delta):
    kind, ev = delta[0], delta[1]
    if kind == "event":
        # a new read is fr-before every write coherence-after its source
        src = graph._rf.get(ev)
        if src is None:
            return ()
        order = graph._co[graph._labels[ev].location]
        return [(ev, w) for w in order[order.index(src) + 1:]]
    if kind == "co":
        # a newly placed write gains an fr edge from every read whose
        # source sits coherence-before it
        order = graph._co[graph._labels[ev].location]
        position = {w: i for i, w in enumerate(order)}
        pos = position[ev]
        out = []
        for read, src in graph._rf.items():
            i = position.get(src)
            if i is not None and i < pos:
                out.append((read, ev))
        return out
    return ()


def external(rel: Relation) -> Relation:
    return Relation((a, b) for a, b in rel.pairs() if not same_thread(a, b))


def internal(rel: Relation) -> Relation:
    return Relation((a, b) for a, b in rel.pairs() if same_thread(a, b))


@graph_cached
def coe(graph: ExecutionGraph) -> Relation:
    """External (cross-thread) coherence."""
    return external(co(graph))


@coe.register_delta_pairs
def _coe_delta(graph, delta):
    return [
        (a, b) for a, b in _co_delta(graph, delta) if not same_thread(a, b)
    ]


@graph_cached
def coi(graph: ExecutionGraph) -> Relation:
    """Internal (same-thread) coherence."""
    return internal(co(graph))


@coi.register_delta_pairs
def _coi_delta(graph, delta):
    return [(a, b) for a, b in _co_delta(graph, delta) if same_thread(a, b)]


@graph_cached
def fre(graph: ExecutionGraph) -> Relation:
    """External (cross-thread) from-read."""
    return external(fr(graph))


@fre.register_delta_pairs
def _fre_delta(graph, delta):
    return [
        (a, b) for a, b in _fr_delta(graph, delta) if not same_thread(a, b)
    ]


@graph_cached
def fri(graph: ExecutionGraph) -> Relation:
    """Internal (same-thread) from-read."""
    return internal(fr(graph))


@fri.register_delta_pairs
def _fri_delta(graph, delta):
    return [(a, b) for a, b in _fr_delta(graph, delta) if same_thread(a, b)]


@graph_cached
def eco(graph: ExecutionGraph) -> Relation:
    """Extended coherence order: (rf | co | fr)+."""
    return union(rf(graph), co(graph), fr(graph)).transitive_closure()


@eco.register_incremental
def _eco_incremental(graph, old, deltas):
    # Not a pair-extension: eco is a transitive closure.  But with rf
    # functional, co total per location and fr = rf⁻¹;co, the closure
    # collapses — co;co ⊆ co, fr;co ⊆ fr, rf;fr ⊆ co, and the
    # remaining two-step compositions end in a read, so
    # eco = rf ∪ co ∪ fr ∪ co;rf ∪ fr;rf exactly.  The component
    # relations are themselves incrementally maintained, making this
    # O(pairs) instead of a fresh closure; the identity needs the
    # mutator-kept invariants, which hold on every graph with a live
    # delta log (bulk from_parts construction cuts the log).
    rf_rel, co_rel, fr_rel = rf(graph), co(graph), fr(graph)
    return union(
        rf_rel,
        co_rel,
        fr_rel,
        co_rel.compose(rf_rel),
        fr_rel.compose(rf_rel),
    )


@graph_cached
def rmw_pairs(graph: ExecutionGraph) -> Relation:
    """Exclusive read -> its exclusive write."""
    rel = Relation()
    for ev in graph.events():
        lab = graph.label(ev)
        if isinstance(lab, ReadLabel) and lab.exclusive:
            partner = graph.exclusive_pair(ev)
            if partner is not None:
                rel.add(ev, partner)
    return rel


@rmw_pairs.register_delta_pairs
def _rmw_delta(graph, delta):
    if delta[0] != "event":
        return ()
    ev = delta[1]
    lab = graph._labels[ev]
    if not getattr(lab, "exclusive", False):
        return ()
    partner = graph.exclusive_pair(ev)
    if partner is None:
        return ()
    if isinstance(lab, WriteLabel):
        return ((partner, ev),)
    return ((ev, partner),)


# -- dependency fragments ----------------------------------------------------


def _dep_relation(graph: ExecutionGraph, field: str) -> Relation:
    rel = Relation()
    for ev in graph.events():
        for dep in getattr(graph.label(ev), field):
            rel.add(dep, ev)
    return rel


def _dep_delta(graph, delta, field):
    if delta[0] != "event":
        return ()
    ev = delta[1]
    return [(dep, ev) for dep in getattr(graph._labels[ev], field)]


@graph_cached
def dep_addr(graph: ExecutionGraph) -> Relation:
    """Address-dependency edges recorded on labels."""
    return _dep_relation(graph, "addr_deps")


@dep_addr.register_delta_pairs
def _dep_addr_delta(graph, delta):
    return _dep_delta(graph, delta, "addr_deps")


@graph_cached
def dep_data(graph: ExecutionGraph) -> Relation:
    """Data-dependency edges recorded on labels."""
    return _dep_relation(graph, "data_deps")


@dep_data.register_delta_pairs
def _dep_data_delta(graph, delta):
    return _dep_delta(graph, delta, "data_deps")


@graph_cached
def dep_ctrl(graph: ExecutionGraph) -> Relation:
    """Control-dependency edges recorded on labels."""
    return _dep_relation(graph, "ctrl_deps")


@dep_ctrl.register_delta_pairs
def _dep_ctrl_delta(graph, delta):
    return _dep_delta(graph, delta, "ctrl_deps")


_DEP_FRAGMENTS = (("a", dep_addr), ("d", dep_data), ("c", dep_ctrl))


def dependency(graph: ExecutionGraph, kinds: str = "adc") -> Relation:
    """Syntactic dependency edges recorded on labels.

    ``kinds`` selects which: ``a``\\ ddr, ``d``\\ ata, ``c``\\ trl.
    Single-kind requests return the cached fragment directly (do not
    mutate it); combinations are unioned fresh.
    """
    parts = [frag(graph) for key, frag in _DEP_FRAGMENTS if key in kinds]
    if not parts:
        return Relation()
    if len(parts) == 1:
        return parts[0]
    return union(*parts)


# -- whole-universe relations (the cat ``loc``/``ext``/``int``/``id``) -------


@graph_cached
def same_loc(graph: ExecutionGraph) -> Relation:
    """All pairs of distinct same-location accesses (both directions)."""
    accesses = [e for e in graph.events() if graph.label(e).is_access]
    return same(lambda e: graph.label(e).location, accesses)


@same_loc.register_delta_pairs
def _same_loc_delta(graph, delta):
    if delta[0] not in ("event", "init"):
        return ()
    ev = delta[1]
    lab = graph._labels[ev]
    if not lab.is_access:
        return ()
    loc = lab.location
    out = []
    for other, olab in graph._labels.items():
        if other != ev and olab.is_access and olab.location == loc:
            out.append((ev, other))
            out.append((other, ev))
    return out


@graph_cached
def ext_rel(graph: ExecutionGraph) -> Relation:
    """All pairs of distinct events of different threads (init counts
    as external to every thread)."""
    events = list(graph.events())
    return Relation(
        (a, b)
        for a in events
        for b in events
        if a != b and not same_thread(a, b)
    )


@ext_rel.register_delta_pairs
def _ext_rel_delta(graph, delta):
    if delta[0] not in ("event", "init"):
        return ()
    ev = delta[1]
    out = []
    for other in graph._labels:
        if other != ev and not same_thread(ev, other):
            out.append((ev, other))
            out.append((other, ev))
    return out


@graph_cached
def int_rel(graph: ExecutionGraph) -> Relation:
    """All pairs of distinct same-thread events."""
    events = list(graph.events())
    return Relation(
        (a, b) for a in events for b in events if a != b and same_thread(a, b)
    )


@int_rel.register_delta_pairs
def _int_rel_delta(graph, delta):
    if delta[0] != "event":
        return ()
    ev = delta[1]
    out = []
    for other in graph._threads.get(ev.tid, ()):
        if other != ev:
            out.append((ev, other))
            out.append((other, ev))
    return out


@graph_cached
def id_rel(graph: ExecutionGraph) -> Relation:
    """The identity relation over all events."""
    return Relation.identity(graph.events())


@id_rel.register_delta_pairs
def _id_rel_delta(graph, delta):
    if delta[0] not in ("event", "init"):
        return ()
    ev = delta[1]
    return ((ev, ev),)


# -- event-set helpers -------------------------------------------------------


def reads(graph: ExecutionGraph) -> list[Event]:
    return [e for e in graph.events() if isinstance(graph.label(e), ReadLabel)]


def writes(graph: ExecutionGraph) -> list[Event]:
    return [e for e in graph.events() if isinstance(graph.label(e), WriteLabel)]


def fences(graph: ExecutionGraph) -> list[Event]:
    return [e for e in graph.events() if isinstance(graph.label(e), FenceLabel)]


def accesses(graph: ExecutionGraph) -> list[Event]:
    return [e for e in graph.events() if graph.label(e).is_access]


def is_read(graph: ExecutionGraph, e: Event) -> bool:
    return isinstance(graph.label(e), ReadLabel)


def is_write(graph: ExecutionGraph, e: Event) -> bool:
    return isinstance(graph.label(e), WriteLabel)


def label_of(graph: ExecutionGraph, e: Event) -> Label:
    return graph.label(e)
