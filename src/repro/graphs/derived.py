"""Derived relations of an execution graph.

Memory models are defined over a standard family of relations derived
from ``po``/``rf``/``co``.  This module computes them as
:class:`~repro.relations.Relation` values.  Naming follows herd/cat:

* ``rfe``/``rfi`` — external/internal (cross-thread/same-thread) reads-from
* ``fr``          — from-read: ``rf⁻¹ ; co``
* ``eco``         — extended coherence order
* ``po_loc``      — program order between same-location accesses

Initialisation writes count as external to every thread.
"""

from __future__ import annotations

import weakref
from typing import Callable

from ..events import Event, FenceLabel, Label, ReadLabel, WriteLabel
from ..obs.profile import _STATE as _PROFILE
from ..relations import Relation, union
from .graph import ExecutionGraph

#: per-graph memo: graph -> (version, {key: Relation}).  Consistency
#: checks ask for the same relations repeatedly (coherence and the
#: model axiom share rf/co/fr; psc recomputes eco); caching per graph
#: version makes each relation a once-per-step cost.
_CACHE: "weakref.WeakKeyDictionary[ExecutionGraph, tuple[int, dict]]" = (
    weakref.WeakKeyDictionary()
)


def graph_cached(fn: Callable) -> Callable:
    """Memoise a Relation-valued function of one graph.

    When a profiling registry is active (see :mod:`repro.obs.profile`)
    each call is attributed: memo hits bump ``relation:<name>:memo_hit``
    and computes are timed under a ``relation:<name>`` phase, which
    nests inside whatever ``check:`` phase asked for the relation — so
    axiom self-time excludes relation-building time.  Disabled cost is
    one ``None`` check.
    """
    name = fn.__name__
    hit_counter = f"relation:{name}:memo_hit"
    compute_phase = f"relation:{name}"

    def wrapper(graph: ExecutionGraph):
        version = graph._version
        entry = _CACHE.get(graph)
        if entry is None or entry[0] != version:
            entry = (version, {})
            _CACHE[graph] = entry
        memo = entry[1]
        if name not in memo:
            reg = _PROFILE.registry
            if reg is not None:
                with reg.phase(compute_phase):
                    memo[name] = fn(graph)
            else:
                memo[name] = fn(graph)
        else:
            reg = _PROFILE.registry
            if reg is not None:
                reg.inc(hit_counter)
        return memo[name]

    wrapper.__name__ = name
    wrapper.__doc__ = fn.__doc__
    wrapper.__wrapped__ = fn
    return wrapper


def same_thread(a: Event, b: Event) -> bool:
    return a.tid == b.tid and not a.is_initial and not b.is_initial


@graph_cached
def po(graph: ExecutionGraph) -> Relation:
    """Full (transitive) program order, per thread."""
    rel = Relation()
    for tid in graph.thread_ids():
        events = graph.thread_events(tid)
        for i, a in enumerate(events):
            for b in events[i + 1:]:
                rel.add(a, b)
    return rel


@graph_cached
def po_imm(graph: ExecutionGraph) -> Relation:
    """Immediate (non-transitive) program order."""
    rel = Relation()
    for tid in graph.thread_ids():
        events = graph.thread_events(tid)
        for a, b in zip(events, events[1:]):
            rel.add(a, b)
    return rel


@graph_cached
def po_loc(graph: ExecutionGraph) -> Relation:
    """Program order restricted to same-location accesses."""
    rel = Relation()
    for tid in graph.thread_ids():
        events = graph.thread_events(tid)
        for i, a in enumerate(events):
            la = graph.label(a)
            if not la.is_access:
                continue
            for b in events[i + 1:]:
                lb = graph.label(b)
                if lb.is_access and lb.location == la.location:
                    rel.add(a, b)
    return rel


@graph_cached
def rf(graph: ExecutionGraph) -> Relation:
    return Relation((w, r) for r, w in graph.rf_map().items())


@graph_cached
def rfe(graph: ExecutionGraph) -> Relation:
    return Relation(
        (w, r) for r, w in graph.rf_map().items() if not same_thread(w, r)
    )


@graph_cached
def rfi(graph: ExecutionGraph) -> Relation:
    return Relation(
        (w, r) for r, w in graph.rf_map().items() if same_thread(w, r)
    )


@graph_cached
def co(graph: ExecutionGraph) -> Relation:
    rel = Relation()
    for loc in graph.locations():
        order = graph.co_order(loc)
        for i, a in enumerate(order):
            for b in order[i + 1:]:
                rel.add(a, b)
    return rel


@graph_cached
def co_imm(graph: ExecutionGraph) -> Relation:
    rel = Relation()
    for loc in graph.locations():
        order = graph.co_order(loc)
        for a, b in zip(order, order[1:]):
            rel.add(a, b)
    return rel


@graph_cached
def fr(graph: ExecutionGraph) -> Relation:
    """From-read: read r is fr-before every write coherence-after rf(r)."""
    rel = Relation()
    for read, src in graph.rf_map().items():
        loc = graph.label(read).location
        order = graph.co_order(loc)  # type: ignore[arg-type]
        after = order[order.index(src) + 1:]
        for w in after:
            if w != read:
                rel.add(read, w)
    return rel


def external(rel: Relation) -> Relation:
    return Relation((a, b) for a, b in rel.pairs() if not same_thread(a, b))


def internal(rel: Relation) -> Relation:
    return Relation((a, b) for a, b in rel.pairs() if same_thread(a, b))


@graph_cached
def eco(graph: ExecutionGraph) -> Relation:
    """Extended coherence order: (rf | co | fr)+."""
    return union(rf(graph), co(graph), fr(graph)).transitive_closure()


@graph_cached
def rmw_pairs(graph: ExecutionGraph) -> Relation:
    """Exclusive read -> its exclusive write."""
    rel = Relation()
    for ev in graph.events():
        lab = graph.label(ev)
        if isinstance(lab, ReadLabel) and lab.exclusive:
            partner = graph.exclusive_pair(ev)
            if partner is not None:
                rel.add(ev, partner)
    return rel


def dependency(graph: ExecutionGraph, kinds: str = "adc") -> Relation:
    """Syntactic dependency edges recorded on labels.

    ``kinds`` selects which: ``a``\\ ddr, ``d``\\ ata, ``c``\\ trl.
    """
    rel = Relation()
    for ev in graph.events():
        lab = graph.label(ev)
        if "a" in kinds:
            for dep in lab.addr_deps:
                rel.add(dep, ev)
        if "d" in kinds:
            for dep in lab.data_deps:
                rel.add(dep, ev)
        if "c" in kinds:
            for dep in lab.ctrl_deps:
                rel.add(dep, ev)
    return rel


# -- event-set helpers -------------------------------------------------------


def reads(graph: ExecutionGraph) -> list[Event]:
    return [e for e in graph.events() if isinstance(graph.label(e), ReadLabel)]


def writes(graph: ExecutionGraph) -> list[Event]:
    return [e for e in graph.events() if isinstance(graph.label(e), WriteLabel)]


def fences(graph: ExecutionGraph) -> list[Event]:
    return [e for e in graph.events() if isinstance(graph.label(e), FenceLabel)]


def accesses(graph: ExecutionGraph) -> list[Event]:
    return [e for e in graph.events() if graph.label(e).is_access]


def is_read(graph: ExecutionGraph, e: Event) -> bool:
    return isinstance(graph.label(e), ReadLabel)


def is_write(graph: ExecutionGraph, e: Event) -> bool:
    return isinstance(graph.label(e), WriteLabel)


def label_of(graph: ExecutionGraph, e: Event) -> Label:
    return graph.label(e)
