"""Memory orderings and fence kinds.

The event vocabulary covers both language-level orderings (C11-style
``rlx``/``acq``/``rel``/``sc``, used by the SC/RA/RC11 models) and
hardware fences (x86 ``MFENCE``, POWER ``sync``/``lwsync``/``isync``,
ARMv8 ``dmb``/``isb``).  Hardware models read the fence kind; language
models read the access ordering.  A model simply ignores annotations it
has no rule for.
"""

from __future__ import annotations

import enum


class MemOrder(enum.Enum):
    """Access ordering annotation (C11-style)."""

    RLX = "rlx"
    ACQ = "acq"
    REL = "rel"
    ACQ_REL = "acq_rel"
    SC = "sc"

    def is_acquire(self) -> bool:
        """Acquire semantics or stronger (for reads/fences)."""
        return self in (MemOrder.ACQ, MemOrder.ACQ_REL, MemOrder.SC)

    def is_release(self) -> bool:
        """Release semantics or stronger (for writes/fences)."""
        return self in (MemOrder.REL, MemOrder.ACQ_REL, MemOrder.SC)

    def is_sc(self) -> bool:
        return self is MemOrder.SC

    def __repr__(self) -> str:
        return self.value


class FenceKind(enum.Enum):
    """Fence instruction kinds across the supported architectures."""

    #: x86 full fence (also models locked no-ops).
    MFENCE = "mfence"
    #: POWER heavyweight sync / ARM dmb sy — full barrier.
    SYNC = "sync"
    #: POWER lightweight sync — orders everything except W->R.
    LWSYNC = "lwsync"
    #: POWER isync / ARM isb — instruction barrier (ctrl+isync idiom).
    ISYNC = "isync"
    #: ARMv8 dmb ld — orders reads against later accesses.
    DMB_LD = "dmb_ld"
    #: ARMv8 dmb st — orders writes against later writes.
    DMB_ST = "dmb_st"
    #: language-level fence carrying a :class:`MemOrder` (see FenceLabel).
    C11 = "c11"

    def is_full(self) -> bool:
        """Fences that restore sequential consistency locally."""
        return self in (FenceKind.MFENCE, FenceKind.SYNC)

    def __repr__(self) -> str:
        return self.value
