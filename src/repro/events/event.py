"""Event identities.

An event is a position in some thread: the pair ``(tid, index)``.
Executions attach *labels* (see :mod:`repro.events.labels`) to events.
The initial state is modelled, as in herd/GenMC, by initialisation
writes living on the pseudo-thread :data:`INIT_TID`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Thread id of the pseudo-thread holding initialisation writes.
INIT_TID = -1


@dataclass(frozen=True, order=True, slots=True)
class Event:
    """The identity of an event: thread id and program-order index.

    Events are the keys of every relation adjacency set and graph
    cache, so they are hashed orders of magnitude more often than they
    are created — the hash is computed once here and served from a
    slot.
    """

    tid: int
    index: int
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.tid, self.index)))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        # dataclass __eq__ builds a field tuple per comparison; this
        # runs on every hash-bucket collision, so keep it flat.
        if other.__class__ is Event:
            return self.tid == other.tid and self.index == other.index
        return NotImplemented

    @property
    def is_initial(self) -> bool:
        return self.tid == INIT_TID

    def po_prev(self) -> "Event | None":
        """The immediately program-order-preceding event, if any."""
        if self.index == 0:
            return None
        return Event(self.tid, self.index - 1)

    def po_next(self) -> "Event":
        return Event(self.tid, self.index + 1)

    def __repr__(self) -> str:
        if self.is_initial:
            return f"I{self.index}"
        return f"E{self.tid}.{self.index}"


def init_event(slot: int) -> Event:
    """The ``slot``-th initialisation event."""
    return Event(INIT_TID, slot)
