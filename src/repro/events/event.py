"""Event identities.

An event is a position in some thread: the pair ``(tid, index)``.
Executions attach *labels* (see :mod:`repro.events.labels`) to events.
The initial state is modelled, as in herd/GenMC, by initialisation
writes living on the pseudo-thread :data:`INIT_TID`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Thread id of the pseudo-thread holding initialisation writes.
INIT_TID = -1


@dataclass(frozen=True, order=True, slots=True)
class Event:
    """The identity of an event: thread id and program-order index."""

    tid: int
    index: int

    @property
    def is_initial(self) -> bool:
        return self.tid == INIT_TID

    def po_prev(self) -> "Event | None":
        """The immediately program-order-preceding event, if any."""
        if self.index == 0:
            return None
        return Event(self.tid, self.index - 1)

    def po_next(self) -> "Event":
        return Event(self.tid, self.index + 1)

    def __repr__(self) -> str:
        if self.is_initial:
            return f"I{self.index}"
        return f"E{self.tid}.{self.index}"


def init_event(slot: int) -> Event:
    """The ``slot``-th initialisation event."""
    return Event(INIT_TID, slot)
