"""Events, labels, orderings: the vocabulary of execution graphs."""

from .event import INIT_TID, Event, init_event
from .labels import (
    EMPTY_DEPS,
    FenceLabel,
    InitLabel,
    Label,
    Loc,
    ReadLabel,
    Value,
    WriteLabel,
    labels_match,
)
from .ordering import FenceKind, MemOrder

__all__ = [
    "EMPTY_DEPS",
    "Event",
    "FenceKind",
    "FenceLabel",
    "INIT_TID",
    "InitLabel",
    "Label",
    "Loc",
    "MemOrder",
    "ReadLabel",
    "Value",
    "WriteLabel",
    "init_event",
    "labels_match",
]
