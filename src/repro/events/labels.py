"""Event labels.

A label says *what* an event does: read a location, write a value,
fence.  Labels are immutable and carry the syntactic dependency
information the interpreter derived for them (which program-order
earlier reads the address, the value, or the control flow leading to
this event depended on).  Hardware memory models consume exactly this
information to build their preserved-program-order relations.

Reads-from edges are *not* stored here; they live in the execution
graph, so the same label object can be shared between explorations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .event import Event
from .ordering import FenceKind, MemOrder

#: Shared-memory locations are identified by name.
Loc = str
#: All values are machine integers.
Value = int

EMPTY_DEPS: frozenset[Event] = frozenset()


@dataclass(frozen=True, slots=True)
class Label:
    """Base class of all event labels."""

    #: reads whose value this label's *address* depends on
    addr_deps: frozenset[Event] = field(default=EMPTY_DEPS, kw_only=True)
    #: reads whose value this label's *data* (stored value) depends on
    data_deps: frozenset[Event] = field(default=EMPTY_DEPS, kw_only=True)
    #: reads an earlier branch depended on (control dependency)
    ctrl_deps: frozenset[Event] = field(default=EMPTY_DEPS, kw_only=True)

    @property
    def deps(self) -> frozenset[Event]:
        """All syntactic dependencies, of any kind."""
        return self.addr_deps | self.data_deps | self.ctrl_deps

    @property
    def is_read(self) -> bool:
        return isinstance(self, ReadLabel)

    @property
    def is_write(self) -> bool:
        return isinstance(self, WriteLabel)

    @property
    def is_fence(self) -> bool:
        return isinstance(self, FenceLabel)

    @property
    def is_access(self) -> bool:
        return isinstance(self, (ReadLabel, WriteLabel))

    @property
    def location(self) -> Loc | None:
        return getattr(self, "loc", None)


@dataclass(frozen=True, slots=True)
class ReadLabel(Label):
    """A load from ``loc``.

    ``exclusive`` marks the read half of an RMW (CAS/FAI); for a CAS the
    RMW only "fires" (emits its write half) when the value read equals
    ``cas_expected``.
    """

    loc: Loc = ""
    order: MemOrder = MemOrder.RLX
    exclusive: bool = False
    cas_expected: Value | None = None

    def matches(self, other: "Label") -> bool:
        """Same syntactic access (ignoring dependencies)?"""
        return (
            isinstance(other, ReadLabel)
            and other.loc == self.loc
            and other.order == self.order
            and other.exclusive == self.exclusive
            and other.cas_expected == self.cas_expected
        )

    def __repr__(self) -> str:
        kind = "U" if self.exclusive else "R"
        return f"{kind}({self.loc},{self.order.value})"


@dataclass(frozen=True, slots=True)
class WriteLabel(Label):
    """A store of ``value`` to ``loc``.

    ``exclusive`` marks the write half of an RMW: it is bound to the
    program-order-immediately-preceding exclusive read.
    """

    loc: Loc = ""
    value: Value = 0
    order: MemOrder = MemOrder.RLX
    exclusive: bool = False

    def matches(self, other: "Label") -> bool:
        return (
            isinstance(other, WriteLabel)
            and other.loc == self.loc
            and other.value == self.value
            and other.order == self.order
            and other.exclusive == self.exclusive
        )

    def __repr__(self) -> str:
        kind = "UW" if self.exclusive else "W"
        return f"{kind}({self.loc}:={self.value},{self.order.value})"


@dataclass(frozen=True, slots=True)
class FenceLabel(Label):
    """A memory fence; ``kind`` selects the hardware instruction and
    ``order`` carries C11 semantics for language-level models."""

    kind: FenceKind = FenceKind.SYNC
    order: MemOrder = MemOrder.SC

    def matches(self, other: "Label") -> bool:
        return (
            isinstance(other, FenceLabel)
            and other.kind == self.kind
            and other.order == self.order
        )

    def __repr__(self) -> str:
        return f"F({self.kind.value})"


@dataclass(frozen=True, slots=True)
class InitLabel(WriteLabel):
    """The initialisation write of a location (value 0, on INIT_TID)."""

    def __repr__(self) -> str:
        return f"Init({self.loc})"


def labels_match(a: Label, b: Label) -> bool:
    """Structural equality modulo dependency annotations."""
    match_fn = getattr(a, "matches", None)
    if match_fn is None:  # pragma: no cover - all labels define matches
        return a == b
    return match_fn(b)
