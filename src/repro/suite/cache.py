"""Content-addressed result cache for batched suite runs.

A suite task's verdict is a pure function of the program, the memory
model, the result-relevant exploration options and the checker's code
version — so its result can be cached under the hash of exactly those
inputs and served on any later run with identical content.  Scheduling
knobs (``jobs``, ``oversubscription``, ``task_timeout``,
``task_retries``) and collection toggles never change what a
deterministic exploration *finds*, so they are excluded from the key:
serial and parallel runs of the same task share one cache entry.

Entries are flat JSON files (``<key>.json``) holding the
:func:`repro.core.report.to_dict` rendering of the result plus the
litmus verdict fields, written atomically.  The code version is part
of the key, so a new checker release simply misses the old entries —
no invalidation pass is ever needed.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time

from ..core.config import ExplorationOptions
from ..core.report import to_dict

#: bump when the entry payload layout changes (part of the key, so a
#: bump orphans old entries rather than misreading them)
CACHE_SCHEMA_VERSION = 1

#: the ``kind`` tag inside every entry file
CACHE_ENTRY_KIND = "repro-suite-cache-entry"

#: environment override for the cache directory
CACHE_DIR_ENV = "REPRO_SUITE_CACHE_DIR"

#: environment override for the cache size cap, in megabytes (unset or
#: empty = unlimited) — a long-lived server prunes after every store
CACHE_MAX_MB_ENV = "REPRO_SUITE_CACHE_MAX_MB"

DEFAULT_CACHE_DIR = os.path.join(".repro", "suite-cache")

#: option fields that only steer *how* the search runs, never what it
#: finds — excluded from the cache key
SCHEDULING_FIELDS = frozenset(
    {
        "jobs",
        "oversubscription",
        "task_timeout",
        "task_retries",
        "collect_keys",
        "collect_executions",
    }
)


def _code_version() -> str:
    # late import: repro/__init__ imports repro.suite
    from .. import __version__

    return __version__


def program_fingerprint(program) -> str:
    """A stable content string for a program: its frozen dataclass
    tree (enums and primitives) reprs deterministically within one
    code version, and the code version is hashed alongside."""
    return repr((program.name, program.threads, program.observables))


def model_fingerprint(model) -> list:
    """The model's identity for hashing: declarative models are their
    source text; built-in models are their import path (their axioms
    only change with the code version, which is hashed separately)."""
    spec = getattr(model, "spec", None)
    source = getattr(spec, "source", None)
    if source is not None:
        return ["cat", model.name, source]
    cls = type(model)
    return ["class", model.name, f"{cls.__module__}.{cls.__qualname__}"]


def options_fingerprint(options: ExplorationOptions) -> dict:
    """The result-relevant option fields, sorted for stable hashing."""
    fields = {
        name: value
        for name, value in vars(options).items()
        if name not in SCHEDULING_FIELDS
    }
    return dict(sorted(fields.items()))


def task_key(
    program,
    model,
    options: ExplorationOptions,
    *,
    kind: str = "program",
    probe: str | None = None,
) -> str:
    """The content hash identifying one suite task's result."""
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "code": _code_version(),
        "kind": kind,
        "probe": probe,
        "program": program_fingerprint(program),
        "model": model_fingerprint(model),
        "options": options_fingerprint(options),
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def _env_max_mb() -> float | None:
    raw = os.environ.get(CACHE_MAX_MB_ENV)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


class ResultCache:
    """A flat directory of content-addressed suite task results.

    ``max_mb`` caps the directory's total size: after every
    :meth:`store` the least-recently-written entries (LRU by file
    mtime) are pruned until the cap holds again, so a long-lived
    server cannot grow the cache without bound.  ``None`` defers to
    ``REPRO_SUITE_CACHE_MAX_MB`` (unset = unlimited).
    """

    def __init__(
        self, root: str | None = None, max_mb: float | None = None
    ) -> None:
        self.root = (
            root
            if root is not None
            else os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        )
        self.max_mb = max_mb if max_mb is not None else _env_max_mb()

    def path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def keys(self) -> list[str]:
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.root)
            if name.endswith(".json")
        )

    def __len__(self) -> int:
        return len(self.keys())

    def load(self, key: str) -> dict | None:
        """The entry stored under ``key``, or None.  Unreadable or
        foreign files are treated as misses, never as errors — a cache
        must degrade to recomputation."""
        path = self.path(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("kind") != CACHE_ENTRY_KIND
            or entry.get("schema") != CACHE_SCHEMA_VERSION
            or entry.get("key") != key
        ):
            return None
        return entry

    def store(
        self,
        key: str,
        result,
        *,
        task: dict,
        observed: bool | None = None,
        created: float | None = None,
    ) -> str:
        """Persist ``result`` (a VerificationResult) under ``key``;
        returns the path written.  ``task`` is a small descriptive dict
        (id/kind/program/model) kept for humans inspecting the cache;
        the key alone addresses the entry."""
        os.makedirs(self.root, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": CACHE_ENTRY_KIND,
            "key": key,
            "created": time.time() if created is None else created,
            "task": task,
            "observed": observed,
            "result": to_dict(result),
        }
        path = self.path(key)
        # the tmp name carries the pid and thread id so no two writers
        # storing the same key ever share a tmp file; os.replace makes
        # the publish atomic either way (last writer wins, and a reader
        # only ever sees a complete entry)
        tmp = f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"
        try:
            with open(tmp, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - error path
                try:
                    os.remove(tmp)
                except OSError:
                    pass
        if self.max_mb is not None:
            self.prune()
        return path

    def prune(self, max_mb: float | None = None) -> int:
        """Evict least-recently-written entries until the directory is
        within ``max_mb`` (defaults to the cache's cap); returns how
        many entries were removed.  Concurrent pruners racing over the
        same files are harmless — a vanished file just counts as
        already pruned."""
        cap = self.max_mb if max_mb is None else max_mb
        if cap is None:
            return 0
        entries = []
        for key in self.keys():
            path = self.path(key)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        budget = cap * 1024 * 1024
        removed = 0
        for _, size, path in sorted(entries):
            if total <= budget:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            removed += 1
        return removed

    def evict(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        try:
            os.remove(self.path(key))
        except FileNotFoundError:
            return False
        return True

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        removed = 0
        for key in self.keys():
            removed += self.evict(key)
        return removed
