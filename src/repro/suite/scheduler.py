"""The batch execution engine: one persistent pool for a whole suite.

``run_suite`` takes an arbitrary mix of tasks — litmus tests, programs,
declarative ``.cat`` models, per-task options — and drives them all
through **one** :class:`~repro.core.parallel.PoolSupervisor`, instead
of spinning a pool up and down per verification the way N individual
``verify(jobs=...)`` calls would.  Scheduling is task-level:

* Each task is first looked up in the content-addressed
  :class:`~repro.suite.cache.ResultCache`; hits are served without
  touching the pool (``--force`` recomputes, ``--rerun-failed``
  re-runs only tasks whose cached result has errors or truncation).
* Cache misses are sized with the paper's Knuth-style exploration
  estimator (:func:`~repro.core.estimate.estimate_explorations`) and
  dispatched **longest-expected-first**, so a big task never starts
  last and leaves the pool idling behind it.
* A task whose estimate crosses ``shard_threshold`` (and whose options
  permit it: no execution budget, deduplication on) is split into
  subtree shards via :func:`~repro.core.parallel.split_frontier`, the
  same mechanism ``verify(jobs=N)`` uses; small tasks run whole, one
  task per worker.  All shards and whole tasks share the same pool and
  the same PR-3 fault semantics (timeout, retry, serial fallback).

Results are finalised *as they complete* — merged (for sharded tasks),
probe-evaluated (for litmus tasks) with
:func:`~repro.litmus.runner.verdict_from_result` so batched verdicts
are bit-identical to individual :func:`~repro.litmus.run_litmus`
calls, and written to the cache immediately, so an interrupted suite
resumes where it stopped on the next run.
"""

from __future__ import annotations

import multiprocessing
import time

from dataclasses import dataclass, field, replace

from ..core.config import ExplorationOptions, resolve_options
from ..core.estimate import estimate_explorations
from ..core.explorer import Explorer, effective_jobs
from ..core.parallel import (
    PoolSupervisor,
    _maybe_inject_fault,
    _model_spec,
    split_frontier,
)
from ..core.report import from_dict
from ..core.result import VerificationResult
from ..lang import Program
from ..litmus.catalog import LitmusTest, get_litmus, litmus_names
from ..litmus.expectations import allowed
from ..litmus.runner import (
    LITMUS_DEFAULTS,
    LitmusVerdict,
    verdict_from_result,
)
from ..models import MemoryModel, get_model
from ..obs import NULL_OBSERVER, Observer
from ..obs.spans import NULL_TRACER, SpanTracer
from .cache import ResultCache, task_key
from .result import SuiteResult, TaskResult

#: estimated executions above which a task is worth sharding across
#: the pool rather than running whole on one worker
DEFAULT_SHARD_THRESHOLD = 2000

#: random walks per task for the scheduling estimate (ordering only,
#: so a rough figure is plenty)
DEFAULT_ESTIMATE_WALKS = 6


@dataclass(frozen=True)
class SuiteTask:
    """One unit of suite work: a program under a model with options.

    Build these with :func:`program_task`, :func:`litmus_task` or
    :func:`litmus_matrix` rather than directly — the constructors
    resolve model names and apply the right option defaults.
    """

    program: Program
    model: MemoryModel
    options: ExplorationOptions
    kind: str = "program"  #: "program" or "litmus"
    probe: LitmusTest | None = None  #: set iff kind == "litmus"

    @property
    def id(self) -> str:
        name = self.probe.name if self.probe is not None else self.program.name
        return f"{name}:{self.model.name}"


def program_task(
    program: Program,
    model: MemoryModel | str,
    *,
    options: ExplorationOptions | None = None,
    **option_overrides,
) -> SuiteTask:
    """A plain verification task.  Defaults ``stop_on_error=False`` so
    the suite reports full counts (compare/bench semantics); pass
    ``stop_on_error=True`` for fail-fast."""
    model = get_model(model) if isinstance(model, str) else model
    options = resolve_options(options, option_overrides, stop_on_error=False)
    return SuiteTask(program=program, model=model, options=options)


def litmus_task(
    test: LitmusTest | str,
    model: MemoryModel | str,
    *,
    options: ExplorationOptions | None = None,
    **option_overrides,
) -> SuiteTask:
    """A litmus verdict task, with :func:`~repro.litmus.run_litmus`'s
    option defaults so batched verdicts match individual calls."""
    if isinstance(test, str):
        test = get_litmus(test)
    model = get_model(model) if isinstance(model, str) else model
    options = resolve_options(options, option_overrides, **LITMUS_DEFAULTS)
    if not options.collect_executions:
        raise ValueError("litmus evaluation needs collect_executions")
    return SuiteTask(
        program=test.program,
        model=model,
        options=options,
        kind="litmus",
        probe=test,
    )


def litmus_matrix(
    tests=None,
    models=("sc", "tso", "ra"),
    *,
    options: ExplorationOptions | None = None,
    **option_overrides,
) -> list[SuiteTask]:
    """The full ``tests × models`` grid as suite tasks (every catalog
    test when ``tests`` is None)."""
    names = litmus_names() if tests is None else list(tests)
    grid = []
    for entry in names:
        test = entry if isinstance(entry, LitmusTest) else get_litmus(entry)
        for model in models:
            grid.append(
                litmus_task(
                    test, model, options=options, **option_overrides
                )
            )
    return grid


# -- worker side -----------------------------------------------------------


def _run_suite_job(payload):
    """Pool entry point: run one whole task or one subtree shard.

    ``payload`` is ``(job, attempt, program, model_spec, options,
    prefix, collect_metrics, span_ctx)``; ``prefix`` None means explore
    the whole program.  Returns ``(result, metrics snapshot | None,
    spans | None)`` — when a span context rides in, the worker's
    exploration (and every phase inside it, via the registry's tracer)
    is recorded as spans parented on the coordinator's suite-task span
    and shipped back for the coordinator to absorb.
    """
    job, attempt, program, model_spec, options, prefix, collect, \
        span_ctx = payload
    _maybe_inject_fault(job, attempt)
    tracer = NULL_TRACER
    if span_ctx is not None:
        tracer = SpanTracer(
            trace_id=span_ctx["trace_id"],
            remote_parent=span_ctx["span_id"],
        )
    observer = (
        Observer(tracer=tracer)
        if collect or tracer.enabled
        else NULL_OBSERVER
    )
    try:
        with tracer.span(
            f"explore:{program.name}", cat="worker", job=job, attempt=attempt
        ):
            result = Explorer(
                program, model_spec, options, observer=observer, root=prefix
            ).run()
    finally:
        observer.close()
    snapshot = observer.metrics_snapshot() if collect else None
    spans = tracer.snapshot() if tracer.enabled else None
    return result, snapshot, spans


# -- coordinator side ------------------------------------------------------


@dataclass
class _Plan:
    """A cache-miss task scheduled for execution."""

    pos: int  #: index into the caller's task list
    task: SuiteTask
    key: str
    estimate: float = 0.0
    prefixes: list | None = None  #: subtree shards; None = run whole
    partial: VerificationResult | None = None  #: accumulated while splitting
    pieces: dict = field(default_factory=dict)  #: shard index -> result
    remaining: int = 0  #: outstanding pool jobs
    span: dict | None = None  #: the open suite-task span (tracer on)


def _expected(task: SuiteTask) -> bool | None:
    if task.kind != "litmus" or task.probe is None:
        return None
    try:
        return allowed(task.probe.name, task.model.name)
    except KeyError:
        return None


def _cached_task_result(
    task: SuiteTask, key: str, entry: dict
) -> TaskResult | None:
    """Rebuild a TaskResult from a cache entry, or None when the entry
    cannot serve this task (e.g. a litmus task whose entry predates
    verdict storage)."""
    observed = entry.get("observed")
    if task.kind == "litmus" and not isinstance(observed, bool):
        return None
    result = from_dict(entry["result"])
    verdict = None
    if task.kind == "litmus":
        verdict = LitmusVerdict(
            test=task.probe.name,
            model=task.model.name,
            observed=observed,
            executions=result.executions,
            duplicates=result.duplicates,
            elapsed=result.elapsed,
        )
    return TaskResult(
        task_id=task.id,
        kind=task.kind,
        program=task.program.name,
        model=task.model.name,
        key=key,
        cached=True,
        shards=0,
        result=result,
        verdict=verdict,
        expected=_expected(task),
    )


def run_suite(
    tasks,
    *,
    jobs: int | None = None,
    cache=None,
    force: bool = False,
    rerun_failed: bool = False,
    task_timeout: float | None = None,
    task_retries: int = 2,
    observer=NULL_OBSERVER,
    shard_threshold: int = DEFAULT_SHARD_THRESHOLD,
    estimate_walks: int = DEFAULT_ESTIMATE_WALKS,
    seed: int = 0,
    supervisor: PoolSupervisor | None = None,
) -> SuiteResult:
    """Run every task in ``tasks`` through one shared worker pool.

    ``jobs`` follows :func:`~repro.core.explorer.effective_jobs`
    resolution (None → ``REPRO_JOBS`` or serial; 0 → one per CPU).
    ``cache`` is a :class:`ResultCache`, a directory path, None for
    the default store (``REPRO_SUITE_CACHE_DIR`` or
    ``.repro/suite-cache``), or False to disable caching.  ``force``
    recomputes everything; ``rerun_failed`` recomputes only tasks whose
    cached result has errors or was truncated.  ``task_timeout`` /
    ``task_retries`` are the pool's PR-3 fault knobs.

    ``supervisor`` lets a long-lived caller (the verification service)
    pass its own persistent :class:`~repro.core.parallel.PoolSupervisor`
    so worker processes stay warm across suites; the caller owns its
    lifetime, and this run sets its timeout/retry knobs and observer.
    """
    tasks = list(tasks)
    start = time.perf_counter()
    jobs = effective_jobs(ExplorationOptions(jobs=jobs))
    store = None
    if cache is not False:
        store = cache if isinstance(cache, ResultCache) else ResultCache(cache)

    obs = observer
    tracer = obs.tracer
    results: dict[int, TaskResult] = {}
    plans: list[_Plan] = []

    # -- cache pass -------------------------------------------------------
    for pos, task in enumerate(tasks):
        key = task_key(
            task.program,
            task.model,
            task.options,
            kind=task.kind,
            probe=task.probe.name if task.probe is not None else None,
        )
        served = None
        if store is not None and not force:
            entry = store.load(key)
            if entry is not None:
                served = _cached_task_result(task, key, entry)
                if served is not None and rerun_failed and (
                    served.result.errors or served.result.truncated
                ):
                    served = None
        if served is not None:
            results[pos] = served
            if tracer.enabled:
                # a near-instant span so cache hits show on the timeline
                tracer.end_span(
                    tracer.start_span(
                        f"suite:{task.id}", cat="task", cached=True
                    ),
                    executions=served.result.executions,
                )
            if obs.trace_enabled:
                obs.emit(
                    "suite_task_cached",
                    task=task.id,
                    executions=served.result.executions,
                )
        else:
            plans.append(_Plan(pos=pos, task=task, key=key))

    def _finalize(plan: _Plan, shards: int) -> None:
        task = plan.task
        merged = plan.partial
        for shard in sorted(plan.pieces):
            piece = plan.pieces[shard]
            merged = piece if merged is None else merged.merge(piece)
        if merged is None:  # pragma: no cover - every plan has >=1 piece
            raise RuntimeError(f"suite task {task.id} produced no result")
        if not task.options.collect_keys:
            merged.execution_records = []
        verdict = None
        if task.kind == "litmus":
            verdict = verdict_from_result(task.probe, task.model.name, merged)
        if store is not None:
            store.store(
                plan.key,
                merged,
                task={
                    "id": task.id,
                    "kind": task.kind,
                    "program": task.program.name,
                    "model": task.model.name,
                },
                observed=verdict.observed if verdict is not None else None,
            )
        results[plan.pos] = TaskResult(
            task_id=task.id,
            kind=task.kind,
            program=task.program.name,
            model=task.model.name,
            key=plan.key,
            cached=False,
            shards=shards,
            result=merged,
            verdict=verdict,
            expected=_expected(task),
        )
        if plan.span is not None:
            tracer.end_span(
                plan.span,
                shards=shards,
                executions=merged.executions,
                errors=len(merged.errors),
            )
            plan.span = None
        if obs.trace_enabled:
            obs.emit(
                "suite_task_done",
                task=task.id,
                shards=shards,
                executions=merged.executions,
                errors=len(merged.errors),
                observed=verdict.observed if verdict is not None else None,
            )

    # -- size and shard the misses ---------------------------------------
    for plan in plans:
        task = plan.task
        plan.estimate = estimate_explorations(
            task.program, task.model, walks=estimate_walks, seed=seed
        ).mean
        opts = task.options
        shardable = (
            jobs > 1
            and plan.estimate >= shard_threshold
            and opts.max_executions is None
            and opts.max_explored is None
            and opts.deduplicate is not False
        )
        if not shardable:
            continue
        split_options = replace(opts, collect_keys=True, jobs=None)
        frontier, partial, aborted = split_frontier(
            task.program,
            task.model,
            split_options,
            target=jobs * opts.oversubscription,
            observer=obs,
        )
        if aborted:
            # a limit fired during splitting; run whole for parity with
            # the serial semantics of that limit
            continue
        plan.partial = partial
        plan.prefixes = frontier  # may be empty: split finished the search

    # -- build the pool job list, longest-expected-first ------------------
    specs: dict[int, tuple] = {}  # job index -> (plan, shard, options, prefix)
    for plan in sorted(plans, key=lambda p: -p.estimate):
        task = plan.task
        if tracer.enabled:
            # a detached span per scheduled task: lifetimes overlap (N
            # tasks in flight on the pool), so the nesting stack can't
            # carry them; workers parent their explore spans on it
            plan.span = tracer.start_span(
                f"suite:{task.id}",
                cat="task",
                kind=task.kind,
                estimate=round(plan.estimate, 1),
            )
        if plan.prefixes is None:
            plan.remaining = 1
            specs[len(specs)] = (plan, 0, task.options, None)
        else:
            plan.remaining = len(plan.prefixes)
            split_options = replace(
                task.options, collect_keys=True, jobs=None
            )
            for shard, prefix in enumerate(plan.prefixes):
                specs[len(specs)] = (plan, shard, split_options, prefix)
            if not plan.prefixes:  # search completed during splitting
                _finalize(plan, shards=1)

    collect_metrics = obs.enabled
    snapshots: list[dict] = []
    acct: dict = {}
    fallback: list[int] = []

    def _complete(job: int, value) -> bool:
        plan, shard, _options, _prefix = specs[job]
        result, snapshot, spans = value
        if snapshot is not None:
            snapshots.append(snapshot)
        if spans:
            tracer.absorb(spans)
        if shard not in plan.pieces:
            plan.pieces[shard] = result
            plan.remaining -= 1
            if plan.remaining == 0:
                _finalize(
                    plan,
                    shards=1 if plan.prefixes is None else len(plan.prefixes),
                )
        return False  # a suite never stops early: other tasks are independent

    def _run_inline(job: int) -> None:
        plan, shard, options, prefix = specs[job]
        with tracer.span(
            f"explore:{plan.task.program.name}",
            cat="worker",
            parent=plan.span,  # mirror the pooled path's remote_parent
            job=job,
            task=plan.task.id,
            inline=True,
        ):
            result = Explorer(
                plan.task.program,
                plan.task.model,
                options,
                observer=obs,
                root=prefix,
            ).run()
        _complete(job, (result, None, None))

    pool_jobs = len(specs)
    if jobs > 1 and pool_jobs:
        if obs.trace_enabled:
            obs.emit("suite_dispatch", tasks=pool_jobs, jobs=jobs)
        if supervisor is not None:
            # a persistent supervisor shared across suites: this run
            # owns its knobs and observer, the caller owns its lifetime
            supervisor.task_timeout = task_timeout
            supervisor.task_retries = task_retries
            supervisor.obs = obs
        else:
            ctx = multiprocessing.get_context()
            supervisor = PoolSupervisor(
                ctx,
                processes=min(jobs, pool_jobs),
                task_timeout=task_timeout,
                task_retries=task_retries,
                observer=obs,
            )

        def _payload(job: int):
            plan, _shard, options, prefix = specs[job]
            model_spec = _model_spec(plan.task.model)
            span_ctx = (
                {
                    "trace_id": tracer.trace_id,
                    "span_id": plan.span["span_id"],
                }
                if plan.span is not None
                else None
            )

            def make(attempt: int):
                return (
                    job,
                    attempt,
                    plan.task.program,
                    model_spec,
                    options,
                    prefix,
                    collect_metrics,
                    span_ctx,
                )

            return make

        supervisor.run(
            _run_suite_job, {job: _payload(job) for job in specs}, _complete
        )
        acct = dict(supervisor.acct)
        acct["tasks_fallback"] = len(supervisor.fallback)
        for job in supervisor.fallback:
            _run_inline(job)
    else:
        for job in specs:
            _run_inline(job)

    if collect_metrics:
        for snapshot in snapshots:
            obs.metrics.merge_snapshot(snapshot)

    suite = SuiteResult(
        tasks=[results[pos] for pos in sorted(results)],
        jobs=jobs,
        elapsed=time.perf_counter() - start,
        pool_tasks=pool_jobs,
        acct=acct,
        meta={
            "cache_dir": store.root if store is not None else None,
            "forced": force,
        },
    )
    if obs.trace_enabled:
        obs.emit(
            "suite_done",
            tasks=len(suite.tasks),
            cache_hits=suite.cache_hits,
            pool_tasks=pool_jobs,
        )
    return suite
