"""Suite aggregates: per-task results, the suite-level rollup, and the
versioned suite manifest with diff/check gating.

A :class:`SuiteResult` is the batch analogue of a single
:class:`~repro.core.result.VerificationResult`: one
:class:`TaskResult` per (program × model) task, plus pool fault
accounting and cache statistics.  ``build_suite_manifest`` renders it
to the pure-JSON manifest stored (kind
:data:`~repro.obs.runstore.SUITE_MANIFEST_KIND`) in the same run store
as single-run manifests; ``diff_suites``/``check_suite`` mirror the
run-manifest gating — verdict or count changes are violations, timing
drift is a warning.
"""

from __future__ import annotations

import time

from dataclasses import dataclass, field

from ..core.result import VerificationResult
from ..litmus.runner import LitmusVerdict
from ..obs.runstore import SUITE_MANIFEST_KIND

#: schema carried by suite manifests (registered in
#: :data:`repro.obs.runstore.MANIFEST_SCHEMAS`)
SUITE_MANIFEST_SCHEMA = 1


@dataclass
class TaskResult:
    """One suite task's outcome and how it was obtained."""

    task_id: str
    kind: str  #: "litmus" or "program"
    program: str
    model: str
    key: str  #: content-address of the result (cache key)
    cached: bool  #: served from the result cache, not recomputed
    shards: int  #: pool jobs the task ran as (0 = cached, 1 = whole)
    result: VerificationResult
    verdict: LitmusVerdict | None = None
    expected: bool | None = None  #: literature expectation, when known

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def observed(self) -> bool | None:
        return self.verdict.observed if self.verdict is not None else None

    @property
    def deviates(self) -> bool:
        """Does a known literature expectation disagree with us?"""
        return (
            self.expected is not None
            and self.observed is not None
            and self.observed != self.expected
        )

    def row(self) -> str:
        mark = "cache" if self.cached else f"x{self.shards}"
        if self.verdict is not None:
            status = "observed" if self.verdict.observed else "forbidden"
            if self.deviates:
                status += " (DEVIATES)"
        else:
            status = "ok" if self.ok else f"{len(self.result.errors)} errors"
        return (
            f"{self.task_id:<32} {status:<20} "
            f"{self.result.executions:>8} exec  {mark:>6}  "
            f"{self.result.elapsed:8.3f}s"
        )


@dataclass
class SuiteResult:
    """The aggregate outcome of one suite run."""

    tasks: list[TaskResult]
    jobs: int
    elapsed: float
    pool_tasks: int = 0  #: jobs actually dispatched to the pool
    acct: dict = field(default_factory=dict)  #: supervisor fault counters
    meta: dict = field(default_factory=dict)

    @property
    def cache_hits(self) -> int:
        return sum(1 for t in self.tasks if t.cached)

    @property
    def cache_misses(self) -> int:
        return len(self.tasks) - self.cache_hits

    @property
    def errors(self) -> int:
        return sum(len(t.result.errors) for t in self.tasks)

    @property
    def deviations(self) -> list[TaskResult]:
        return [t for t in self.tasks if t.deviates]

    @property
    def ok(self) -> bool:
        """Every task explored cleanly and no verdict deviates from a
        known expectation (program tasks: no assertion violations)."""
        return not self.deviations and all(
            t.ok for t in self.tasks if t.kind != "litmus"
        )

    def task(self, task_id: str) -> TaskResult:
        for t in self.tasks:
            if t.task_id == task_id:
                return t
        raise KeyError(task_id)

    def summary(self) -> str:
        lines = [t.row() for t in self.tasks]
        lines.append(
            f"{len(self.tasks)} tasks, {self.cache_hits} cached, "
            f"{self.errors} errors, {len(self.deviations)} deviations, "
            f"jobs={self.jobs}, {self.elapsed:.3f}s"
        )
        faults = {k: v for k, v in self.acct.items() if v}
        if faults:
            lines.append(
                "faults: "
                + ", ".join(f"{k}={v}" for k, v in sorted(faults.items()))
            )
        return "\n".join(lines)


def build_suite_manifest(
    suite: SuiteResult,
    command: str | None = None,
    created: float | None = None,
) -> dict:
    """The pure-JSON manifest for one suite run, stored alongside
    single-run manifests (distinguished by ``kind``)."""
    created = time.time() if created is None else created
    tasks = []
    for t in suite.tasks:
        tasks.append(
            {
                "id": t.task_id,
                "kind": t.kind,
                "program": t.program,
                "model": t.model,
                "key": t.key,
                "cached": t.cached,
                "shards": t.shards,
                "observed": t.observed,
                "expected": t.expected,
                "ok": t.ok,
                "executions": t.result.executions,
                "blocked": t.result.blocked,
                "duplicates": t.result.duplicates,
                "errors": len(t.result.errors),
                "truncated": t.result.truncated,
                "elapsed": round(t.result.elapsed, 6),
            }
        )
    return {
        "schema": SUITE_MANIFEST_SCHEMA,
        "kind": SUITE_MANIFEST_KIND,
        "created": created,
        "created_iso": time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.localtime(created)
        ),
        "command": command,
        "jobs": suite.jobs,
        "elapsed": round(suite.elapsed, 6),
        "tasks": tasks,
        "totals": {
            "tasks": len(suite.tasks),
            "cache_hits": suite.cache_hits,
            "pool_tasks": suite.pool_tasks,
            "errors": suite.errors,
            "deviations": len(suite.deviations),
            "executions": sum(t.result.executions for t in suite.tasks),
            "blocked": sum(t.result.blocked for t in suite.tasks),
        },
        "acct": dict(suite.acct),
    }


def _tasks_by_id(manifest: dict) -> dict:
    return {t["id"]: t for t in manifest.get("tasks", [])}


#: per-task manifest fields whose change is a *verdict* change
_EXACT_FIELDS = ("observed", "ok", "executions", "blocked", "errors")


def diff_suites(a: dict, b: dict) -> dict:
    """A structured comparison of two suite manifests (old, new)."""
    at, bt = _tasks_by_id(a), _tasks_by_id(b)
    added = sorted(set(bt) - set(at))
    removed = sorted(set(at) - set(bt))
    changes: dict = {}
    for task_id in sorted(set(at) & set(bt)):
        old, new = at[task_id], bt[task_id]
        fields = {}
        for name in _EXACT_FIELDS + ("duplicates",):
            if old.get(name) != new.get(name):
                fields[name] = {"old": old.get(name), "new": new.get(name)}
        if fields:
            changes[task_id] = fields
    return {
        "added": added,
        "removed": removed,
        "changes": changes,
        "cache_hits": {
            "old": a.get("totals", {}).get("cache_hits"),
            "new": b.get("totals", {}).get("cache_hits"),
        },
        "elapsed": {"old": a.get("elapsed"), "new": b.get("elapsed")},
    }


def format_suite_diff(diff: dict) -> str:
    lines = []
    for task_id in diff["removed"]:
        lines.append(f"- {task_id} (removed)")
    for task_id in diff["added"]:
        lines.append(f"+ {task_id} (added)")
    for task_id, fields in diff["changes"].items():
        parts = ", ".join(
            f"{name} {delta['old']!r} -> {delta['new']!r}"
            for name, delta in sorted(fields.items())
        )
        lines.append(f"! {task_id}: {parts}")
    if not lines:
        lines.append("suites agree on every task")
    old_e, new_e = diff["elapsed"]["old"], diff["elapsed"]["new"]
    if old_e and new_e:
        lines.append(f"elapsed {old_e:.3f}s -> {new_e:.3f}s")
    return "\n".join(lines)


def check_suite(
    current: dict,
    baseline: dict,
    max_ratio: float = 1.5,
    min_seconds: float = 0.05,
) -> tuple[list[str], list[str]]:
    """Gate ``current`` against ``baseline``: returns (violations,
    warnings).  Verdict flips and exact-count mismatches on common
    tasks are violations, as are baseline tasks the current run lost;
    new tasks, duplicate drift and timing regressions are warnings."""
    violations: list[str] = []
    warnings: list[str] = []
    base, cur = _tasks_by_id(baseline), _tasks_by_id(current)
    for task_id in sorted(set(base) - set(cur)):
        violations.append(f"{task_id}: present in baseline, missing now")
    for task_id in sorted(set(cur) - set(base)):
        warnings.append(f"{task_id}: new task (not in baseline)")
    for task_id in sorted(set(base) & set(cur)):
        old, new = base[task_id], cur[task_id]
        for name in _EXACT_FIELDS:
            if old.get(name) != new.get(name):
                violations.append(
                    f"{task_id}: {name} changed "
                    f"{old.get(name)!r} -> {new.get(name)!r}"
                )
        if old.get("duplicates") != new.get("duplicates"):
            warnings.append(
                f"{task_id}: duplicates changed "
                f"{old.get('duplicates')!r} -> {new.get('duplicates')!r}"
            )
    old_e = baseline.get("elapsed") or 0.0
    new_e = current.get("elapsed") or 0.0
    if (
        old_e >= min_seconds
        and new_e >= min_seconds
        and new_e > old_e * max_ratio
    ):
        warnings.append(
            f"suite elapsed regressed {old_e:.3f}s -> {new_e:.3f}s "
            f"(> {max_ratio:.2f}x)"
        )
    return violations, warnings
