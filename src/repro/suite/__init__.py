"""repro.suite — batched suite execution through one shared pool.

The batch analogue of :func:`repro.verify`: describe a set of tasks
(litmus tests, programs, ``.cat`` models, per-task options), hand them
to :func:`run_suite`, and every exploration runs through a single
persistent :class:`~repro.core.parallel.PoolSupervisor` with
longest-expected-first scheduling, subtree sharding for large tasks,
and a content-addressed result cache that makes re-runs of unchanged
tasks free.  See docs/PARALLEL.md ("Batched suites") and
docs/API.md.

Typical use::

    from repro import run_suite
    from repro.suite import litmus_matrix

    suite = run_suite(litmus_matrix(models=("sc", "tso", "ra")), jobs=4)
    print(suite.summary())
"""

from .cache import (
    CACHE_DIR_ENV,
    CACHE_ENTRY_KIND,
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    ResultCache,
    task_key,
)
from .result import (
    SUITE_MANIFEST_SCHEMA,
    SuiteResult,
    TaskResult,
    build_suite_manifest,
    check_suite,
    diff_suites,
    format_suite_diff,
)
from .scheduler import (
    SuiteTask,
    litmus_matrix,
    litmus_task,
    program_task,
    run_suite,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_ENTRY_KIND",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "task_key",
    "SUITE_MANIFEST_SCHEMA",
    "SuiteResult",
    "TaskResult",
    "build_suite_manifest",
    "check_suite",
    "diff_suites",
    "format_suite_diff",
    "SuiteTask",
    "litmus_matrix",
    "litmus_task",
    "program_task",
    "run_suite",
]
