"""repro.backends — one uniform entry point for every exploration engine.

Every way this repo can explore a program's behaviours — the HMC
explorer (serial or subtree-parallel) and the five comparison baselines
— sits behind the :class:`Backend` protocol::

    from repro.backends import get_backend

    result = get_backend("hmc").run(program, "tso", options, observer)
    result = get_backend("hmc-parallel").run(program, "imm", options)
    result = get_backend("dpor").run(program)           # SC-only baseline

``run`` always returns a :class:`~repro.core.result.VerificationResult`;
baseline-specific counters (trace counts, sleep-set prunes, candidate
counts, ...) land in ``result.meta``, and baselines that count error
*traces* rather than collecting witnesses report placeholder
:class:`~repro.core.result.ErrorReport` entries (message only) so
``len(result.errors)``/``result.ok`` stay meaningful.

The legacy ``explore_*``/``brute_force`` functions (here and in
``repro.baselines``) still work but are deprecated shims over this
registry's implementations, emit :class:`DeprecationWarning`, and will
be removed in repro 2.0; the CLI and the benchmark harness route
through here exclusively.
"""

from __future__ import annotations

import time
import warnings
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from ..core.config import ExplorationOptions
from ..core.explorer import Explorer
from ..core.parallel import verify_parallel
from ..core.result import ErrorReport, VerificationResult
from ..lang import Program
from ..models import MemoryModel, get_model
from ..obs import NULL_OBSERVER


@runtime_checkable
class Backend(Protocol):
    """A verification engine with a uniform ``run`` signature."""

    name: str
    description: str
    #: model names the backend accepts; None = any registered model
    models: tuple[str, ...] | None

    def run(
        self,
        program: Program,
        model: MemoryModel | str = "sc",
        options: ExplorationOptions | None = None,
        observer=NULL_OBSERVER,
    ) -> VerificationResult:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class _FunctionBackend:
    """A backend defined by a plain runner function."""

    name: str
    description: str
    models: tuple[str, ...] | None
    _runner: Callable[..., VerificationResult]

    def run(
        self,
        program: Program,
        model: MemoryModel | str = "sc",
        options: ExplorationOptions | None = None,
        observer=NULL_OBSERVER,
    ) -> VerificationResult:
        model_name = model if isinstance(model, str) else model.name
        if self.models is not None and model_name not in self.models:
            raise ValueError(
                f"backend {self.name!r} only supports models "
                f"{'/'.join(self.models)}, not {model_name!r}"
            )
        # model objects (e.g. unregistered CatModels loaded from .cat
        # files) pass through untouched; runners that only need a name
        # normalise themselves
        return self._runner(
            program, model, options or ExplorationOptions(), observer
        )


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Add ``backend`` to the registry (name collisions overwrite)."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a backend by name, with a helpful error on typos."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown backend {name!r}; known: {known}") from None


def backend_names() -> list[str]:
    return sorted(_REGISTRY)


def all_backends() -> list[Backend]:
    return [_REGISTRY[name] for name in backend_names()]


# -- engine adapters ------------------------------------------------------


def _run_hmc(program, model_name, options, observer) -> VerificationResult:
    return Explorer(program, model_name, options, observer=observer).run()


def _run_hmc_parallel(program, model_name, options, observer) -> VerificationResult:
    # jobs resolves via options.jobs / REPRO_JOBS; a parallel backend
    # asked to run with one job degenerates to the serial explorer
    result = verify_parallel(program, model_name, options, observer=observer)
    if not options.collect_keys:
        # internal merge bookkeeping; strip at the API boundary (the
        # result stays mergeable only when the caller opted into keys)
        result.execution_records = []
    return result


def _placeholder_errors(count: int, tool: str) -> list[ErrorReport]:
    """Baselines count error traces; synthesise witness-less reports so
    ``ok``/``len(errors)`` behave uniformly across backends."""
    report = ErrorReport(
        message=f"assertion failure ({tool} baseline records no witness)",
        thread=-1,
        witness="",
    )
    return [report] * count


def _counter(values) -> Counter:
    return Counter({value: 1 for value in values})


def _progress_of(observer):
    return getattr(observer, "progress", None)


def _run_interleaving(program, model_name, options, observer) -> VerificationResult:
    from ..baselines import interleaving

    start = time.perf_counter()
    raw = interleaving.explore_interleavings(
        program,
        max_traces=options.max_explored,
        progress=_progress_of(observer),
    )
    result = VerificationResult(program=program.name, model=model_name)
    result.executions = raw.executions
    result.blocked = raw.blocked
    result.errors = _placeholder_errors(raw.errors, "interleaving")
    result.final_states = _counter(raw.final_states)
    result.elapsed = time.perf_counter() - start
    result.meta = {"traces": raw.traces, "steps": raw.steps}
    return result


def _run_dpor(program, model_name, options, observer) -> VerificationResult:
    from ..baselines import dpor

    start = time.perf_counter()
    raw = dpor.explore_dpor(
        program,
        max_traces=options.max_explored,
        progress=_progress_of(observer),
    )
    result = VerificationResult(program=program.name, model=model_name)
    result.executions = raw.executions
    result.blocked = raw.blocked
    result.errors = _placeholder_errors(raw.errors, "dpor")
    result.final_states = _counter(raw.final_states)
    result.elapsed = time.perf_counter() - start
    result.meta = {"traces": raw.traces, "steps": raw.steps, "slept": raw.slept}
    return result


def _run_storebuffer(program, model_name, options, observer) -> VerificationResult:
    from ..baselines import storebuffer

    start = time.perf_counter()
    raw = storebuffer.explore_store_buffers(
        program,
        model_name,
        max_traces=options.max_explored,
        progress=_progress_of(observer),
    )
    result = VerificationResult(program=program.name, model=model_name)
    result.executions = raw.executions
    result.blocked = raw.blocked
    result.errors = _placeholder_errors(raw.errors, "storebuffer")
    result.final_states = _counter(raw.final_states)
    result.elapsed = time.perf_counter() - start
    result.meta = {"traces": raw.traces, "steps": raw.steps}
    return result


def _run_statehash(program, model_name, options, observer) -> VerificationResult:
    from ..baselines import statehash

    start = time.perf_counter()
    raw = statehash.explore_with_state_hashing(
        program, progress=_progress_of(observer)
    )
    result = VerificationResult(program=program.name, model=model_name)
    # state hashing counts reachable *states*, not executions; the state
    # count is what the comparison tables report for it
    result.executions = raw.states
    result.blocked = raw.blocked
    result.errors = _placeholder_errors(raw.errors, "statehash")
    result.final_states = _counter(raw.final_states)
    result.elapsed = time.perf_counter() - start
    result.meta = {"steps": raw.steps, "terminal": raw.terminal}
    return result


def _run_exhaustive(program, model_name, options, observer) -> VerificationResult:
    from ..baselines import exhaustive

    start = time.perf_counter()
    raw = exhaustive.brute_force(
        program, model_name, progress=_progress_of(observer)
    )
    result = VerificationResult(program=program.name, model=model_name)
    result.executions = raw.executions
    result.blocked = raw.blocked
    result.errors = _placeholder_errors(raw.errors, "exhaustive")
    result.outcomes = _counter(raw.outcomes)
    result.final_states = _counter(raw.final_states)
    result.elapsed = time.perf_counter() - start
    result.meta = {"candidates": raw.candidates, "combos": raw.combos}
    return result


register_backend(
    _FunctionBackend(
        "hmc",
        "the HMC explorer (serial DFS over execution graphs)",
        None,
        _run_hmc,
    )
)
register_backend(
    _FunctionBackend(
        "hmc-parallel",
        "HMC with subtree work-sharding over a process pool",
        None,
        _run_hmc_parallel,
    )
)
register_backend(
    _FunctionBackend(
        "interleaving",
        "exhaustive SC interleaving enumeration (stateless baseline)",
        ("sc",),
        _run_interleaving,
    )
)
register_backend(
    _FunctionBackend(
        "dpor",
        "sleep-set dynamic partial-order reduction under SC",
        ("sc",),
        _run_dpor,
    )
)
register_backend(
    _FunctionBackend(
        "storebuffer",
        "operational TSO/PSO store-buffer machine enumeration",
        ("tso", "pso"),
        _run_storebuffer,
    )
)
register_backend(
    _FunctionBackend(
        "statehash",
        "SPIN-style explicit-state search with state hashing (SC)",
        ("sc",),
        _run_statehash,
    )
)
register_backend(
    _FunctionBackend(
        "exhaustive",
        "herd-style axiomatic brute force over all candidate executions",
        None,
        _run_exhaustive,
    )
)

#: legacy name -> (backend name, raw implementation path); reached via
#: module ``__getattr__`` so importing the package stays warning-free
_DEPRECATED_EXPLORERS = {
    "explore_interleavings": ("interleaving", "explore_interleavings"),
    "explore_dpor": ("dpor", "explore_dpor"),
    "explore_store_buffers": ("storebuffer", "explore_store_buffers"),
    "explore_with_state_hashing": ("statehash", "explore_with_state_hashing"),
    "brute_force": ("exhaustive", "brute_force"),
}


def __getattr__(name: str):
    """Deprecated ``explore_*``/``brute_force`` shims.

    These return the raw baseline implementations (per-baseline result
    types, not :class:`VerificationResult`) for drop-in compatibility,
    warn :class:`DeprecationWarning`, and will be **removed in repro
    2.0** — use ``get_backend(name).run(...)`` instead.
    """
    try:
        backend, attr = _DEPRECATED_EXPLORERS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    warnings.warn(
        f"repro.backends.{name} is deprecated and will be removed in "
        f"repro 2.0; use repro.backends.get_backend({backend!r})"
        f".run(...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    module = importlib.import_module(f"..baselines.{backend}", __name__)
    return getattr(module, attr)


__all__ = [
    "Backend",
    "all_backends",
    "backend_names",
    "get_backend",
    "register_backend",
]
