"""Finite-relation calculus used to express axiomatic memory models."""

from .builders import bracket, cross, from_order, optional, same, seq, union
from .relation import Relation

__all__ = [
    "Relation",
    "bracket",
    "cross",
    "from_order",
    "optional",
    "same",
    "seq",
    "union",
]
