"""Finite binary relations.

Axiomatic memory models are written in a small relational calculus
(union, composition, inverse, transitive closure, acyclicity, ...).
:class:`Relation` implements that calculus over arbitrary hashable
elements using adjacency sets.

The class is deliberately immutable-by-convention: all operators return
fresh relations, and in-place mutation is confined to :meth:`add`, which
the graph-construction code uses while a relation is still private.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable, Iterable, Iterator
from typing import Callable, TypeVar

Node = Hashable
T = TypeVar("T", bound=Node)


class Relation:
    """A finite binary relation, stored as successor adjacency sets."""

    __slots__ = ("_succ",)

    def __init__(self, pairs: Iterable[tuple[Node, Node]] = ()) -> None:
        self._succ: dict[Node, set[Node]] = {}
        for a, b in pairs:
            self.add(a, b)

    # -- construction ---------------------------------------------------

    @classmethod
    def identity(cls, nodes: Iterable[Node]) -> "Relation":
        """The identity relation on ``nodes``."""
        return cls((n, n) for n in nodes)

    @classmethod
    def product(cls, left: Iterable[Node], right: Iterable[Node]) -> "Relation":
        """The full cross product ``left x right``."""
        right_list = list(right)
        return cls((a, b) for a in left for b in right_list)

    @classmethod
    def total_order(cls, nodes: Iterable[Node]) -> "Relation":
        """The strict total order induced by the iteration order of ``nodes``."""
        ordered = list(nodes)
        rel = cls()
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                rel.add(a, b)
        return rel

    def add(self, a: Node, b: Node) -> None:
        """Add the pair ``(a, b)``; only for relations not yet shared."""
        self._succ.setdefault(a, set()).add(b)

    def copy(self) -> "Relation":
        dup = Relation()
        dup._succ = {a: set(bs) for a, bs in self._succ.items()}
        return dup

    def extended(self, pairs: Iterable[tuple[Node, Node]]) -> "Relation":
        """``self`` plus ``pairs``, sharing structure with ``self``.

        Copy-on-write: only the adjacency sets of sources appearing in
        ``pairs`` are duplicated; every other set is shared with
        ``self``.  This makes extending a large cached relation by a
        handful of pairs O(added), which is what the incremental
        derived-relation cache relies on.  Both ``self`` and the result
        must stay immutable afterwards (``add`` would corrupt the
        sharing) — the usual immutable-by-convention rule, made
        load-bearing.
        """
        succ = dict(self._succ)
        owned: set[Node] = set()
        for a, b in pairs:
            if a in owned:
                succ[a].add(b)
            else:
                fresh = set(succ.get(a, ()))
                fresh.add(b)
                succ[a] = fresh
                owned.add(a)
        dup = Relation()
        dup._succ = succ
        return dup

    # -- queries ---------------------------------------------------------

    def __contains__(self, pair: tuple[Node, Node]) -> bool:
        a, b = pair
        return b in self._succ.get(a, ())

    def successors(self, a: Node) -> frozenset[Node]:
        return frozenset(self._succ.get(a, ()))

    def pairs(self) -> Iterator[tuple[Node, Node]]:
        for a, bs in self._succ.items():
            for b in bs:
                yield (a, b)

    def nodes(self) -> frozenset[Node]:
        seen: set[Node] = set()
        for a, bs in self._succ.items():
            if bs:
                seen.add(a)
                seen.update(bs)
        return frozenset(seen)

    def domain(self) -> frozenset[Node]:
        return frozenset(a for a, bs in self._succ.items() if bs)

    def range(self) -> frozenset[Node]:
        out: set[Node] = set()
        for bs in self._succ.values():
            out.update(bs)
        return frozenset(out)

    def __len__(self) -> int:
        return sum(len(bs) for bs in self._succ.values())

    def __bool__(self) -> bool:
        return any(self._succ.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return set(self.pairs()) == set(other.pairs())

    def __hash__(self) -> int:  # pragma: no cover - relations rarely hashed
        return hash(frozenset(self.pairs()))

    def __repr__(self) -> str:
        sample = sorted(map(repr, self.pairs()))[:6]
        suffix = ", ..." if len(self) > 6 else ""
        return f"Relation({{{', '.join(sample)}{suffix}}})"

    # -- algebra ----------------------------------------------------------

    def __or__(self, other: "Relation") -> "Relation":
        out = self.copy()
        for a, bs in other._succ.items():
            if bs:
                existing = out._succ.get(a)
                if existing is None:
                    out._succ[a] = set(bs)
                else:
                    existing.update(bs)
        return out

    def __and__(self, other: "Relation") -> "Relation":
        return Relation(p for p in self.pairs() if p in other)

    def __sub__(self, other: "Relation") -> "Relation":
        return Relation(p for p in self.pairs() if p not in other)

    def compose(self, other: "Relation") -> "Relation":
        """Relational composition ``self ; other``."""
        out = Relation()
        for a, bs in self._succ.items():
            targets: set[Node] = set()
            for b in bs:
                targets.update(other._succ.get(b, ()))
            if targets:
                out._succ[a] = targets
        return out

    def inverse(self) -> "Relation":
        return Relation((b, a) for a, b in self.pairs())

    def restrict(self, nodes: Iterable[Node]) -> "Relation":
        """Restrict both sides to ``nodes``."""
        keep = set(nodes)
        return Relation(
            (a, b) for a, b in self.pairs() if a in keep and b in keep
        )

    def filter(
        self,
        source: Callable[[Node], bool] | None = None,
        target: Callable[[Node], bool] | None = None,
    ) -> "Relation":
        """Keep pairs whose endpoints satisfy the given predicates."""
        out = Relation()
        for a, bs in self._succ.items():
            if source is not None and not source(a):
                continue
            kept = {b for b in bs if target is None or target(b)}
            if kept:
                out._succ[a] = kept
        return out

    def without_self_loops(self) -> "Relation":
        return Relation((a, b) for a, b in self.pairs() if a != b)

    # -- closures and order properties -------------------------------------

    def transitive_closure(self) -> "Relation":
        """The strict transitive closure ``self+``."""
        out = Relation()
        for start in list(self._succ):
            reach: set[Node] = set()
            stack = list(self._succ.get(start, ()))
            while stack:
                n = stack.pop()
                if n in reach:
                    continue
                reach.add(n)
                stack.extend(self._succ.get(n, ()))
            if reach:
                out._succ[start] = reach
        return out

    def reflexive_transitive_closure(self, nodes: Iterable[Node]) -> "Relation":
        """``self*`` over the universe ``nodes``."""
        return self.transitive_closure() | Relation.identity(nodes)

    def is_irreflexive(self) -> bool:
        return all(a not in bs for a, bs in self._succ.items())

    def is_acyclic(self) -> bool:
        """True iff the relation, viewed as a digraph, has no cycle."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[Node, int] = {}
        for root in self._succ:
            if colour.get(root, WHITE) != WHITE:
                continue
            stack: list[tuple[Node, Iterator[Node]]] = [
                (root, iter(self._succ.get(root, ())))
            ]
            colour[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    c = colour.get(nxt, WHITE)
                    if c == GREY:
                        return False
                    if c == WHITE:
                        colour[nxt] = GREY
                        stack.append((nxt, iter(self._succ.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return True

    def find_cycle(self) -> list[Node] | None:
        """Some cycle in the relation, as a node list (first == last),
        or None when acyclic.  Used to *explain* axiom violations."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[Node, int] = {}
        parent: dict[Node, Node] = {}
        for root in self._succ:
            if colour.get(root, WHITE) != WHITE:
                continue
            stack: list[tuple[Node, Iterator[Node]]] = [
                (root, iter(self._succ.get(root, ())))
            ]
            colour[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    c = colour.get(nxt, WHITE)
                    if c == GREY:
                        cycle = [nxt, node]
                        walk = node
                        while walk != nxt:
                            walk = parent[walk]
                            cycle.append(walk)
                        cycle.reverse()
                        return cycle
                    if c == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(self._succ.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def is_transitive(self) -> bool:
        return all(
            c in bs
            for a, bs in self._succ.items()
            for b in bs
            for c in self._succ.get(b, ())
        )

    def is_total_on(self, nodes: Iterable[Node]) -> bool:
        """True iff every two distinct nodes are related one way or the other."""
        ordered = list(nodes)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                if (a, b) not in self and (b, a) not in self:
                    return False
        return True

    def topological_order(self, nodes: Iterable[Node]) -> list[Node] | None:
        """A topological order of the relation's nodes from a single
        DFS (reverse postorder), or None when cyclic.

        One pass where :meth:`is_acyclic` followed by
        :meth:`topological_sort` would take three; roots are taken in
        ``nodes`` order, which must cover every node of the relation.
        Unlike :meth:`topological_sort` the tie-breaking is DFS
        completion order, not the lexicographically smallest order —
        callers that need the pinned deterministic order keep using
        :meth:`topological_sort`.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[Node, int] = {}
        post: list[Node] = []
        for root in nodes:
            if colour.get(root, WHITE) != WHITE:
                continue
            stack: list[tuple[Node, Iterator[Node]]] = [
                (root, iter(self._succ.get(root, ())))
            ]
            colour[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    c = colour.get(nxt, WHITE)
                    if c == GREY:
                        return None
                    if c == WHITE:
                        colour[nxt] = GREY
                        stack.append((nxt, iter(self._succ.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    post.append(node)
                    stack.pop()
        post.reverse()
        return post

    def topological_sort(self, nodes: Iterable[Node]) -> list[Node]:
        """A topological order of ``nodes`` consistent with the relation.

        Deterministic: among the nodes ready at any point, the one
        earliest in ``nodes`` is emitted first (a min-heap keyed by
        universe index), so the result is the lexicographically
        smallest topological order with respect to the given universe.

        Raises :class:`ValueError` when the restricted relation is
        cyclic.
        """
        universe = list(nodes)
        index = {n: i for i, n in enumerate(universe)}
        indeg = {n: 0 for n in universe}
        for a, b in self.pairs():
            if a in indeg and b in indeg and a != b:
                indeg[b] += 1
        ready = [index[n] for n, d in indeg.items() if d == 0]
        heapq.heapify(ready)
        out: list[Node] = []
        while ready:
            n = universe[heapq.heappop(ready)]
            out.append(n)
            for m in self._succ.get(n, ()):
                if m in indeg and m != n:
                    indeg[m] -= 1
                    if indeg[m] == 0:
                        heapq.heappush(ready, index[m])
        if len(out) != len(universe):
            raise ValueError("relation is cyclic on the given nodes")
        return out
