"""Convenience constructors and combinators for :class:`Relation`.

These mirror the operators used in cat-style memory-model definitions:
``seq`` for ``;``, ``union`` for ``|``, bracketed sets ``[S]`` via
:func:`bracket`, etc.  Keeping them as free functions keeps model
definitions close to their paper notation.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Callable

from .relation import Node, Relation


def union(*rels: Relation) -> Relation:
    """The union of any number of relations."""
    out = Relation()
    succ = out._succ
    for rel in rels:
        for a, bs in rel._succ.items():
            if bs:
                existing = succ.get(a)
                if existing is None:
                    succ[a] = set(bs)
                else:
                    existing.update(bs)
    return out


def seq(*rels: Relation) -> Relation:
    """Relational composition ``r1 ; r2 ; ... ; rn``."""
    if not rels:
        raise ValueError("seq() needs at least one relation")
    out = rels[0]
    for rel in rels[1:]:
        out = out.compose(rel)
    return out


def bracket(nodes: Iterable[Node]) -> Relation:
    """The cat-notation ``[S]``: identity restricted to a set."""
    return Relation.identity(nodes)


def optional(rel: Relation, nodes: Iterable[Node]) -> Relation:
    """``rel?`` — the relation or identity, over the universe ``nodes``."""
    return rel | Relation.identity(nodes)


def cross(left: Iterable[Node], right: Iterable[Node]) -> Relation:
    """``left * right`` in cat notation."""
    return Relation.product(left, right)


def from_order(ordered: Iterable[Node]) -> Relation:
    """The strict total order given by a sequence."""
    return Relation.total_order(ordered)


def same(key: Callable[[Node], object], nodes: Iterable[Node]) -> Relation:
    """All pairs of distinct nodes agreeing on ``key`` (e.g. same location)."""
    groups: dict[object, list[Node]] = {}
    for n in nodes:
        groups.setdefault(key(n), []).append(n)
    out = Relation()
    for members in groups.values():
        for a in members:
            for b in members:
                if a != b:
                    out.add(a, b)
    return out
