"""Benchmark workloads, harness, and experiment (table/figure) drivers."""

from . import workloads
from .harness import (
    Row,
    format_phases,
    print_table,
    rows_to_json,
    run_backend,
    run_brute_force,
    run_dpor,
    run_hmc,
    run_interleaving,
    run_store_buffer,
    serial_vs_parallel,
)
from .plots import f1_figure, render_series
from .tables import ALL_EXPERIMENTS

__all__ = [
    "ALL_EXPERIMENTS",
    "f1_figure",
    "format_phases",
    "render_series",
    "Row",
    "print_table",
    "rows_to_json",
    "run_backend",
    "run_brute_force",
    "run_dpor",
    "run_hmc",
    "run_interleaving",
    "run_store_buffer",
    "serial_vs_parallel",
    "workloads",
]
