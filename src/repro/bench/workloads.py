"""Parametric benchmark programs.

The synthetic workloads the stateless-model-checking literature
evaluates on (GenMC/HMC/Nidhugg/RCMC suites): store-buffering and
message-passing families, shared counters (ainc), CAS rotation
(casrot), fib-style data races, lastzero, the indexer hash table,
readers/writer — plus the lock and synchronisation workloads the
papers verify (ticket lock, TTAS, seqlock, Peterson, Dekker, barrier).

Every generator returns a :class:`~repro.lang.Program`; all are
verified (tests) and benchmarked (benchmarks/) against multiple
models and baselines.
"""

from __future__ import annotations

from ..events import FenceKind, MemOrder
from ..lang import Program, ProgramBuilder


def sb_n(n: int) -> Program:
    """n-thread store buffering: thread i writes x_i, reads x_{i+1}."""
    p = ProgramBuilder(f"sb({n})")
    regs = []
    for i in range(n):
        t = p.thread()
        t.store(f"x{i}", 1)
        regs.append(t.load(f"x{(i + 1) % n}"))
    p.observe(*regs)
    return p.build()


def mp_chain(n: int) -> Program:
    """A chain of n message passes: stage i awaits flag i, writes flag i+1."""
    p = ProgramBuilder(f"mp-chain({n})")
    t0 = p.thread()
    t0.store("data", 42)
    t0.store("flag0", 1)
    for i in range(n):
        t = p.thread()
        t.await_eq(f"flag{i}", 1)
        t.store(f"flag{i + 1}", 1)
    last = p.thread()
    last.await_eq(f"flag{n}", 1)
    d = last.load("data")
    p.observe(d)
    return p.build()


def ainc(n: int) -> Program:
    """n threads atomically increment a counter (GenMC's ainc)."""
    p = ProgramBuilder(f"ainc({n})")
    for _ in range(n):
        t = p.thread()
        t.fai("c", 1)
    checker = p.thread()
    v = checker.load("c")
    p.observe(v)
    return p.build()


def ninc(n: int) -> Program:
    """n threads *non-atomically* increment: load, add, store — the
    classic lost-update race, used for error finding."""
    p = ProgramBuilder(f"ninc({n})")
    for _ in range(n):
        t = p.thread()
        v = t.load("c")
        t.store("c", v + 1)
    return p.build()


def casrot(n: int) -> Program:
    """n threads try to rotate a cell i -> i+1 with CAS (casrot)."""
    p = ProgramBuilder(f"casrot({n})")
    regs = []
    for i in range(n):
        t = p.thread()
        regs.append(t.cas("x", i, i + 1))
    p.observe(*regs)
    return p.build()


def fib_bench(n: int) -> Program:
    """Two threads interleave n rounds of x = x + y / y = x + y
    (the fib_bench data-race workload)."""
    p = ProgramBuilder(f"fib({n})")
    t1 = p.thread()
    t1.repeat(n, lambda b: b.store("x", b.load("x") + b.load("y")))
    t2 = p.thread()
    t2.repeat(n, lambda b: b.store("y", b.load("x") + b.load("y")))
    return p.build()


def lastzero(n: int) -> Program:
    """Threads i=1..n write array[i] = array[i-1] + 1; a reader scans
    for the last zero (the lastzero workload)."""
    p = ProgramBuilder(f"lastzero({n})")
    reader = p.thread()
    regs = []
    for i in range(n + 1):
        regs.append(reader.load(("a", i)))
    p.observe(*regs)
    for i in range(1, n + 1):
        t = p.thread()
        prev = t.load(("a", i - 1))
        t.store(("a", i), prev + 1)
    return p.build()


def indexer(n: int, slots: int = 3) -> Program:
    """Threads CAS-insert into a small hash table, probing linearly
    (the classic indexer benchmark, shrunk to ``slots`` buckets)."""
    p = ProgramBuilder(f"indexer({n})")
    for i in range(n):
        t = p.thread()
        value = i + 1
        start = 0  # all threads hash to the same bucket: full contention

        def probe(b, depth: int, slot: int) -> None:
            ok = b.cas(("tab", slot), 0, value)
            if depth + 1 < slots:
                nxt = (slot + 1) % slots
                b.if_(ok.eq(0), lambda bb: probe(bb, depth + 1, nxt))

        probe(t, 0, start)
    return p.build()


def readers(n: int) -> Program:
    """One writer, n readers of the same location."""
    p = ProgramBuilder(f"readers({n})")
    w = p.thread()
    w.store("x", 1)
    regs = []
    for _ in range(n):
        t = p.thread()
        regs.append(t.load("x"))
    p.observe(*regs)
    return p.build()


# ---------------------------------------------------------------------------
# locks and synchronisation


def ticket_lock(n: int, order: MemOrder = MemOrder.RLX) -> Program:
    """n threads acquire a ticket lock once and assert mutual
    exclusion inside the critical section."""
    p = ProgramBuilder(f"ticket-lock({n})")
    for i in range(n):
        t = p.thread()
        ticket = t.fai("next", 1, order)
        serving = t.load("serving", order)
        t.assume(serving.eq(ticket))
        t.store("owner", i + 1)
        seen = t.load("owner")
        t.assert_(seen.eq(i + 1), "mutual exclusion violated")
        t.store("serving", ticket + 1, order)
    return p.build()


def ttas_lock(n: int, order: MemOrder = MemOrder.RLX) -> Program:
    """n threads take a test-and-set lock once (spin abstracted by
    assume, as in the SMC tools)."""
    p = ProgramBuilder(f"ttas-lock({n})")
    for i in range(n):
        t = p.thread()
        ok = t.cas("lock", 0, 1, order)
        t.assume(ok.eq(1))
        t.store("owner", i + 1)
        seen = t.load("owner")
        t.assert_(seen.eq(i + 1), "mutual exclusion violated")
        t.store("lock", 0, order)
    return p.build()


def seqlock(readers_count: int = 1, writers_count: int = 1) -> Program:
    """A sequence lock: writers bump the sequence number around their
    updates; readers retry (assume) until they observe a stable even
    sequence, then assert they saw a consistent snapshot."""
    p = ProgramBuilder(f"seqlock({readers_count},{writers_count})")
    for w in range(writers_count):
        t = p.thread()
        s = t.fai("seq", 1, MemOrder.ACQ_REL)
        t.assume((s % 2).eq(0))  # writers exclude each other
        t.store("d1", w + 1, MemOrder.REL)
        t.store("d2", w + 1, MemOrder.REL)
        t.fai("seq", 1, MemOrder.ACQ_REL)
    for _ in range(readers_count):
        t = p.thread()
        s1 = t.load("seq", MemOrder.ACQ)
        d1 = t.load("d1", MemOrder.ACQ)
        d2 = t.load("d2", MemOrder.ACQ)
        s2 = t.load("seq", MemOrder.ACQ)
        t.assume(s1.eq(s2).and_((s1 % 2).eq(0)))
        t.assert_(d1.eq(d2), "torn seqlock read")
    return p.build()


def peterson(fenced: bool = False) -> Program:
    """Peterson's mutual exclusion for two threads.  Correct under SC;
    broken under TSO and weaker unless the store-load fence is added
    (``fenced``) — the canonical fence-placement verification demo."""
    p = ProgramBuilder(f"peterson({'fenced' if fenced else 'plain'})")
    for i in (0, 1):
        j = 1 - i
        t = p.thread()
        t.store(f"flag{i}", 1)
        t.store("turn", j)
        if fenced:
            t.fence(FenceKind.MFENCE)
        other = t.load(f"flag{j}")
        turn = t.load("turn")
        t.assume(other.eq(0).or_(turn.eq(i)))
        t.store("owner", i + 1)
        seen = t.load("owner")
        t.assert_(seen.eq(i + 1), "mutual exclusion violated")
        t.store(f"flag{i}", 0)
    return p.build()


def dekker(fenced: bool = False) -> Program:
    """The Dekker/SB-style entry protocol: each thread enters only if
    it sees the other's flag down.  Under SC at most one enters; under
    TSO both can, unless fenced."""
    p = ProgramBuilder(f"dekker({'fenced' if fenced else 'plain'})")
    for i in (0, 1):
        j = 1 - i
        t = p.thread()
        t.store(f"flag{i}", 1)
        if fenced:
            t.fence(FenceKind.MFENCE)
        other = t.load(f"flag{j}")
        t.if_(
            other.eq(0),
            lambda b, i=i: (
                b.store("owner", i + 1),
                b.assert_(b.load("owner").eq(i + 1), "both entered"),
            )
            and None,
        )
    return p.build()


def barrier(n: int, order: MemOrder = MemOrder.ACQ_REL) -> Program:
    """A sense-less counter barrier: every thread publishes x_i, joins
    the barrier, then asserts it sees every other thread's value."""
    p = ProgramBuilder(f"barrier({n})")
    for i in range(n):
        t = p.thread()
        t.store(f"x{i}", 1, MemOrder.REL)
        t.fai("count", 1, order)
        got = t.load("count", MemOrder.ACQ)
        t.assume(got.eq(n))
        for j in range(n):
            if j != i:
                v = t.load(f"x{j}", MemOrder.ACQ)
                t.assert_(v.eq(1), "barrier did not synchronise")
    return p.build()


#: every workload family, for sweep-style experiments and the CLI;
#: entries take the size parameter n (ignored where it is not natural)
FAMILIES = {
    "sb": sb_n,
    "mp-chain": mp_chain,
    "ainc": ainc,
    "ninc": ninc,
    "casrot": casrot,
    "fib": fib_bench,
    "lastzero": lastzero,
    "indexer": indexer,
    "readers": readers,
    "ticket-lock": ticket_lock,
    "ttas-lock": ttas_lock,
    "seqlock": lambda n: seqlock(max(1, n - 1), 1),
    "barrier": barrier,
    "peterson": lambda n: peterson(False),
    "peterson-fenced": lambda n: peterson(True),
    "dekker": lambda n: dekker(False),
    "dekker-fenced": lambda n: dekker(True),
}
