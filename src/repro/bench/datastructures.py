"""Lock-free and locked data-structure workloads.

Bounded, array-backed encodings of the classic concurrent structures
the SMC literature verifies: a Treiber stack, a bounded MPMC queue, an
exchange-based spinlock and a reader/writer lock.  Each comes with the
safety assertions that make verification meaningful (no lost or
duplicated elements, mutual exclusion, reader consistency).

Memory layout conventions: a "pointer" is an integer index into a
named array, 0 meaning null; element payloads live in `val[i]`.
"""

from __future__ import annotations

from ..events import MemOrder
from ..lang import Program, ProgramBuilder


def treiber_stack(pushers: int = 2, poppers: int = 1, order: MemOrder = MemOrder.ACQ_REL) -> Program:
    """Treiber stack: CAS-on-top push/pop.

    Each pusher owns node ``i+1`` and pushes it once (single CAS
    attempt; contention shows up as blocked executions, as in the
    tools' single-iteration unrollings).  Each popper pops at most
    once and asserts it never observes a node whose payload was not
    yet written — the property that fails if push's CAS is not a
    release or pop's read not an acquire.
    """
    p = ProgramBuilder(f"treiber({pushers},{poppers})")
    for i in range(pushers):
        node = i + 1
        t = p.thread()
        top = t.load("top", order)
        t.store(("nxt", node), top)           # node.next := top
        t.store(("val", node), 10 + node)     # payload
        ok = t.cas("top", top, node, order)
        t.assume(ok.eq(1))                    # single attempt
    for _ in range(poppers):
        t = p.thread()
        top = t.load("top", order)
        t.if_(
            top.ne(0),
            lambda b, top=top: _pop_body(b, top, order),
        )
    return p.build()


def _pop_body(b, top, order) -> None:
    nxt = b.load(("nxt", top))
    ok = b.cas("top", top, nxt, order)
    b.assume(ok.eq(1))
    payload = b.load(("val", top))
    b.assert_(payload.eq(top + 10), "popped a node before its payload was written")


def mp_queue(producers: int = 1, consumers: int = 1, capacity: int = 2,
             order: MemOrder = MemOrder.ACQ_REL) -> Program:
    """A bounded MPMC queue over an array with FAI-allocated slots.

    Producers claim a slot with FAI(head) and publish data then a
    ready flag; consumers claim with FAI(tail), await readiness and
    assert the data matches the slot — lost updates or reordered
    publication fail the assertion.
    """
    p = ProgramBuilder(f"mpq({producers},{consumers})")
    for i in range(producers):
        t = p.thread()
        slot = t.fai("head", 1, order)
        t.assume(slot.lt(capacity))
        t.store(("data", slot), slot + 100)
        t.store(("ready", slot), 1, MemOrder.REL)
    for _ in range(consumers):
        t = p.thread()
        slot = t.fai("tail", 1, order)
        t.assume(slot.lt(capacity))
        flag = t.load(("ready", slot), MemOrder.ACQ)
        t.assume(flag.eq(1))
        data = t.load(("data", slot))
        t.assert_(data.eq(slot + 100), "queue slot read before publication")
    return p.build()


def xchg_spinlock(n: int = 2, order: MemOrder = MemOrder.ACQ_REL) -> Program:
    """A spinlock taken with atomic exchange (single attempt, spin
    abstracted by assume), plus the usual ownership assertion."""
    p = ProgramBuilder(f"xchg-lock({n})")
    for i in range(n):
        t = p.thread()
        old = t.xchg("lock", 1, order)
        t.assume(old.eq(0))
        t.store("owner", i + 1)
        seen = t.load("owner")
        t.assert_(seen.eq(i + 1), "mutual exclusion violated")
        t.store("lock", 0, MemOrder.REL if order != MemOrder.RLX else order)
    return p.build()


def rw_lock(readers: int = 1, writers: int = 1, order: MemOrder = MemOrder.ACQ_REL) -> Program:
    """A reader/writer lock over a readers counter and a writer flag.

    Writers CAS the flag, then write two cells; readers register in
    the counter, check no writer is active, and assert they see a
    consistent snapshot of the two cells.
    """
    p = ProgramBuilder(f"rwlock({readers},{writers})")
    for w in range(writers):
        t = p.thread()
        ok = t.cas("wflag", 0, 1, order)
        t.assume(ok.eq(1))
        r = t.load("rcount", order)
        t.assume(r.eq(0))  # wait until no readers
        t.store("c1", w + 1, order)
        t.store("c2", w + 1, order)
        t.store("wflag", 0, order)
    for _ in range(readers):
        t = p.thread()
        t.fai("rcount", 1, order)
        flag = t.load("wflag", order)
        t.assume(flag.eq(0))
        a = t.load("c1", order)
        b = t.load("c2", order)
        t.assert_(a.eq(b), "torn read under rwlock")
        t.fai("rcount", -1, order)
    return p.build()


DATA_STRUCTURES = {
    "treiber": treiber_stack,
    "mpq": mp_queue,
    "xchg-lock": xchg_spinlock,
    "rwlock": rw_lock,
}
