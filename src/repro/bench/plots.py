"""ASCII rendering of the scaling figures.

The evaluation's figures are series of (n, count) points per tool;
:func:`render_series` draws them as a log-scale ASCII chart so the
"curve leaves the page" shape is visible directly in terminal output
and in EXPERIMENTS.md, with no plotting dependencies.
"""

from __future__ import annotations

import math

#: a named series: {label: [(x, y), ...]}
Series = dict[str, list[tuple[int, float]]]

_MARKS = "ox+*#@%&"


def render_series(
    series: Series,
    width: int = 60,
    height: int = 16,
    title: str = "",
    ylabel: str = "count (log scale)",
) -> str:
    """Draw the series on a shared log-y ASCII canvas."""
    points = [
        (x, y) for pts in series.values() for x, y in pts if y > 0
    ]
    if not points:
        return f"{title}: (no data)"
    xs = sorted({x for x, _ in points})
    ymax = max(y for _, y in points)
    ymin = min(y for _, y in points)
    log_min = math.floor(math.log10(max(ymin, 1)))
    log_max = math.ceil(math.log10(ymax)) or 1
    span = max(log_max - log_min, 1)

    def row_of(y: float) -> int:
        frac = (math.log10(max(y, 1)) - log_min) / span
        return min(height - 1, max(0, round(frac * (height - 1))))

    def col_of(x: int) -> int:
        if len(xs) == 1:
            return 0
        frac = (xs.index(x)) / (len(xs) - 1)
        return min(width - 1, round(frac * (width - 1)))

    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for mark, (label, pts) in zip(_MARKS, sorted(series.items())):
        legend.append(f"{mark} = {label}")
        for x, y in pts:
            if y <= 0:
                continue
            canvas[height - 1 - row_of(y)][col_of(x)] = mark

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(canvas):
        level = log_max - round(i * span / (height - 1))
        prefix = f"10^{level:<2d} |" if i % 4 == 0 else "      |"
        lines.append(prefix + "".join(row))
    lines.append("      +" + "-" * width)
    axis = " " * (7 + width)
    for x in xs:
        pos = col_of(x)
        axis = axis[: 7 + pos] + str(x) + axis[7 + pos + len(str(x)):]
    lines.append(axis + "   n")
    lines.append("      " + "   ".join(legend))
    lines.append(f"      y: {ylabel}")
    return "\n".join(lines)


def f1_figure(rows) -> str:
    """Render experiment F1's rows as the scaling figure."""
    series: Series = {}
    for row in rows:
        if not row.bench.startswith("sb("):
            continue
        n = int(row.bench[3:-1])
        if row.tool == "hmc":
            label = f"hmc ({row.model})"
            value = float(row.executions)
        else:
            label = row.tool
            value = float(row.extra.get("traces", row.executions))
        series.setdefault(label, []).append((n, value))
    return render_series(
        series, title="F1: store-buffering family, states explored vs n"
    )
