"""Experiment definitions: one function per table/figure in DESIGN.md.

Every function returns the rows it printed, so benchmarks and tests
can assert on the regenerated numbers.  EXPERIMENTS.md records a full
run of these.
"""

from __future__ import annotations

from ..litmus import MODELS, all_litmus_tests, allowed, run_litmus
from . import workloads as W
from .harness import (
    Row,
    print_table,
    run_brute_force,
    run_dpor,
    run_hmc,
    run_interleaving,
    run_store_buffer,
    serial_vs_parallel,
)

#: a compact model set used by the wide sweeps
SWEEP_MODELS = ("sc", "tso", "ra", "imm", "armv8", "power")


def t1_litmus_matrix(models=MODELS) -> list[tuple[str, str, bool, bool, int]]:
    """T1: per-litmus verdicts across models vs the literature."""
    rows = []
    print("\n== T1: litmus verdicts (observed vs literature) ==")
    for test in all_litmus_tests():
        for model in models:
            verdict = run_litmus(test, model)
            expected = allowed(test.name, model)
            rows.append(
                (test.name, model, verdict.observed, expected, verdict.executions)
            )
            mark = "ok" if verdict.observed == expected else "DEVIATES"
            print(
                f"{test.name:16s} {model:9s} "
                f"{'allowed  ' if verdict.observed else 'forbidden'} "
                f"(lit: {'allowed' if expected else 'forbidden'}) "
                f"execs={verdict.executions:<4d} {mark}"
            )
    return rows


def t2_vs_bruteforce(models=("sc", "tso", "imm", "power")) -> list[Row]:
    """T2: HMC vs herd-style brute force on the litmus corpus."""
    rows: list[Row] = []
    for test in all_litmus_tests():
        for model in models:
            rows.append(run_hmc(test.program, model))
            rows.append(run_brute_force(test.program, model))
    return print_table("T2: HMC vs axiomatic brute force", rows)


def run_state_hash(program) -> Row:
    """Row adapter for the SPIN-style stateful baseline."""
    import time

    from ..baselines.statehash import explore_with_state_hashing

    start = time.perf_counter()
    result = explore_with_state_hashing(program)
    return Row(
        bench=program.name,
        model="sc",
        tool="state-hash",
        executions=len(result.final_states),
        blocked=result.blocked,
        errors=result.errors,
        time=time.perf_counter() - start,
        extra={"states": result.states},
    )


def t3_vs_operational(sizes=(2, 3)) -> list[Row]:
    """T3: HMC vs interleaving/DPOR/store-buffer/state-hash enumeration."""
    rows: list[Row] = []
    for n in sizes:
        for program in (W.sb_n(n), W.ainc(n), W.readers(n)):
            rows.append(run_hmc(program, "sc"))
            rows.append(run_interleaving(program))
            rows.append(run_dpor(program))
            rows.append(run_state_hash(program))
            rows.append(run_hmc(program, "tso", tool_name="hmc"))
            rows.append(run_store_buffer(program, "tso"))
            rows.append(run_hmc(program, "pso", tool_name="hmc"))
            rows.append(run_store_buffer(program, "pso"))
    return print_table("T3: HMC vs operational baselines", rows)


def t4_synthetic(models=("tso", "imm")) -> list[Row]:
    """T4: the synthetic suite under hardware models."""
    programs = [
        W.ainc(3),
        W.ninc(3),
        W.casrot(3),
        W.fib_bench(2),
        W.lastzero(2),
        W.indexer(2),
        W.readers(3),
    ]
    rows = [run_hmc(p, m) for p in programs for m in models]
    return print_table("T4: synthetic suite", rows)


def t5_locks(models=("sc", "tso", "imm")) -> list[Row]:
    """T5: lock/synchronisation verification per model."""
    programs = [
        W.ticket_lock(2),
        W.ticket_lock(3),
        W.ttas_lock(2),
        W.ttas_lock(3),
        W.seqlock(1, 1),
        W.peterson(False),
        W.peterson(True),
        W.dekker(False),
        W.dekker(True),
        W.barrier(2),
    ]
    rows = [run_hmc(p, m) for p in programs for m in models]
    return print_table("T5: locks and synchronisation", rows)


def f1_scaling(max_n=4, trace_budget=100_000) -> list[Row]:
    """F1: executions/time vs N for HMC and the baselines.

    The operational baselines get a trace budget: hitting it is the
    figure's message (their curves leave the page while HMC's follows
    the execution count).
    """
    rows: list[Row] = []
    for n in range(2, max_n + 1):
        program = W.sb_n(n)
        rows.append(run_hmc(program, "sc"))
        rows.append(run_hmc(program, "tso"))
        rows.append(run_interleaving(program, max_traces=trace_budget))
        rows.append(
            run_store_buffer(program, "tso", max_traces=trace_budget)
        )
    for n in range(2, max_n + 1):
        rows.append(run_hmc(W.ainc(n), "imm"))
        rows.append(run_interleaving(W.ainc(n), max_traces=trace_budget))
    return print_table("F1: scaling with N", rows)


def f2_model_comparison(n=3) -> list[Row]:
    """F2: the same programs across progressively weaker models."""
    rows: list[Row] = []
    for program in (W.sb_n(n), W.mp_chain(2), W.casrot(n)):
        for model in ("sc", "tso", "pso", "ra", "rc11", "imm", "armv8", "power", "coherence"):
            rows.append(run_hmc(program, model))
    return print_table("F2: model comparison (weaker ⊇ stronger)", rows)


def f3_load_buffering() -> list[Row]:
    """F3: LB outcomes exist only under hardware models, and only with
    dependency-prefix revisits."""
    from ..lang import ProgramBuilder

    def lb_chain(n: int):
        p = ProgramBuilder(f"lb-chain({n})")
        regs = []
        for i in range(n):
            t = p.thread()
            regs.append(t.load(f"x{i}"))
            t.store(f"x{(i + 1) % n}", 1)
        p.observe(*regs)
        return p.build()

    rows: list[Row] = []
    for n in (2, 3):
        program = lb_chain(n)
        for model in ("rc11", "imm", "armv8", "power"):
            rows.append(run_hmc(program, model))
        rows.append(
            run_hmc(
                program,
                "imm",
                tool_name="hmc-no-revisit",
                backward_revisits=False,
            )
        )
    return print_table("F3: load-buffering capability", rows)


def a1_ablation_revisits() -> list[Row]:
    """A1: turning off backward revisits (incomplete) and the
    maximality check (duplicate blowup)."""
    rows: list[Row] = []
    for program in (W.sb_n(2), W.sb_n(3), W.ainc(3)):
        rows.append(run_hmc(program, "tso", tool_name="hmc"))
        rows.append(
            run_hmc(
                program, "tso", tool_name="no-revisits", backward_revisits=False
            )
        )
        rows.append(
            run_hmc(
                program, "tso", tool_name="no-maximality", maximality_check=False
            )
        )
    return print_table("A1: revisit ablations", rows)


def a2_ablation_incremental() -> list[Row]:
    """A2: incremental consistency checking off — same counts, more
    wasted exploration.  Instrumented, so the table shows *where* each
    variant spends its time (axiom checks vs replay vs revisits)."""
    rows: list[Row] = []
    for program in (W.ainc(3), W.casrot(3), W.sb_n(3)):
        rows.append(run_hmc(program, "imm", tool_name="hmc", instrument=True))
        rows.append(
            run_hmc(
                program,
                "imm",
                tool_name="no-incremental",
                instrument=True,
                incremental_checks=False,
            )
        )
    return print_table("A2: incremental-check ablation", rows)


def p1_parallel(jobs=4) -> list[Row]:
    """P1: the same workloads serial vs sharded over ``jobs`` workers.

    Executions/outcomes are identical by construction (the merge
    reconciles by canonical key); the speedup column is the
    hardware-dependent quantity — <1 on single-CPU hosts, where the
    pool is pure overhead (see docs/PARALLEL.md and EXPERIMENTS.md P1).
    """
    rows: list[Row] = []
    for program, model in (
        (W.sb_n(4), "tso"),
        (W.sb_n(5), "sc"),
        (W.ainc(4), "sc"),
    ):
        rows.extend(serial_vs_parallel(program, model, jobs))
    return print_table(f"P1: serial vs parallel (jobs={jobs})", rows)


def t6_datastructures(models=("sc", "tso", "imm", "armv8", "power")) -> list[Row]:
    """T6: lock-free data structures across models (extension suite)."""
    from .datastructures import mp_queue, rw_lock, treiber_stack, xchg_spinlock
    from ..events import MemOrder

    programs = [
        treiber_stack(2, 1),
        treiber_stack(2, 1, MemOrder.RLX),
        mp_queue(1, 1),
        xchg_spinlock(2),
        xchg_spinlock(2, MemOrder.RLX),
        rw_lock(1, 1),
    ]
    rows = [run_hmc(p, m) for p in programs for m in models]
    return print_table("T6: data structures", rows)


ALL_EXPERIMENTS = {
    "t1": t1_litmus_matrix,
    "t2": t2_vs_bruteforce,
    "t3": t3_vs_operational,
    "t4": t4_synthetic,
    "t5": t5_locks,
    "f1": f1_scaling,
    "f2": f2_model_comparison,
    "f3": f3_load_buffering,
    "a1": a1_ablation_revisits,
    "a2": a2_ablation_incremental,
    "t6": t6_datastructures,
    "p1": p1_parallel,
}
