"""Sleep-set dynamic partial-order reduction under SC.

A classical DPOR comparator: interleaving exploration pruned with
sleep sets.  Two steps commute when they are not *dependent* (same
location with at least one write, or same thread).  Sleep sets prune
schedules that only permute independent steps, so the trace count
lands between full interleaving enumeration and HMC's execution
count — which is the relationship the paper's comparison tables show
for trace-based tools vs execution-graph-based ones.

This is deliberately the simple sleep-set algorithm (not source- or
optimal-DPOR): it is a *baseline*, and its remaining redundancy
relative to HMC is the point being measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events import Label, ReadLabel, WriteLabel
from ..lang import Program, ReplayStatus, replay
from .interleaving import _State, _thread_step, _record, InterleavingResult


@dataclass
class DporResult(InterleavingResult):
    #: schedules pruned by sleep sets
    slept: int = 0


def _footprint(label: Label) -> tuple[str, bool] | None:
    """(location, is_write) of a step, or None for fences/local steps."""
    if isinstance(label, WriteLabel):
        return (label.loc, True)
    if isinstance(label, ReadLabel):
        # an exclusive read executes its write atomically: treat as write
        return (label.loc, label.exclusive)
    return None


def _dependent(a: tuple[str, bool] | None, b: tuple[str, bool] | None) -> bool:
    if a is None or b is None:
        return False
    return a[0] == b[0] and (a[1] or b[1])


def explore_dpor(
    program: Program, max_traces: int | None = None, progress=None
) -> DporResult:
    """Sleep-set DPOR exploration of ``program`` under SC.

    ``progress`` may be a :class:`repro.obs.ProgressReporter`; it is
    ticked once per maximal schedule.
    """
    result = DporResult(program.name)
    initial = _State(
        read_values=[() for _ in range(program.num_threads)],
        memory={},
        last_writer={},
        co={},
        rf={},
        labels={tid: [] for tid in range(program.num_threads)},
    )
    _visit(program, initial, frozenset(), result, max_traces, progress)
    if progress is not None:
        progress.finish(traces=result.traces, executions=result.executions)
    return result


def _next_of(program: Program, state: _State, tid: int):
    done = len(state.labels[tid])
    rep = replay(
        program.threads[tid],
        tid,
        state.read_values[tid],
        max_events=done + 2,
    )
    if len(rep.labels) > done:
        return rep, rep.labels[done]
    if rep.status is ReplayStatus.NEEDS_VALUE and rep.pending is not None:
        return rep, rep.pending
    return rep, None


def _visit(
    program: Program,
    state: _State,
    sleep: frozenset[int],
    result: DporResult,
    max_traces: int | None,
    progress=None,
) -> None:
    if max_traces is not None and result.traces >= max_traces:
        return
    pending: dict[int, tuple] = {}
    statuses = []
    for tid in range(program.num_threads):
        rep, label = _next_of(program, state, tid)
        statuses.append(rep.status)
        if label is not None:
            pending[tid] = (rep, label)
    runnable = [tid for tid in pending if tid not in sleep]
    if not pending:
        result.traces += 1
        if any(s is ReplayStatus.ERROR for s in statuses):
            result.errors += 1
        elif any(s is ReplayStatus.BLOCKED for s in statuses):
            result.blocked += 1
        else:
            _record(program, state, result)
        if progress is not None:
            progress.tick(
                traces=result.traces, executions=result.executions
            )
        return
    if not runnable:
        result.slept += 1
        return
    current_sleep = set(sleep)
    for tid in sorted(runnable):
        rep, label = pending[tid]
        done = len(state.labels[tid])
        successor = _thread_step(program, state, tid, rep, done)
        if successor is None:  # pragma: no cover - pending guarantees a step
            continue
        result.steps += 1
        # threads whose next step is independent of this one stay asleep
        child_sleep = frozenset(
            t
            for t in current_sleep
            if t in pending
            and not _dependent(_footprint(label), _footprint(pending[t][1]))
        )
        _visit(program, successor, child_sleep, result, max_traces, progress)
        current_sleep.add(tid)
