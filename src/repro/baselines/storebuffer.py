"""Operational TSO/PSO exploration via explicit store buffers.

The Nidhugg-style substrate: each thread owns a store buffer (FIFO
for TSO, per-location FIFO for PSO); the scheduler interleaves thread
steps with nondeterministic buffer flushes.  Enumerating all such
schedules yields the reference semantics of TSO/PSO — and a state
space *larger* than SC interleavings, which is why the paper contrasts
operational tools against HMC's execution-graph counts.

The set of reachable execution graphs is cross-checked against the
axiomatic TSO/PSO models in the test suite: a genuinely two-sided
validation (operational vs axiomatic vs HMC's exploration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..events import Event, Label, ReadLabel, Value, WriteLabel
from ..graphs import ExecutionGraph, canonical_key, final_state
from ..lang import Program, ReplayStatus, replay


@dataclass
class StoreBufferResult:
    program: str
    memory_model: str = "tso"
    traces: int = 0
    blocked: int = 0
    errors: int = 0
    executions: int = 0
    keys: set = field(default_factory=set)
    final_states: set = field(default_factory=set)
    steps: int = 0


@dataclass
class _BufState:
    read_values: list[tuple[Value, ...]]
    memory: dict[str, Value]
    last_writer: dict[str, Event]
    co: dict[str, list[Event]]
    rf: dict[Event, Event]
    labels: dict[int, list[Label]]
    #: per-thread pending stores: list of (loc, value, event)
    buffers: dict[int, list[tuple[str, Value, Event]]]

    def copy(self) -> "_BufState":
        return _BufState(
            read_values=list(self.read_values),
            memory=dict(self.memory),
            last_writer=dict(self.last_writer),
            co={k: list(v) for k, v in self.co.items()},
            rf=dict(self.rf),
            labels={k: list(v) for k, v in self.labels.items()},
            buffers={k: list(v) for k, v in self.buffers.items()},
        )

    def freeze(self) -> tuple:
        return (
            tuple(map(tuple, self.read_values)),
            tuple(sorted(self.memory.items())),
            tuple(
                (t, tuple(b)) for t, b in sorted(self.buffers.items()) if b
            ),
        )


def explore_store_buffers(
    program: Program,
    model: str = "tso",
    max_traces: int | None = None,
    progress=None,
) -> StoreBufferResult:
    """Enumerate all schedules of ``program`` over store-buffer
    machines (``model`` is ``"tso"`` or ``"pso"``).

    ``progress`` may be a :class:`repro.obs.ProgressReporter`; it is
    ticked once per maximal schedule.
    """
    if model not in ("tso", "pso"):
        raise ValueError("store-buffer semantics exist for tso/pso only")
    result = StoreBufferResult(program.name, memory_model=model)
    initial = _BufState(
        read_values=[() for _ in range(program.num_threads)],
        memory={},
        last_writer={},
        co={},
        rf={},
        labels={tid: [] for tid in range(program.num_threads)},
        buffers={tid: [] for tid in range(program.num_threads)},
    )
    stack = [initial]
    while stack:
        state = stack.pop()
        successors, statuses = _expand(program, state, model, result)
        if successors:
            stack.extend(successors)
            continue
        result.traces += 1
        if any(s is ReplayStatus.ERROR for s in statuses):
            result.errors += 1
        elif any(s is ReplayStatus.BLOCKED for s in statuses) or any(
            state.buffers.values()
        ):
            result.blocked += 1
        else:
            _record(program, state, result)
        if progress is not None:
            progress.tick(
                traces=result.traces, executions=result.executions
            )
        if max_traces is not None and result.traces >= max_traces:
            break
    if progress is not None:
        progress.finish(traces=result.traces, executions=result.executions)
    return result


def _flush_candidates(state: _BufState, model: str, tid: int) -> list[int]:
    """Indices in the buffer that may flush next: the head for TSO,
    one head per location for PSO."""
    buffer = state.buffers[tid]
    if not buffer:
        return []
    if model == "tso":
        return [0]
    seen: set[str] = set()
    heads = []
    for i, (loc, _v, _e) in enumerate(buffer):
        if loc not in seen:
            seen.add(loc)
            heads.append(i)
    return heads


def _expand(program: Program, state: _BufState, model: str, result):
    successors: list[_BufState] = []
    statuses = []
    for tid in range(program.num_threads):
        # flush steps
        for idx in _flush_candidates(state, model, tid):
            new = state.copy()
            loc, value, ev = new.buffers[tid].pop(idx)
            new.memory[loc] = value
            new.last_writer[loc] = ev
            new.co.setdefault(loc, []).append(ev)
            result.steps += 1
            successors.append(new)
        # instruction step
        done = len(state.labels[tid])
        rep = replay(
            program.threads[tid],
            tid,
            state.read_values[tid],
            max_events=done + 2,
        )
        statuses.append(rep.status)
        new = _instruction_step(program, state, tid, rep, done, model)
        if new is not None:
            result.steps += 1
            successors.append(new)
    return successors, statuses


def _buffered_value(state: _BufState, tid: int, loc: str) -> tuple[Value, Event] | None:
    """The newest buffered store to ``loc`` by ``tid``, if any."""
    for bloc, value, ev in reversed(state.buffers[tid]):
        if bloc == loc:
            return value, ev
    return None


def _instruction_step(
    program: Program, state: _BufState, tid: int, rep, done: int, model: str
) -> "_BufState | None":
    if len(rep.labels) > done:
        label = rep.labels[done]
    elif rep.status is ReplayStatus.NEEDS_VALUE and rep.pending is not None:
        label = rep.pending
    else:
        return None

    if isinstance(label, ReadLabel):
        if label.exclusive:
            # RMWs flush the buffer first (locked instruction)
            if state.buffers[tid]:
                return None
            new = state.copy()
            value = new.memory.get(label.loc, 0)
            ev = Event(tid, done)
            new.read_values[tid] = tuple(new.read_values[tid]) + (value,)
            new.labels[tid].append(label)
            src = new.last_writer.get(label.loc)
            if src is not None:
                new.rf[ev] = src
            rep2 = replay(
                program.threads[tid],
                tid,
                new.read_values[tid],
                max_events=done + 2,
            )
            if len(rep2.labels) > done + 1 and isinstance(
                rep2.labels[done + 1], WriteLabel
            ):
                wlabel = rep2.labels[done + 1]
                wev = Event(tid, done + 1)
                new.memory[wlabel.loc] = wlabel.value
                new.last_writer[wlabel.loc] = wev
                new.co.setdefault(wlabel.loc, []).append(wev)
                new.labels[tid].append(wlabel)
            return new
        new = state.copy()
        forwarded = _buffered_value(new, tid, label.loc)
        if forwarded is not None:
            value, src = forwarded
        else:
            value = new.memory.get(label.loc, 0)
            src = new.last_writer.get(label.loc)
        ev = Event(tid, done)
        new.read_values[tid] = tuple(new.read_values[tid]) + (value,)
        new.labels[tid].append(label)
        if src is not None:
            new.rf[ev] = src
        return new

    if isinstance(label, WriteLabel):
        new = state.copy()
        new.buffers[tid].append((label.loc, label.value, Event(tid, done)))
        new.labels[tid].append(label)
        return new

    # fence: executable only with an empty buffer (full fences); weaker
    # fences are approximated the same way, erring towards fewer
    # behaviours for the operational baseline
    if state.buffers[tid]:
        return None
    new = state.copy()
    new.labels[tid].append(label)
    return new


def _record(program: Program, state: _BufState, result: StoreBufferResult) -> None:
    graph = ExecutionGraph.from_parts(
        {tid: list(labels) for tid, labels in state.labels.items()},
        rf_map={},
        co_orders=state.co,
    )
    for read, src in state.rf.items():
        graph._rf[read] = src
    for read in graph.reads():
        if read not in graph._rf:
            loc = graph.label(read).location
            graph._rf[read] = graph.init_write(loc)  # type: ignore[arg-type]
    key = canonical_key(graph)
    if key not in result.keys:
        result.keys.add(key)
        result.executions += 1
        result.final_states.add(final_state(graph))
