"""Exhaustive interleaving enumeration under sequential consistency.

The classical stateless-model-checking baseline: explore every
scheduling of the threads against an operational shared memory.  Each
maximal schedule is one "trace"; many traces induce the same execution
graph, which is exactly the redundancy HMC's execution-graph
exploration eliminates — the paper's tables compare these counts.

RMWs execute atomically (read and write in one step), matching the
event semantics of the graph-based checker, so the set of reachable
execution graphs is identical (cross-checked in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..events import Event, Label, ReadLabel, Value, WriteLabel
from ..graphs import ExecutionGraph, canonical_key, final_state
from ..lang import Program, ReplayStatus, replay


@dataclass
class InterleavingResult:
    program: str
    #: number of maximal schedules explored
    traces: int = 0
    #: schedules ending with a blocked thread
    blocked: int = 0
    errors: int = 0
    #: distinct execution graphs among the traces
    executions: int = 0
    keys: set = field(default_factory=set)
    final_states: set = field(default_factory=set)
    #: total scheduling steps taken (state-space size proxy)
    steps: int = 0


@dataclass
class _State:
    """One node of the schedule tree."""

    read_values: list[tuple[Value, ...]]
    memory: dict[str, Value]
    #: which write event last wrote each location (for rf tracking)
    last_writer: dict[str, Event]
    #: writes per location in the order they hit memory (= co under SC)
    co: dict[str, list[Event]]
    #: rf edge per read event
    rf: dict[Event, Event]
    #: labels per thread, as executed
    labels: dict[int, list[Label]]

    def copy(self) -> "_State":
        return _State(
            read_values=list(self.read_values),
            memory=dict(self.memory),
            last_writer=dict(self.last_writer),
            co={k: list(v) for k, v in self.co.items()},
            rf=dict(self.rf),
            labels={k: list(v) for k, v in self.labels.items()},
        )


def explore_interleavings(
    program: Program,
    max_traces: int | None = None,
    progress=None,
) -> InterleavingResult:
    """Enumerate all SC schedules of ``program``.

    ``progress`` may be a :class:`repro.obs.ProgressReporter`; it is
    ticked once per maximal schedule.
    """
    result = InterleavingResult(program.name)
    initial = _State(
        read_values=[() for _ in range(program.num_threads)],
        memory={},
        last_writer={},
        co={},
        rf={},
        labels={tid: [] for tid in range(program.num_threads)},
    )
    stack = [initial]
    while stack:
        state = stack.pop()
        successors, statuses = _expand(program, state, result)
        if successors:
            stack.extend(successors)
            continue
        result.traces += 1
        if any(s is ReplayStatus.ERROR for s in statuses):
            result.errors += 1
        elif any(s is ReplayStatus.BLOCKED for s in statuses):
            result.blocked += 1
        else:
            _record(program, state, result)
        if progress is not None:
            progress.tick(
                traces=result.traces, executions=result.executions
            )
        if max_traces is not None and result.traces >= max_traces:
            break
    if progress is not None:
        progress.finish(traces=result.traces, executions=result.executions)
    return result


def _expand(program: Program, state: _State, result: InterleavingResult):
    successors: list[_State] = []
    statuses = []
    for tid in range(program.num_threads):
        done = len(state.labels[tid])
        rep = replay(
            program.threads[tid],
            tid,
            state.read_values[tid],
            max_events=done + 2,  # enough to cover an atomic RMW pair
        )
        statuses.append(rep.status)
        step = _thread_step(program, state, tid, rep, done)
        if step is not None:
            result.steps += 1
            successors.append(step)
    return successors, statuses


def _thread_step(
    program: Program, state: _State, tid: int, rep, done: int
) -> _State | None:
    """Execute thread ``tid``'s next event (RMWs atomically)."""
    if len(rep.labels) > done:
        label = rep.labels[done]
    elif rep.status is ReplayStatus.NEEDS_VALUE and rep.pending is not None:
        label = rep.pending
    else:
        return None
    new = state.copy()
    if isinstance(label, ReadLabel):
        value = new.memory.get(label.loc, 0)
        new.read_values[tid] = tuple(new.read_values[tid]) + (value,)
        ev = Event(tid, done)
        new.labels[tid].append(label)
        src = new.last_writer.get(label.loc)
        if src is not None:
            new.rf[ev] = src
        if label.exclusive:
            # complete the RMW atomically: replay once more to obtain
            # the exclusive write (if the CAS fired)
            rep2 = replay(
                program.threads[tid],
                tid,
                new.read_values[tid],
                max_events=done + 2,
            )
            if len(rep2.labels) > done + 1 and isinstance(
                rep2.labels[done + 1], WriteLabel
            ):
                _do_write(new, tid, done + 1, rep2.labels[done + 1])
        return new
    if isinstance(label, WriteLabel):
        _do_write(new, tid, done, label)
        return new
    new.labels[tid].append(label)  # fence: no memory effect
    return new


def _do_write(state: _State, tid: int, index: int, label: WriteLabel) -> None:
    ev = Event(tid, index)
    state.memory[label.loc] = label.value
    state.last_writer[label.loc] = ev
    state.co.setdefault(label.loc, []).append(ev)
    state.labels[tid].append(label)


def _record(program: Program, state: _State, result: InterleavingResult) -> None:
    graph = ExecutionGraph.from_parts(
        {tid: list(labels) for tid, labels in state.labels.items()},
        rf_map={},
        co_orders=state.co,
    )
    for read, src in state.rf.items():
        graph._rf[read] = src
    for read in graph.reads():
        if read not in graph._rf:
            loc = graph.label(read).location
            graph._rf[read] = graph.init_write(loc)  # type: ignore[arg-type]
    key = canonical_key(graph)
    if key not in result.keys:
        result.keys.add(key)
        result.executions += 1
        result.final_states.add(final_state(graph))
