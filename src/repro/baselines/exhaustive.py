"""Herd-style axiomatic brute force.

Enumerates *every* candidate execution — all read-value resolutions,
all reads-from assignments, all coherence orders — and filters by the
model's consistency predicate.  Grossly exponential, but it is ground
truth: the test suite checks that HMC's set of canonical execution
graphs equals this enumerator's on every litmus test and on random
small programs.

The value domain is computed as a fixpoint: starting from 0, replay
threads against every value combination and collect the values their
writes produce, until no new value appears.  This mirrors what herd's
candidate-execution generation achieves for litmus programs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..events import Event, ReadLabel, Value, WriteLabel
from ..graphs import ExecutionGraph, canonical_key, final_state
from ..lang import Program, ReplayStatus, ThreadReplay, replay
from ..models import MemoryModel, get_model


@dataclass
class BruteForceResult:
    program: str
    model: str
    executions: int = 0
    blocked: int = 0
    errors: int = 0
    candidates: int = 0
    #: thread-resolution combinations examined
    combos: int = 0
    keys: set = field(default_factory=set)
    final_states: set = field(default_factory=set)
    outcomes: set = field(default_factory=set)


def _value_domain(program: Program, cap: int = 8) -> list[Value]:
    """Fixpoint of values any write can produce (plus 0).

    Iterates per thread: a write's value can only depend on its own
    thread's reads, so thread-local resolution saturates the domain.
    """
    domain: set[Value] = {0}
    for _ in range(cap):
        new: set[Value] = set()
        for tid in range(program.num_threads):
            frontier: list[tuple[Value, ...]] = [()]
            while frontier:
                values = frontier.pop()
                rep = replay(program.threads[tid], tid, values)
                for lab in rep.labels:
                    if isinstance(lab, WriteLabel):
                        new.add(lab.value)
                if rep.status is ReplayStatus.NEEDS_VALUE:
                    frontier.extend(values + (v,) for v in sorted(domain))
        if new <= domain:
            return sorted(domain)
        domain |= new
    return sorted(domain)


def brute_force(
    program: Program,
    model: MemoryModel | str,
    max_candidates: int = 2_000_000,
    progress=None,
) -> BruteForceResult:
    """Enumerate and filter all candidate executions of ``program``.

    ``progress`` may be a :class:`repro.obs.ProgressReporter`; it is
    ticked once per thread-resolution combo.
    """
    model = get_model(model) if isinstance(model, str) else model
    result = BruteForceResult(program.name, model.name)
    domain = _value_domain(program)
    for combo, value_vectors in _resolved_combos(program, domain):
        # resolution combos count against the budget too — otherwise a
        # huge product of unjustifiable combos would grind forever
        # without ever tripping the guard
        result.combos += 1
        if result.combos > max_candidates:
            raise RuntimeError("brute force exceeded the combo budget")
        _check_candidates(
            program, model, combo, value_vectors, result, max_candidates
        )
        if progress is not None:
            progress.tick(
                candidates=result.candidates, executions=result.executions
            )
        if result.candidates > max_candidates:
            raise RuntimeError("brute force exceeded the candidate budget")
    if progress is not None:
        progress.finish(
            candidates=result.candidates, executions=result.executions
        )
    return result


def _resolved_combos(program: Program, domain: list[Value]):
    per_thread: list[list[tuple[ThreadReplay, tuple[Value, ...]]]] = []
    for tid in range(program.num_threads):
        resolutions: list[tuple[ThreadReplay, tuple[Value, ...]]] = []
        frontier: list[tuple[Value, ...]] = [()]
        while frontier:
            values = frontier.pop()
            rep = replay(program.threads[tid], tid, values)
            if rep.status is ReplayStatus.NEEDS_VALUE:
                frontier.extend(values + (v,) for v in domain)
            else:
                used = sum(
                    1 for lab in rep.labels if isinstance(lab, ReadLabel)
                )
                resolutions.append((rep, values[:used]))
        per_thread.append(resolutions)
    for combo in itertools.product(*per_thread):
        yield (
            {tid: rep for tid, (rep, _) in enumerate(combo)},
            {tid: vals for tid, (_, vals) in enumerate(combo)},
        )


def _check_candidates(
    program: Program,
    model: MemoryModel,
    combo: dict[int, ThreadReplay],
    value_vectors: dict[int, tuple[Value, ...]],
    result: BruteForceResult,
    max_candidates: int,
) -> None:
    reads: list[tuple[Event, ReadLabel, Value]] = []
    writes_by_loc: dict[str, list[tuple[Event, WriteLabel]]] = {}
    thread_labels: dict[int, list] = {}
    for tid, rep in combo.items():
        thread_labels[tid] = list(rep.labels)
        consumed = 0
        for index, lab in enumerate(rep.labels):
            ev = Event(tid, index)
            if isinstance(lab, ReadLabel):
                reads.append((ev, lab, value_vectors[tid][consumed]))
                consumed += 1
            elif isinstance(lab, WriteLabel):
                writes_by_loc.setdefault(lab.loc, []).append((ev, lab))

    # rf candidates per read: same-location writes with the right value
    rf_options: list[list[Event | None]] = []
    for _ev, lab, value in reads:
        opts: list[Event | None] = [
            w for w, wlab in writes_by_loc.get(lab.loc, []) if wlab.value == value
        ]
        if value == 0:
            opts.append(None)  # the initialisation write
        if not opts:
            return  # value unjustifiable: not a candidate
        rf_options.append(opts)

    import math

    co_options: list[list[tuple[Event, ...]]] = [
        list(itertools.permutations([w for w, _ in ws]))
        for ws in writes_by_loc.values()
    ]
    locs = list(writes_by_loc)

    # trip the budget before materialising a hopeless product
    product = math.prod(len(o) for o in rf_options) * math.prod(
        len(o) for o in co_options
    )
    if result.candidates + product > max_candidates:
        raise RuntimeError("brute force exceeded the candidate budget")

    for rf_choice in itertools.product(*rf_options):
        for co_choice in itertools.product(*co_options):
            result.candidates += 1
            graph = ExecutionGraph.from_parts(
                thread_labels,
                rf_map={},
                co_orders={loc: list(order) for loc, order in zip(locs, co_choice)},
            )
            for (ev, lab, _value), src in zip(reads, rf_choice):
                actual = src if src is not None else graph.init_write(lab.loc)
                graph._rf[ev] = actual  # direct fill; validated by model
            if not model.is_consistent(graph):
                continue
            if any(
                rep.status is ReplayStatus.ERROR for rep in combo.values()
            ):
                result.errors += 1
                continue
            if any(
                rep.status is ReplayStatus.BLOCKED for rep in combo.values()
            ):
                result.blocked += 1
                continue
            key = canonical_key(graph)
            if key in result.keys:
                continue
            result.keys.add(key)
            result.executions += 1
            result.final_states.add(final_state(graph))
            outcome = []
            for tid, reg in program.observables:
                regs = combo[tid].registers
                if reg in regs:
                    outcome.append((f"{reg}@{tid}", regs[reg]))
            result.outcomes.add(tuple(sorted(outcome)))
