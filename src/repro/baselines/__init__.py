"""Baseline explorers the paper compares against: axiomatic brute
force (herd-style), SC interleaving enumeration, sleep-set DPOR,
explicit-state hashing, and operational store-buffer machines
(Nidhugg-style).

.. deprecated::
    The ``explore_*``/``brute_force`` functions re-exported here are
    thin deprecated wrappers kept for backwards compatibility and
    **will be removed in repro 2.0**.  New code selects engines
    uniformly through the backend registry::

        from repro.backends import get_backend

        result = get_backend("dpor").run(program)

    which returns a :class:`~repro.core.result.VerificationResult`
    instead of a per-baseline result type.
"""

import warnings

from . import dpor as _dpor
from . import exhaustive as _exhaustive
from . import interleaving as _interleaving
from . import statehash as _statehash
from . import storebuffer as _storebuffer
from .dpor import DporResult
from .exhaustive import BruteForceResult
from .interleaving import InterleavingResult
from .statehash import StateHashResult
from .storebuffer import StoreBufferResult


def _deprecated(name: str, backend: str, impl):
    def wrapper(*args, **kwargs):
        warnings.warn(
            f"repro.baselines.{name} is deprecated and will be removed "
            f"in repro 2.0; use "
            f"repro.backends.get_backend({backend!r}).run(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return impl(*args, **kwargs)

    wrapper.__name__ = name
    wrapper.__qualname__ = name
    wrapper.__doc__ = impl.__doc__
    wrapper.__wrapped__ = impl
    return wrapper


brute_force = _deprecated("brute_force", "exhaustive", _exhaustive.brute_force)
explore_dpor = _deprecated("explore_dpor", "dpor", _dpor.explore_dpor)
explore_interleavings = _deprecated(
    "explore_interleavings", "interleaving", _interleaving.explore_interleavings
)
explore_store_buffers = _deprecated(
    "explore_store_buffers", "storebuffer", _storebuffer.explore_store_buffers
)
explore_with_state_hashing = _deprecated(
    "explore_with_state_hashing",
    "statehash",
    _statehash.explore_with_state_hashing,
)

__all__ = [
    "BruteForceResult",
    "DporResult",
    "InterleavingResult",
    "StateHashResult",
    "StoreBufferResult",
    "brute_force",
    "explore_dpor",
    "explore_interleavings",
    "explore_store_buffers",
    "explore_with_state_hashing",
]
