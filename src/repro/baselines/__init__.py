"""Baseline explorers the paper compares against: axiomatic brute
force (herd-style), SC interleaving enumeration, sleep-set DPOR, and
operational store-buffer machines (Nidhugg-style)."""

from .dpor import DporResult, explore_dpor
from .exhaustive import BruteForceResult, brute_force
from .interleaving import InterleavingResult, explore_interleavings
from .statehash import StateHashResult, explore_with_state_hashing
from .storebuffer import StoreBufferResult, explore_store_buffers

__all__ = [
    "BruteForceResult",
    "DporResult",
    "InterleavingResult",
    "StateHashResult",
    "StoreBufferResult",
    "brute_force",
    "explore_dpor",
    "explore_interleavings",
    "explore_store_buffers",
    "explore_with_state_hashing",
]
