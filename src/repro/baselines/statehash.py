"""Stateful model checking under SC: interleaving exploration with
state hashing.

The fourth classical point in the comparison space: explore schedules
like :mod:`repro.baselines.interleaving`, but memoise visited *states*
(shared memory plus per-thread progress) and cut off repeats.  This is
what SPIN-style explicit-state checkers do; it prunes the diamond
blow-up that pure stateless enumeration pays, at the cost of memory
proportional to the state space — exactly the trade stateless model
checking (and HMC) was invented to avoid.

Note the caveat this baseline demonstrates: state hashing preserves
*reachable states* (hence assertion checking) but not execution
counting — different histories that converge to one state are
deliberately merged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..events import ReadLabel, WriteLabel
from ..lang import Program, ReplayStatus, replay


@dataclass
class StateHashResult:
    program: str
    #: distinct states visited
    states: int = 0
    #: scheduler steps taken (edges in the state graph)
    steps: int = 0
    #: states where no thread can advance
    terminal: int = 0
    errors: int = 0
    blocked: int = 0
    #: distinct final memory states
    final_states: set = field(default_factory=set)


def _freeze(memory: dict, logs: tuple, counts: tuple) -> tuple:
    return (tuple(sorted(memory.items())), logs, counts)


def explore_with_state_hashing(
    program: Program, progress=None
) -> StateHashResult:
    """Explore all SC-reachable states of ``program`` with memoisation.

    ``progress`` may be a :class:`repro.obs.ProgressReporter`; it is
    ticked once per terminal state.
    """
    result = StateHashResult(program.name)
    n = program.num_threads
    initial = ({}, tuple(() for _ in range(n)), tuple(0 for _ in range(n)))
    seen = {_freeze(*initial)}
    stack = [initial]
    result.states = 1
    while stack:
        memory, logs, counts = stack.pop()
        advanced = False
        statuses = []
        for tid in range(n):
            step = _step(program, memory, logs, counts, tid, statuses)
            if step is None:
                continue
            advanced = True
            result.steps += 1
            key = _freeze(*step)
            if key not in seen:
                seen.add(key)
                result.states += 1
                stack.append(step)
        if not advanced:
            result.terminal += 1
            if any(s is ReplayStatus.ERROR for s in statuses):
                result.errors += 1
            elif any(s is ReplayStatus.BLOCKED for s in statuses):
                result.blocked += 1
            else:
                result.final_states.add(tuple(sorted(memory.items())))
            if progress is not None:
                progress.tick(terminal=result.terminal, states=result.states)
    if progress is not None:
        progress.finish(terminal=result.terminal, states=result.states)
    return result


def _step(program, memory, logs, counts, tid, statuses):
    done_events = counts[tid]
    rep = replay(
        program.threads[tid], tid, logs[tid], max_events=done_events + 2
    )
    statuses.append(rep.status)
    if len(rep.labels) > done_events:
        label = rep.labels[done_events]
    elif rep.status is ReplayStatus.NEEDS_VALUE and rep.pending is not None:
        label = rep.pending
    else:
        return None
    new_memory = dict(memory)
    new_logs = list(logs)
    new_counts = list(counts)
    new_counts[tid] += 1
    if isinstance(label, ReadLabel):
        value = new_memory.get(label.loc, 0)
        new_logs[tid] = logs[tid] + (value,)
        if label.exclusive:
            # the paired exclusive write executes atomically
            rep2 = replay(
                program.threads[tid],
                tid,
                new_logs[tid],
                max_events=done_events + 2,
            )
            if len(rep2.labels) > done_events + 1 and isinstance(
                rep2.labels[done_events + 1], WriteLabel
            ):
                wlabel = rep2.labels[done_events + 1]
                new_memory[wlabel.loc] = wlabel.value
                new_counts[tid] += 1
    elif isinstance(label, WriteLabel):
        new_memory[label.loc] = label.value
    # fences advance the per-thread count only: state hashing merges
    # histories that reach the same (memory, logs, progress) point
    return (new_memory, tuple(new_logs), tuple(new_counts))
