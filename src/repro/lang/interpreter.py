"""Deterministic per-thread interpretation with dependency tracking.

The cornerstone of stateless model checking: a thread's behaviour is a
*pure function* of the values its reads returned.  :func:`replay`
re-executes a thread from scratch against a given read-value history
and reports either the emitted labels plus how the thread ended, or
the pending read awaiting a value.

Execution is generator-based: each memory event is ``yield``-ed as a
label; reads receive their value through ``send``.  Replaying from
scratch on every query keeps exploration state *copy-free* (the
execution graph alone determines everything), at a modest O(n²) cost
per thread — the trade the original tools make with their replaying
schedulers, too.
"""

from __future__ import annotations

import enum
import functools
from collections.abc import Generator, Sequence
from dataclasses import dataclass, field

from ..events import (
    Event,
    FenceLabel,
    Label,
    ReadLabel,
    Value,
    WriteLabel,
)
from .expr import EvalError, Tainted
from .stmt import (
    Assert,
    Assign,
    Assume,
    Cas,
    Fai,
    Fence,
    If,
    Load,
    LocExpr,
    Repeat,
    Stmt,
    Store,
    Xchg,
)


class _Blocked(Exception):
    """Internal: an Assume failed."""


class _Failed(Exception):
    """Internal: an Assert failed."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class ReplayStatus(enum.Enum):
    #: the thread executed all its statements
    FINISHED = "finished"
    #: an ``assume`` failed — the branch is infeasible, not an error
    BLOCKED = "blocked"
    #: an ``assert`` failed
    ERROR = "error"
    #: the next event is a read that needs a value from the explorer
    NEEDS_VALUE = "needs-value"
    #: stopped early because ``max_events`` labels were emitted
    TRUNCATED = "truncated"


@dataclass(frozen=True)
class ThreadReplay:
    """Result of replaying one thread against a read-value history."""

    status: ReplayStatus
    labels: tuple[Label, ...]
    #: when NEEDS_VALUE: the pending read's label (it will become the
    #: event at index ``len(labels)``)
    pending: ReadLabel | None = None
    error: str | None = None
    registers: dict[str, Value] = field(default_factory=dict)

    @property
    def event_count(self) -> int:
        return len(self.labels)


_EMIT = Generator[Label, Value | None, None]


class _ThreadRun:
    """One in-progress interpretation of a thread."""

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.env: dict[str, Tainted] = {}
        self.ctrl: set[Event] = set()
        self.count = 0  # events emitted so far

    def _next_event(self) -> Event:
        return Event(self.tid, self.count)

    def _eval(self, expr) -> Tainted:
        return expr.evaluate(self.env)

    def _resolve_loc(self, spec: LocExpr) -> tuple[str, frozenset[Event]]:
        if spec.index is None:
            return spec.base, frozenset()
        idx = self._eval(spec.index)
        return f"{spec.base}[{idx.value}]", idx.taint

    def run(self, stmts: Sequence[Stmt]) -> _EMIT:
        yield from self._block(stmts)

    def _block(self, stmts: Sequence[Stmt]) -> _EMIT:
        for st in stmts:
            yield from self._stmt(st)

    def _stmt(self, st: Stmt) -> _EMIT:
        if isinstance(st, Assign):
            self.env[st.reg] = self._eval(st.expr)
        elif isinstance(st, Load):
            yield from self._load(st)
        elif isinstance(st, Store):
            yield from self._store(st)
        elif isinstance(st, Cas):
            yield from self._cas(st)
        elif isinstance(st, Fai):
            yield from self._fai(st)
        elif isinstance(st, Xchg):
            yield from self._xchg(st)
        elif isinstance(st, Fence):
            self.count += 1
            yield FenceLabel(
                kind=st.kind, order=st.order, ctrl_deps=frozenset(self.ctrl)
            )
        elif isinstance(st, If):
            cond = self._eval(st.cond)
            self.ctrl |= cond.taint
            yield from self._block(st.then if cond.value else st.orelse)
        elif isinstance(st, Repeat):
            for _ in range(st.count):
                yield from self._block(st.body)
        elif isinstance(st, Assume):
            cond = self._eval(st.cond)
            self.ctrl |= cond.taint
            if not cond.value:
                raise _Blocked
        elif isinstance(st, Assert):
            cond = self._eval(st.cond)
            self.ctrl |= cond.taint
            if not cond.value:
                raise _Failed(st.message)
        else:  # pragma: no cover - exhaustive over the Stmt family
            raise EvalError(f"unknown statement {st!r}")

    def _load(self, st: Load) -> _EMIT:
        locname, addr_taint = self._resolve_loc(st.loc)
        ev = self._next_event()
        self.count += 1
        value = yield ReadLabel(
            loc=locname,
            order=st.order,
            addr_deps=addr_taint,
            ctrl_deps=frozenset(self.ctrl),
        )
        assert value is not None
        self.env[st.reg] = Tainted(value, frozenset([ev]))

    def _store(self, st: Store) -> _EMIT:
        locname, addr_taint = self._resolve_loc(st.loc)
        val = self._eval(st.value)
        self.count += 1
        yield WriteLabel(
            loc=locname,
            value=val.value,
            order=st.order,
            addr_deps=addr_taint,
            data_deps=val.taint,
            ctrl_deps=frozenset(self.ctrl),
        )

    def _cas(self, st: Cas) -> _EMIT:
        locname, addr_taint = self._resolve_loc(st.loc)
        expected = self._eval(st.expected)
        desired = self._eval(st.desired)
        ev = self._next_event()
        self.count += 1
        old = yield ReadLabel(
            loc=locname,
            order=st.order,
            exclusive=True,
            cas_expected=expected.value,
            addr_deps=addr_taint,
            data_deps=expected.taint,
            ctrl_deps=frozenset(self.ctrl),
        )
        assert old is not None
        success = old == expected.value
        # the outcome of the comparison controls the continuation
        self.ctrl |= {ev} | expected.taint
        if success:
            self.count += 1
            yield WriteLabel(
                loc=locname,
                value=desired.value,
                order=st.order,
                exclusive=True,
                addr_deps=addr_taint,
                data_deps=desired.taint,
                ctrl_deps=frozenset(self.ctrl),
            )
        self.env[st.reg] = Tainted(int(success), frozenset([ev]))
        if st.old_reg is not None:
            self.env[st.old_reg] = Tainted(old, frozenset([ev]))

    def _fai(self, st: Fai) -> _EMIT:
        locname, addr_taint = self._resolve_loc(st.loc)
        delta = self._eval(st.delta)
        ev = self._next_event()
        self.count += 1
        old = yield ReadLabel(
            loc=locname,
            order=st.order,
            exclusive=True,
            addr_deps=addr_taint,
            ctrl_deps=frozenset(self.ctrl),
        )
        assert old is not None
        self.count += 1
        yield WriteLabel(
            loc=locname,
            value=old + delta.value,
            order=st.order,
            exclusive=True,
            addr_deps=addr_taint,
            data_deps=delta.taint | frozenset([ev]),
            ctrl_deps=frozenset(self.ctrl),
        )
        self.env[st.reg] = Tainted(old, frozenset([ev]))

    def _xchg(self, st: Xchg) -> _EMIT:
        locname, addr_taint = self._resolve_loc(st.loc)
        val = self._eval(st.value)
        ev = self._next_event()
        self.count += 1
        old = yield ReadLabel(
            loc=locname,
            order=st.order,
            exclusive=True,
            addr_deps=addr_taint,
            ctrl_deps=frozenset(self.ctrl),
        )
        assert old is not None
        self.count += 1
        yield WriteLabel(
            loc=locname,
            value=val.value,
            order=st.order,
            exclusive=True,
            addr_deps=addr_taint,
            data_deps=val.taint,
            ctrl_deps=frozenset(self.ctrl),
        )
        self.env[st.reg] = Tainted(old, frozenset([ev]))


def replay(
    stmts: Sequence[Stmt],
    tid: int,
    read_values: Sequence[Value],
    max_events: int | None = None,
) -> ThreadReplay:
    """Re-execute a thread against ``read_values``.

    Stops as soon as ``max_events`` labels have been emitted, a read
    runs out of values (``NEEDS_VALUE``), or the thread terminates.

    Replays are memoised: a thread is a pure function of its read
    values, exploration re-asks for the same prefixes constantly, and
    :class:`ThreadReplay` is immutable — so the cache is sound and
    saves the O(n²)-per-thread replay cost almost entirely.
    """
    if isinstance(stmts, tuple):
        return _replay_cached(stmts, tid, tuple(read_values), max_events)
    return _replay_uncached(stmts, tid, read_values, max_events)


@functools.lru_cache(maxsize=200_000)
def _replay_cached(
    stmts: tuple[Stmt, ...],
    tid: int,
    read_values: tuple[Value, ...],
    max_events: int | None,
) -> ThreadReplay:
    return _replay_uncached(stmts, tid, read_values, max_events)


def _replay_uncached(
    stmts: Sequence[Stmt],
    tid: int,
    read_values: Sequence[Value],
    max_events: int | None = None,
) -> ThreadReplay:
    if max_events is not None and max_events <= 0:
        return ThreadReplay(ReplayStatus.TRUNCATED, ())
    run = _ThreadRun(tid)
    gen = run.run(stmts)
    labels: list[Label] = []
    consumed = 0
    try:
        label = next(gen)
        while True:
            to_send: Value | None = None
            if isinstance(label, ReadLabel):
                if consumed == len(read_values):
                    gen.close()
                    return ThreadReplay(
                        ReplayStatus.NEEDS_VALUE, tuple(labels), pending=label
                    )
                to_send = read_values[consumed]
                consumed += 1
            labels.append(label)
            if max_events is not None and len(labels) >= max_events:
                gen.close()
                return ThreadReplay(ReplayStatus.TRUNCATED, tuple(labels))
            label = gen.send(to_send)
    except StopIteration:
        return ThreadReplay(
            ReplayStatus.FINISHED,
            tuple(labels),
            registers={name: t.value for name, t in run.env.items()},
        )
    except _Blocked:
        return ThreadReplay(ReplayStatus.BLOCKED, tuple(labels))
    except _Failed as exc:
        return ThreadReplay(ReplayStatus.ERROR, tuple(labels), error=exc.message)
