"""Compilation mappings: C11-annotated programs to ISA programs.

The standard fence-insertion schemes that compilers use to implement
C11 atomics on each architecture (the mappings whose correctness the
IMM line of work exists to prove):

* **x86**: accesses map to plain ones (TSO is strong enough); an SC
  store is followed by MFENCE; SC fences become MFENCE.
* **POWER**: acquire loads get a ctrl+isync (approximated by an isync
  barrier after the load), release stores a leading lwsync, SC
  accesses leading sync (+ isync for loads); acq/rel fences become
  lwsync, SC fences sync.
* **ARMv8**: rel/acq/sc accesses map natively to stlr/ldar (the
  identity on annotations); C11 fences become dmb.

Applying a mapping and re-verifying under the *target* hardware model
turns compilation soundness into a checkable statement:

    behaviours(compile(P), target-model) ⊆ behaviours(P, rc11)

which `tests/test_mappings.py` asserts over the litmus corpus.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..events import FenceKind, MemOrder
from .program import Program
from .stmt import Assert, Assign, Assume, Cas, Fai, Fence, If, Load, Repeat, Stmt, Store, Xchg

#: a mapping turns one statement into a sequence of statements
StmtMapping = Callable[[Stmt], Iterable[Stmt]]


def _relax(stmt: Stmt, **changes) -> Stmt:
    """A copy of an access statement with order RLX (plus changes)."""
    import dataclasses

    return dataclasses.replace(stmt, order=MemOrder.RLX, **changes)


# -- x86 -----------------------------------------------------------------


def _to_x86(stmt: Stmt) -> Iterable[Stmt]:
    if isinstance(stmt, Store):
        if stmt.order.is_sc():
            return [_relax(stmt), Fence(FenceKind.MFENCE)]
        return [_relax(stmt)]
    if isinstance(stmt, Load):
        return [_relax(stmt)]
    if isinstance(stmt, (Cas, Fai, Xchg)):
        return [_relax(stmt)]  # locked instructions are already fences
    if isinstance(stmt, Fence) and stmt.kind is FenceKind.C11:
        if stmt.order.is_sc():
            return [Fence(FenceKind.MFENCE)]
        return []  # acq/rel fences are free on TSO
    return [stmt]


# -- POWER ------------------------------------------------------------------


def _to_power(stmt: Stmt) -> Iterable[Stmt]:
    if isinstance(stmt, Load):
        out: list[Stmt] = []
        if stmt.order.is_sc():
            out.append(Fence(FenceKind.SYNC))
        out.append(_relax(stmt))
        if stmt.order.is_acquire():
            out.append(Fence(FenceKind.ISYNC))  # the ctrl+isync idiom
        return out
    if isinstance(stmt, Store):
        out = []
        if stmt.order.is_sc():
            out.append(Fence(FenceKind.SYNC))
        elif stmt.order.is_release():
            out.append(Fence(FenceKind.LWSYNC))
        out.append(_relax(stmt))
        return out
    if isinstance(stmt, (Cas, Fai, Xchg)):
        out = []
        if stmt.order.is_sc():
            out.append(Fence(FenceKind.SYNC))
        elif stmt.order.is_release():
            out.append(Fence(FenceKind.LWSYNC))
        out.append(_relax(stmt))
        if stmt.order.is_acquire():
            out.append(Fence(FenceKind.ISYNC))
        return out
    if isinstance(stmt, Fence) and stmt.kind is FenceKind.C11:
        if stmt.order.is_sc():
            return [Fence(FenceKind.SYNC)]
        return [Fence(FenceKind.LWSYNC)]
    return [stmt]


# -- ARMv8 ----------------------------------------------------------------------


def _to_armv8(stmt: Stmt) -> Iterable[Stmt]:
    if isinstance(stmt, Fence) and stmt.kind is FenceKind.C11:
        if stmt.order is MemOrder.ACQ:
            return [Fence(FenceKind.DMB_LD)]
        return [Fence(FenceKind.SYNC)]  # dmb sy for rel/acq_rel/sc
    # accesses map natively: ldar/stlr/ldaxr... carry the annotation
    return [stmt]


_MAPPINGS: dict[str, StmtMapping] = {
    "tso": _to_x86,
    "power": _to_power,
    "armv8": _to_armv8,
}


def _map_block(stmts: tuple[Stmt, ...], mapping: StmtMapping) -> tuple[Stmt, ...]:
    out: list[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, If):
            import dataclasses

            out.append(
                dataclasses.replace(
                    stmt,
                    then=_map_block(stmt.then, mapping),
                    orelse=_map_block(stmt.orelse, mapping),
                )
            )
        elif isinstance(stmt, Repeat):
            import dataclasses

            out.append(
                dataclasses.replace(stmt, body=_map_block(stmt.body, mapping))
            )
        elif isinstance(stmt, (Assign, Assume, Assert)):
            out.append(stmt)
        else:
            out.extend(mapping(stmt))
    return tuple(out)


def compile_to(program: Program, target: str) -> Program:
    """Apply the standard C11 -> ``target`` compilation mapping.

    ``target`` is a hardware model name: ``"tso"``, ``"power"`` or
    ``"armv8"``.  The result should be verified under that model.
    """
    try:
        mapping = _MAPPINGS[target]
    except KeyError:
        known = ", ".join(sorted(_MAPPINGS))
        raise KeyError(f"no mapping for {target!r}; known: {known}") from None
    return Program(
        name=f"{program.name}@{target}",
        threads=tuple(_map_block(t, mapping) for t in program.threads),
        observables=program.observables,
    )


def mapping_targets() -> list[str]:
    return sorted(_MAPPINGS)
