"""Fluent construction of concurrent programs.

Example — the store-buffering litmus test::

    p = ProgramBuilder("SB")
    t1 = p.thread()
    t1.store("x", 1)
    a = t1.load("y")
    t2 = p.thread()
    t2.store("y", 1)
    b = t2.load("x")
    p.observe(a, b)
    program = p.build()

Structured control flow takes builder callbacks::

    t.if_(a.eq(0), lambda b: b.store("z", 1))
"""

from __future__ import annotations

from collections.abc import Callable

from ..events import FenceKind, MemOrder
from .expr import Expr, ExprLike, Reg, lift
from .program import Program
from .stmt import (
    Assert,
    Assign,
    Assume,
    Cas,
    Fai,
    Fence,
    If,
    Load,
    LocExpr,
    Repeat,
    Stmt,
    Store,
    Xchg,
    loc,
)

LocLike = "str | tuple[str, ExprLike] | LocExpr"
BlockFn = Callable[["BlockBuilder"], None]


class BlockBuilder:
    """Builds a straight-line block of statements; thread builders and
    if/loop bodies all share this vocabulary."""

    def __init__(self, thread: "ThreadBuilder") -> None:
        self._thread = thread
        self._stmts: list[Stmt] = []

    # -- registers -------------------------------------------------------

    def fresh_reg(self, hint: str = "r") -> Reg:
        return self._thread._fresh_reg(hint)

    # -- memory accesses ----------------------------------------------------

    def load(
        self, location: LocLike, order: MemOrder = MemOrder.RLX, into: Reg | None = None
    ) -> Reg:
        reg = into or self.fresh_reg()
        self._stmts.append(Load(reg.name, loc(location), order))
        return reg

    def store(
        self, location: LocLike, value: ExprLike, order: MemOrder = MemOrder.RLX
    ) -> "BlockBuilder":
        self._stmts.append(Store(loc(location), lift(value), order))
        return self

    def cas(
        self,
        location: LocLike,
        expected: ExprLike,
        desired: ExprLike,
        order: MemOrder = MemOrder.RLX,
        old_into: Reg | None = None,
    ) -> Reg:
        """Returns a register holding 1 on success, 0 on failure."""
        reg = self.fresh_reg("ok")
        self._stmts.append(
            Cas(
                reg.name,
                loc(location),
                lift(expected),
                lift(desired),
                order,
                old_reg=old_into.name if old_into else None,
            )
        )
        return reg

    def fai(
        self, location: LocLike, delta: ExprLike = 1, order: MemOrder = MemOrder.RLX
    ) -> Reg:
        """Fetch-and-add; returns a register holding the old value."""
        reg = self.fresh_reg("old")
        self._stmts.append(Fai(reg.name, loc(location), lift(delta), order))
        return reg

    def xchg(
        self, location: LocLike, value: ExprLike, order: MemOrder = MemOrder.RLX
    ) -> Reg:
        reg = self.fresh_reg("old")
        self._stmts.append(Xchg(reg.name, loc(location), lift(value), order))
        return reg

    def fence(
        self, kind: FenceKind = FenceKind.SYNC, order: MemOrder = MemOrder.SC
    ) -> "BlockBuilder":
        self._stmts.append(Fence(kind, order))
        return self

    # -- local computation ----------------------------------------------------

    def assign(self, reg: Reg, value: ExprLike) -> "BlockBuilder":
        self._stmts.append(Assign(reg.name, lift(value)))
        return self

    # -- control flow ------------------------------------------------------------

    def if_(
        self, cond: Expr, then: BlockFn, orelse: BlockFn | None = None
    ) -> "BlockBuilder":
        then_block = BlockBuilder(self._thread)
        then(then_block)
        else_block = BlockBuilder(self._thread)
        if orelse is not None:
            orelse(else_block)
        self._stmts.append(
            If(cond, tuple(then_block._stmts), tuple(else_block._stmts))
        )
        return self

    def repeat(self, count: int, body: BlockFn) -> "BlockBuilder":
        block = BlockBuilder(self._thread)
        body(block)
        self._stmts.append(Repeat(count, tuple(block._stmts)))
        return self

    def assume(self, cond: Expr) -> "BlockBuilder":
        self._stmts.append(Assume(cond))
        return self

    def assert_(self, cond: Expr, message: str = "assertion failed") -> "BlockBuilder":
        self._stmts.append(Assert(cond, message))
        return self

    # -- idioms -----------------------------------------------------------------

    def await_eq(
        self, location: LocLike, value: ExprLike, order: MemOrder = MemOrder.RLX
    ) -> Reg:
        """Spin until the location holds ``value`` (SMC encoding: load
        then assume — other executions are reported as blocked)."""
        reg = self.load(location, order)
        self.assume(reg.eq(value))
        return reg


class ThreadBuilder(BlockBuilder):
    """Builds one thread; create via :meth:`ProgramBuilder.thread`."""

    def __init__(self, program: "ProgramBuilder", tid: int) -> None:
        self._program = program
        self.tid = tid
        self._reg_counter = 0
        super().__init__(self)

    def _fresh_reg(self, hint: str = "r") -> Reg:
        name = f"t{self.tid}.{hint}{self._reg_counter}"
        self._reg_counter += 1
        return Reg(name)


class ProgramBuilder:
    """Accumulates threads and observables into a :class:`Program`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._threads: list[ThreadBuilder] = []
        self._observables: list[tuple[int, str]] = []

    def thread(self) -> ThreadBuilder:
        builder = ThreadBuilder(self, len(self._threads))
        self._threads.append(builder)
        return builder

    def observe(self, *regs: Reg) -> "ProgramBuilder":
        """Mark registers as observable.  Each register is attributed to
        the (unique) thread that assigns it."""
        for reg in regs:
            owner = None
            for t in self._threads:
                if _assigns(t._stmts, reg.name):
                    owner = t.tid
                    break
            if owner is None:
                raise ValueError(f"no thread assigns register {reg.name!r}")
            self._observables.append((owner, reg.name))
        return self

    def build(self) -> Program:
        return Program(
            name=self.name,
            threads=tuple(tuple(t._stmts) for t in self._threads),
            observables=tuple(self._observables),
        )


def _assigns(stmts: list[Stmt] | tuple[Stmt, ...], reg: str) -> bool:
    for st in stmts:
        if isinstance(st, (Load, Cas, Fai, Xchg, Assign)) and st.reg == reg:
            return True
        if isinstance(st, Cas) and st.old_reg == reg:
            return True
        if isinstance(st, If) and (_assigns(st.then, reg) or _assigns(st.orelse, reg)):
            return True
        if isinstance(st, Repeat) and _assigns(st.body, reg):
            return True
    return False
