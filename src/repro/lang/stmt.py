"""Statements of the concurrent DSL.

A thread is a list of statements.  Memory is addressed by a *location
expression*: a base name plus an optional index expression, so that
address dependencies (``load(a[r])``) are expressible.  Control flow
is structured (if/else and statically bounded loops), which keeps
per-thread execution deterministic given the values of its reads —
the property stateless model checking relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..events import FenceKind, MemOrder
from .expr import Expr, lift


@dataclass(frozen=True)
class LocExpr:
    """``base`` or ``base[index]``."""

    base: str
    index: Expr | None = None

    def __repr__(self) -> str:
        if self.index is None:
            return self.base
        return f"{self.base}[{self.index!r}]"


def loc(spec: "str | tuple[str, ExprLike] | LocExpr") -> LocExpr:
    """Coerce a location spec: ``"x"`` or ``("arr", index_expr)``."""
    if isinstance(spec, LocExpr):
        return spec
    if isinstance(spec, str):
        return LocExpr(spec)
    base, index = spec
    return LocExpr(base, lift(index))


class Stmt:
    """Base statement."""


@dataclass(frozen=True)
class Assign(Stmt):
    reg: str
    expr: Expr


@dataclass(frozen=True)
class Load(Stmt):
    reg: str
    loc: LocExpr
    order: MemOrder = MemOrder.RLX


@dataclass(frozen=True)
class Store(Stmt):
    loc: LocExpr
    value: Expr
    order: MemOrder = MemOrder.RLX


@dataclass(frozen=True)
class Cas(Stmt):
    """Compare-and-swap; ``reg`` receives 1 on success, 0 on failure,
    and ``old_reg`` (when set) receives the value read."""

    reg: str
    loc: LocExpr
    expected: Expr
    desired: Expr
    order: MemOrder = MemOrder.RLX
    old_reg: str | None = None


@dataclass(frozen=True)
class Fai(Stmt):
    """Fetch-and-add; ``reg`` receives the *old* value."""

    reg: str
    loc: LocExpr
    delta: Expr
    order: MemOrder = MemOrder.RLX


@dataclass(frozen=True)
class Xchg(Stmt):
    """Atomic exchange; ``reg`` receives the old value."""

    reg: str
    loc: LocExpr
    value: Expr
    order: MemOrder = MemOrder.RLX


@dataclass(frozen=True)
class Fence(Stmt):
    kind: FenceKind = FenceKind.SYNC
    order: MemOrder = MemOrder.SC


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: tuple[Stmt, ...]
    orelse: tuple[Stmt, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class Repeat(Stmt):
    """Execute ``body`` exactly ``count`` times (static bound)."""

    count: int
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class Assume(Stmt):
    """Block this execution branch unless ``cond`` holds (spin-loop
    abstraction: the standard SMC encoding of await loops)."""

    cond: Expr


@dataclass(frozen=True)
class Assert(Stmt):
    """Report an error in every execution where ``cond`` is false."""

    cond: Expr
    message: str = "assertion failed"
