"""Programs: named collections of threads plus observed registers."""

from __future__ import annotations

from dataclasses import dataclass, field

from .stmt import Assume, Assert, Cas, Fai, If, Load, Repeat, Stmt, Store, Xchg


@dataclass(frozen=True)
class Program:
    """An immutable concurrent program.

    ``observables`` names the per-thread registers whose final values
    constitute the program's *outcome* (litmus-test style).
    """

    name: str
    threads: tuple[tuple[Stmt, ...], ...]
    observables: tuple[tuple[int, str], ...] = field(default_factory=tuple)

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    def location_bases(self) -> list[str]:
        """All statically known location base names."""
        bases: set[str] = set()

        def scan(stmts: tuple[Stmt, ...]) -> None:
            for st in stmts:
                if isinstance(st, (Load, Store, Cas, Fai, Xchg)):
                    bases.add(st.loc.base)
                elif isinstance(st, If):
                    scan(st.then)
                    scan(st.orelse)
                elif isinstance(st, Repeat):
                    scan(st.body)

        for thread in self.threads:
            scan(thread)
        return sorted(bases)

    def max_events_estimate(self) -> int:
        """A (loose) upper bound on events per execution, for sanity
        checks and progress reporting."""

        def count(stmts: tuple[Stmt, ...]) -> int:
            total = 0
            for st in stmts:
                if isinstance(st, (Load, Store)):
                    total += 1
                elif isinstance(st, (Cas, Fai, Xchg)):
                    total += 2
                elif isinstance(st, If):
                    total += max(count(st.then), count(st.orelse))
                elif isinstance(st, Repeat):
                    total += st.count * count(st.body)
                elif isinstance(st, (Assume, Assert)):
                    pass
                else:
                    total += 1
            return total

        return sum(count(t) for t in self.threads)

    def __repr__(self) -> str:
        return f"<Program {self.name!r}, {self.num_threads} threads>"
