"""Expressions of the concurrent register-machine DSL.

Expressions are pure: they read registers, never memory.  Evaluation
returns both a value and a *taint* — the set of read events whose
values flowed into the result — which is how the interpreter derives
the syntactic addr/data/ctrl dependencies hardware models need.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Union

from ..events import Event, Value

ExprLike = Union["Expr", int]

_BINOPS: dict[str, Callable[[int, int], int]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "//": operator.floordiv,
    "%": operator.mod,
    "&": operator.and_,
    "|": operator.or_,
    "^": operator.xor,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}


class EvalError(Exception):
    """Raised on use of an unset register or a bad operator."""


@dataclass(frozen=True)
class Tainted:
    """A value together with the reads it depends on."""

    value: Value
    taint: frozenset[Event]


class Expr:
    """Base expression; supports arithmetic operators and comparison
    *methods* (``.eq``, ``.ne``, ...) so that Python's ``==`` keeps its
    usual meaning on expression objects."""

    def evaluate(self, env: dict[str, Tainted]) -> Tainted:
        raise NotImplementedError

    # arithmetic sugar -------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return BinOp("+", self, lift(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return BinOp("+", lift(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return BinOp("-", self, lift(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return BinOp("-", lift(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return BinOp("*", self, lift(other))

    def __mod__(self, other: ExprLike) -> "Expr":
        return BinOp("%", self, lift(other))

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return BinOp("//", self, lift(other))

    def __and__(self, other: ExprLike) -> "Expr":
        return BinOp("&", self, lift(other))

    def __or__(self, other: ExprLike) -> "Expr":
        return BinOp("|", self, lift(other))

    def __xor__(self, other: ExprLike) -> "Expr":
        return BinOp("^", self, lift(other))

    # comparison combinators --------------------------------------------
    def eq(self, other: ExprLike) -> "Expr":
        return BinOp("==", self, lift(other))

    def ne(self, other: ExprLike) -> "Expr":
        return BinOp("!=", self, lift(other))

    def lt(self, other: ExprLike) -> "Expr":
        return BinOp("<", self, lift(other))

    def le(self, other: ExprLike) -> "Expr":
        return BinOp("<=", self, lift(other))

    def gt(self, other: ExprLike) -> "Expr":
        return BinOp(">", self, lift(other))

    def ge(self, other: ExprLike) -> "Expr":
        return BinOp(">=", self, lift(other))

    def and_(self, other: ExprLike) -> "Expr":
        return BinOp("&&", self, lift(other))

    def or_(self, other: ExprLike) -> "Expr":
        return BinOp("||", self, lift(other))


class Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value: Value) -> None:
        self.value = value

    def evaluate(self, env: dict[str, Tainted]) -> Tainted:
        return Tainted(self.value, frozenset())

    def __repr__(self) -> str:
        return str(self.value)


class Reg(Expr):
    """A named thread-local register."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, env: dict[str, Tainted]) -> Tainted:
        try:
            return env[self.name]
        except KeyError:
            raise EvalError(f"register {self.name!r} used before assignment")

    def __repr__(self) -> str:
        return f"${self.name}"


class BinOp(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _BINOPS:
            raise EvalError(f"unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: dict[str, Tainted]) -> Tainted:
        lhs = self.left.evaluate(env)
        rhs = self.right.evaluate(env)
        return Tainted(
            _BINOPS[self.op](lhs.value, rhs.value), lhs.taint | rhs.taint
        )

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


def lift(value: ExprLike) -> Expr:
    """Coerce Python ints to :class:`Const`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):  # guard against accidental bools
        return Const(int(value))
    if isinstance(value, int):
        return Const(value)
    raise EvalError(f"cannot use {value!r} as an expression")
