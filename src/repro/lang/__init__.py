"""The concurrent register-machine DSL and its interpreter."""

from .builder import BlockBuilder, ProgramBuilder, ThreadBuilder
from .expr import BinOp, Const, EvalError, Expr, Reg, Tainted, lift
from .interpreter import ReplayStatus, ThreadReplay, replay
from .mappings import compile_to, mapping_targets
from .program import Program
from .stmt import (
    Assert,
    Assign,
    Assume,
    Cas,
    Fai,
    Fence,
    If,
    Load,
    LocExpr,
    Repeat,
    Stmt,
    Store,
    Xchg,
    loc,
)

__all__ = [
    "Assert",
    "Assign",
    "Assume",
    "BinOp",
    "BlockBuilder",
    "Cas",
    "Const",
    "EvalError",
    "Expr",
    "Fai",
    "Fence",
    "If",
    "Load",
    "LocExpr",
    "Program",
    "compile_to",
    "mapping_targets",
    "ProgramBuilder",
    "Reg",
    "Repeat",
    "ReplayStatus",
    "Stmt",
    "Store",
    "Tainted",
    "ThreadBuilder",
    "ThreadReplay",
    "Xchg",
    "lift",
    "loc",
    "replay",
]
