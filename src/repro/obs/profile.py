"""Deep-profiling hooks: hotspot attribution for relations, axioms
and the ``.cat`` evaluator.

The exploration core threads an observer everywhere, but the layers
whose cost actually dominates a run — derived-relation computation
(:mod:`repro.graphs.derived`) and ``.cat`` evaluation
(:mod:`repro.cat.eval`) — sit behind module-level memo caches with no
observer in their signatures.  Threading one through would put a new
argument on every relation call; instead this module keeps **one
process-global active registry** that those hot paths consult with a
single attribute load::

    reg = _STATE.registry
    if reg is not None:            # profiling off: this is the whole cost
        reg.inc("relation:po:memo_hit")

:class:`~repro.core.explorer.Explorer` activates the registry of its
observer for the duration of one run (and always deactivates it), so
the hooks are live exactly when the run is observed and cost one
``None`` check otherwise — the same discipline as ``NULL_OBSERVER``.
Activation nests (a fallback explorer inside a parallel coordinator
restores the outer registry on exit) and is per-process: parallel
workers activate their own observer's registry in their own process,
and the coordinator folds the snapshots back (see
``MetricsRegistry.merge_snapshot``).

Metric names the hooks reserve (all live in the ordinary counter /
histogram / phase namespaces of the registry):

* ``relation:<name>:memo_hit`` — a derived relation was served from the
  per-graph memo (counter);
* ``relation:<name>:incremental_hit`` — a stale cached relation was
  *extended* through the graph's delta log instead of recomputed
  (counter; see :mod:`repro.graphs.incremental`);
* phase ``relation:<name>`` — time spent *computing* a derived
  relation, whether from scratch or incrementally (nests inside
  whatever ``check:`` phase asked for it, so axiom self-time excludes
  relation-building time);
* ``acyclic:incremental_hit`` / ``acyclic:fallback`` — an incremental
  acyclicity check absorbed the inserted edges into its stored
  topological order (or proved they close a cycle), or gave up and
  re-ran the full DFS (counters);
* ``coherent:incremental_hit`` — a COH check verified only the events
  appended since its last verdict (counter);
* ``cat:memo_hit:<binding>`` / ``cat:memo_miss:<binding>`` — per-name
  memo behaviour of one ``.cat`` evaluation environment (counters);
* ``cat:fixpoint_iters:<names>`` — rounds a ``let rec`` group took to
  converge (histogram, one observation per solve);
* ``check:coherence:fail`` / ``check:axiom:<model>:fail`` — failed
  consistency checks (counters; totals come from the phase ``calls``);
* ``rf_fanout`` / ``co_fanout`` — consistent successors per read/write
  branch point (histograms);
* ``revisit_deleted`` — events deleted per performed backward revisit
  (histogram);
* ``graph_events`` — events per recorded complete execution
  (histogram).

See docs/OBSERVABILITY.md ("Deep profiling") for the full catalogue.
"""

from __future__ import annotations

from .metrics import MetricsRegistry


class _ProfileState:
    """Holder for the process-global active registry (a slot attribute
    is one pointer load on the hot path, and monkeypatch-friendly)."""

    __slots__ = ("registry",)

    def __init__(self) -> None:
        self.registry: MetricsRegistry | None = None


_STATE = _ProfileState()


def active() -> MetricsRegistry | None:
    """The registry profiling hooks currently report to (None = off)."""
    return _STATE.registry


class activation:
    """Context manager installing ``observer``'s registry as the active
    profile target (or None for a disabled observer), restoring the
    previous target on exit — so nested runs compose."""

    __slots__ = ("_registry", "_previous")

    def __init__(self, observer) -> None:
        self._registry = (
            getattr(observer, "metrics", None) if observer.enabled else None
        )
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> "activation":
        self._previous = _STATE.registry
        _STATE.registry = self._registry
        return self

    def __exit__(self, *exc) -> bool:
        _STATE.registry = self._previous
        return False


# -- reporting ---------------------------------------------------------------


def memo_rates(counters: dict) -> dict[str, dict]:
    """Per-name memoisation behaviour recovered from hook counters.

    Pairs ``relation:<n>:memo_hit`` with the ``relation:<n>`` phase is
    the caller's job (phases live elsewhere); this handles the cat
    namespace, whose hit *and* miss are both counters:
    ``{name: {"hits": h, "misses": m, "hit_rate": h / (h + m)}}``.
    """
    names: dict[str, dict] = {}
    for key, value in counters.items():
        for kind, prefix in (("hits", "cat:memo_hit:"), ("misses", "cat:memo_miss:")):
            if key.startswith(prefix):
                entry = names.setdefault(
                    key[len(prefix):], {"hits": 0, "misses": 0}
                )
                entry[kind] += int(value)
    for entry in names.values():
        total = entry["hits"] + entry["misses"]
        entry["hit_rate"] = round(entry["hits"] / total, 4) if total else None
    return names


def format_profile(snapshot: dict, top: int = 15) -> str:
    """Render a metrics snapshot as the ``--stats`` profile section."""
    lines = ["profile:"]
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("  counters (top by value):")
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        width = max(len(name) for name, _ in ranked[:top])
        for name, value in ranked[:top]:
            lines.append(f"    {name:<{width}}  {value:g}")
        if len(ranked) > top:
            lines.append(f"    ... {len(ranked) - top} more")
    rates = memo_rates(counters)
    if rates:
        lines.append("  cat memo hit rates:")
        for name in sorted(rates):
            entry = rates[name]
            shown = (
                "n/a"
                if entry["hit_rate"] is None
                else f"{100 * entry['hit_rate']:.1f}%"
            )
            lines.append(
                f"    {name}: {shown} "
                f"({entry['hits']} hit / {entry['misses']} miss)"
            )
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("  histograms:")
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"    {name}: n={h.get('count', 0)} "
                f"mean={h.get('mean', 0.0):g} "
                f"min={h.get('min')} max={h.get('max')}"
            )
    if len(lines) == 1:
        lines.append("  (no profile data recorded)")
    return "\n".join(lines)
