"""Aggregate a JSONL exploration trace into the paper-style table.

``repro trace-summary run.jsonl`` reproduces, from the trace alone,
the quantities the paper's tables report: executions, blocked and
deduplicated graphs, revisit acceptance, and the per-phase time
breakdown (taken from the ``run_end`` record's embedded phase report).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .trace import read_trace


@dataclass
class TraceSummary:
    """Counts recovered by folding over one trace's records."""

    program: str | None = None
    model: str | None = None
    schema: int | None = None
    records: int = 0
    executions: int = 0
    blocked: int = 0
    duplicates: int = 0
    errors: int = 0
    events_added: int = 0
    rf_branches: int = 0
    rf_candidates: int = 0
    co_branches: int = 0
    co_positions: int = 0
    revisits_considered: int = 0
    revisits_performed: int = 0
    revisits_rejected: dict[str, int] = field(default_factory=dict)
    #: parallel fault-model accounting (see docs/PARALLEL.md): subtree
    #: tasks dispatched to the pool and what happened to them
    tasks_dispatched: int = 0
    tasks_failed: int = 0
    tasks_retried: int = 0
    tasks_timeout: int = 0
    tasks_fallback: int = 0
    #: worker trace files whose tail had to be discarded mid-record
    traces_truncated: int = 0
    #: finished span records interleaved in the trace (service event
    #: dumps; see repro.obs.spans)
    spans: int = 0
    #: per-worker ``worker_metrics`` records: worker index -> its
    #: sub-result counts, for the load-balance (skew) line
    workers: dict[int, dict] = field(default_factory=dict)
    #: per-phase timing from the run_end record (may be empty when the
    #: run died before completing)
    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    elapsed: float | None = None
    truncated: bool = False

    @property
    def revisit_acceptance(self) -> float | None:
        if not self.revisits_considered:
            return None
        return self.revisits_performed / self.revisits_considered

    @property
    def worker_skew(self) -> dict | None:
        """Load-balance summary over ``worker_metrics`` records:
        min/max/mean executions per worker task and the imbalance ratio
        (max/mean; 1.0 = perfectly even shards)."""
        if not self.workers:
            return None
        executions = [w.get("executions", 0) for w in self.workers.values()]
        mean = sum(executions) / len(executions)
        return {
            "tasks": len(executions),
            "min_executions": min(executions),
            "max_executions": max(executions),
            "mean_executions": round(mean, 3),
            "imbalance": round(max(executions) / mean, 3) if mean else 1.0,
        }

    def as_dict(self) -> dict:
        out = dict(vars(self))
        out["revisits_rejected"] = dict(self.revisits_rejected)
        out["phases"] = dict(self.phases)
        out["workers"] = {k: dict(v) for k, v in self.workers.items()}
        rate = self.revisit_acceptance
        out["revisit_acceptance"] = None if rate is None else round(rate, 4)
        out["worker_skew"] = self.worker_skew
        return out


def summarize_records(records: Iterable[dict]) -> TraceSummary:
    """Fold trace records into a :class:`TraceSummary`."""
    s = TraceSummary()
    for rec in records:
        s.records += 1
        t = rec.get("t")
        if t == "trace_start":
            s.schema = rec.get("schema")
        elif t == "run_start":
            s.program = rec.get("program")
            s.model = rec.get("model")
        elif t == "event_added":
            s.events_added += 1
        elif t == "rf_branch":
            s.rf_branches += 1
            s.rf_candidates += rec.get("candidates", 0)
        elif t == "co_branch":
            s.co_branches += 1
            s.co_positions += rec.get("positions", 0)
        elif t == "revisit_considered":
            s.revisits_considered += 1
        elif t == "revisit_performed":
            s.revisits_performed += 1
        elif t == "revisit_rejected":
            reason = rec.get("reason", "unknown")
            s.revisits_rejected[reason] = s.revisits_rejected.get(reason, 0) + 1
        elif t == "graph_complete":
            s.executions += 1
        elif t == "graph_blocked":
            s.blocked += 1
        elif t == "graph_duplicate":
            s.duplicates += 1
        elif t == "error":
            s.errors += 1
        elif t == "parallel_dispatch":
            s.tasks_dispatched += rec.get("tasks", 0)
        elif t == "task_failed":
            s.tasks_failed += 1
        elif t == "task_retried":
            s.tasks_retried += 1
        elif t == "task_timeout":
            s.tasks_timeout += 1
        elif t == "task_fallback":
            s.tasks_fallback += 1
        elif t == "trace_truncated":
            s.traces_truncated += 1
        elif t == "span":
            s.spans += 1
        elif t == "worker_metrics":
            worker = rec.get("worker")
            if worker is not None:
                s.workers[worker] = {
                    "executions": rec.get("executions", 0),
                    "blocked": rec.get("blocked", 0),
                    "errors": rec.get("errors", 0),
                    "elapsed": rec.get("elapsed"),
                }
        elif t == "run_end":
            s.phases = rec.get("phases", {}) or {}
            s.elapsed = rec.get("elapsed")
            s.truncated = bool(rec.get("truncated", False))
    return s


def summarize_file(path: str) -> TraceSummary:
    return summarize_records(read_trace(path))


def format_phase_table(phases: dict[str, dict[str, float]]) -> list[str]:
    """Render a phase report as aligned text lines."""
    if not phases:
        return ["  (no phase timings recorded)"]
    width = max(len(name) for name in phases)
    lines = []
    for name, stat in phases.items():
        lines.append(
            f"  {name:<{width}}  self={stat.get('self', 0.0):8.4f}s  "
            f"total={stat.get('total', 0.0):8.4f}s  "
            f"calls={int(stat.get('calls', 0))}"
        )
    return lines


def format_summary(s: TraceSummary) -> str:
    """The paper-style table for one trace."""
    lines = [
        f"trace summary (schema {s.schema}, {s.records} records)",
        f"program    : {s.program or '?'}",
        f"model      : {s.model or '?'}",
        f"executions : {s.executions}",
        f"blocked    : {s.blocked}",
        f"duplicates : {s.duplicates}",
        f"errors     : {s.errors}",
        f"events     : {s.events_added} added "
        f"({s.rf_branches} rf branch points / {s.rf_candidates} candidates, "
        f"{s.co_branches} co branch points / {s.co_positions} positions)",
    ]
    rate = s.revisit_acceptance
    revisit = (
        f"revisits   : considered={s.revisits_considered} "
        f"performed={s.revisits_performed}"
    )
    if rate is not None:
        revisit += f" accepted={100 * rate:.1f}%"
    lines.append(revisit)
    if s.revisits_rejected:
        shown = " ".join(
            f"{k}={v}" for k, v in sorted(s.revisits_rejected.items())
        )
        lines.append(f"  rejected : {shown}")
    if s.tasks_dispatched or s.tasks_failed or s.tasks_retried:
        lines.append(
            f"parallel   : dispatched={s.tasks_dispatched} "
            f"failed={s.tasks_failed} retried={s.tasks_retried} "
            f"timeout={s.tasks_timeout} fallback={s.tasks_fallback}"
        )
    if s.traces_truncated:
        lines.append(
            f"  traces   : {s.traces_truncated} worker trace(s) truncated"
        )
    if s.spans:
        lines.append(f"spans      : {s.spans} finished span record(s)")
    skew = s.worker_skew
    if skew is not None:
        lines.append(
            f"  skew     : {skew['tasks']} tasks, executions "
            f"min={skew['min_executions']} max={skew['max_executions']} "
            f"mean={skew['mean_executions']} "
            f"(imbalance {skew['imbalance']}x)"
        )
    if s.truncated:
        lines.append("truncated  : yes (a search limit was hit)")
    lines.append("time by phase:")
    lines.extend(format_phase_table(s.phases))
    if s.elapsed is not None:
        lines.append(f"elapsed    : {s.elapsed:.4f}s")
    return "\n".join(lines)
