"""End-to-end span tracing: one trace_id across every layer of a run.

A **span** is one timed operation — an HTTP submit, a queued job, a
suite task, a worker subprocess exploring a subtree, a single
``check:*`` phase — recorded as plain JSON-ready data::

    {"trace_id": ..., "span_id": ..., "parent_id": ...,
     "name": "check:coherence", "cat": "phase",
     "start": <epoch seconds>, "dur": <seconds>,
     "pid": ..., "tid": ..., "attrs": {...}}

``start`` is wall-clock *aligned* but monotonically *measured*: each
tracer pins ``time.time()`` to ``perf_counter()`` once at construction
and derives every timestamp from the perf clock, so spans within one
process never go backwards while spans from different processes still
line up on one timeline (the processes share the system clock).

The tracer is deliberately stdlib-only and NULL-patterned like the
rest of :mod:`repro.obs`: :data:`NULL_TRACER` answers ``enabled``
False and no-ops everything, so instrumentation sites guard span
construction behind one attribute check and cost ~nothing when
tracing is off (the same <5% budget the observer holds).

Context crosses process boundaries as a **propagation token** — a
plain picklable dict ``{"trace_id": ..., "span_id": ...}`` riding the
existing payload tuples (``SubtreeTask``, suite job payloads).  The
worker builds its own :class:`SpanTracer` adopting the remote parent,
returns ``tracer.snapshot()`` with its result, and the coordinator
folds the segments back with :meth:`SpanTracer.absorb` — the same
shape as the PR-5 worker-metrics merge.

Three exporters:

* :func:`to_perfetto` — Chrome trace-event JSON (``chrome://tracing``
  / https://ui.perfetto.dev), validated by :func:`validate_perfetto`.
* :func:`flame_tree` / :func:`format_flame` — a terminal
  flamegraph-style self-time tree (``hmc trace flame``).
* :func:`span_summary` — per-name duration families rendered by
  :func:`repro.obs.export.to_prometheus`.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid

#: version stamp carried by exported span documents
SPAN_SCHEMA_VERSION = 1

#: default bounded-ring capacity per tracer (finished spans retained;
#: older spans are dropped and counted once the ring is full)
DEFAULT_SPAN_CAPACITY = 20_000


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return uuid.uuid4().hex[:16]


def make_span(
    name: str,
    *,
    trace_id: str,
    start: float,
    dur: float,
    cat: str = "span",
    parent_id: str | None = None,
    attrs: dict | None = None,
) -> dict:
    """A finished span record built outside any tracer (e.g. the HTTP
    submit span, timed by the server before an executor tracer
    exists)."""
    return {
        "trace_id": trace_id,
        "span_id": uuid.uuid4().hex[:12],
        "parent_id": parent_id,
        "name": name,
        "cat": cat,
        "start": start,
        "dur": max(0.0, dur),
        "pid": os.getpid(),
        "tid": threading.get_native_id(),
        "attrs": dict(attrs or {}),
    }


class _NullScope:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class NullTracer:
    """Tracer that traces nothing, as cheaply as possible."""

    #: False ⇒ skip span construction (and arg building) entirely
    enabled: bool = False
    trace_id: str | None = None
    dropped: int = 0

    def span(self, name: str, cat: str = "span", **attrs):
        return _NULL_SCOPE

    def start_span(self, name, cat="span", parent=None, **attrs):
        return None

    def end_span(self, span, **attrs) -> None:
        pass

    def current_context(self) -> dict | None:
        return None

    def absorb(self, spans) -> None:
        pass

    def snapshot(self) -> list[dict]:
        return []


#: the shared do-nothing tracer; safe to use from anywhere
NULL_TRACER = NullTracer()


class _SpanScope:
    """Context manager for one stacked (nested) span activation."""

    __slots__ = ("tracer", "name", "cat", "attrs", "parent", "span")

    def __init__(
        self, tracer: "SpanTracer", name, cat, attrs, parent=None
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self.parent = parent
        self.span = None

    def __enter__(self) -> dict:
        self.span = self.tracer._push(
            self.name, self.cat, self.attrs, self.parent
        )
        return self.span

    def __exit__(self, *exc) -> bool:
        self.tracer._pop(self.span)
        return False


class SpanTracer(NullTracer):
    """Collects spans for one trace into a bounded ring.

    Single-threaded by design (one tracer per coordinator thread or
    worker process — the same ownership model as ``MetricsRegistry``).
    ``remote_parent`` adopts a propagation token from another process:
    spans opened with no local parent attach there, stitching the
    worker's segment under the coordinator's span.

    ``on_finish`` (when given) receives each span dict as it finishes
    — the service streams them onto the job event ring this way.
    """

    enabled = True

    def __init__(
        self,
        trace_id: str | None = None,
        *,
        remote_parent: str | None = None,
        capacity: int = DEFAULT_SPAN_CAPACITY,
        clock=time.perf_counter,
        on_finish=None,
    ) -> None:
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.remote_parent = remote_parent
        self.capacity = max(1, capacity)
        self.on_finish = on_finish
        self.finished: list[dict] = []
        self.dropped = 0
        self._clock = clock
        # per-tracer unique span-id prefix: os.getpid() alone is unsafe
        # (pids recycle across pool rebuilds), a fresh random prefix is
        # unique per tracer regardless
        self._prefix = uuid.uuid4().hex[:8]
        self._seq = 0
        self._stack: list[dict] = []
        self._wall0 = time.time()
        self._perf0 = clock()
        self._pid = os.getpid()
        self._tid = threading.get_native_id()

    # -- internals --------------------------------------------------------

    def _new_id(self) -> str:
        self._seq += 1
        return f"{self._prefix}-{self._seq:x}"

    def _open(self, name, cat, parent_id, attrs) -> dict:
        t0 = self._clock()
        return {
            "trace_id": self.trace_id,
            "span_id": self._new_id(),
            "parent_id": parent_id,
            "name": str(name),
            "cat": str(cat),
            "start": self._wall0 + (t0 - self._perf0),
            "dur": 0.0,
            "pid": self._pid,
            "tid": self._tid,
            "attrs": dict(attrs) if attrs else {},
            "_t0": t0,
        }

    def _finish(self, span: dict, extra_attrs: dict | None = None) -> None:
        t0 = span.pop("_t0", None)
        if t0 is not None:
            span["dur"] = self._clock() - t0
        if extra_attrs:
            span["attrs"].update(extra_attrs)
        self.finished.append(span)
        if len(self.finished) > self.capacity:
            overflow = len(self.finished) - self.capacity
            del self.finished[:overflow]
            self.dropped += overflow
        if self.on_finish is not None:
            self.on_finish(span)

    def _push(self, name, cat, attrs, parent=None) -> dict:
        parent_id = self._parent_id(parent)
        span = self._open(name, cat, parent_id, attrs)
        self._stack.append(span)
        return span

    def _parent_id(self, parent) -> str | None:
        """Resolve an explicit parent (span dict | span_id | None =
        innermost stacked span, else the adopted remote parent)."""
        if parent is None:
            return (
                self._stack[-1]["span_id"]
                if self._stack
                else self.remote_parent
            )
        if isinstance(parent, dict):
            return parent.get("span_id")
        return parent

    def _pop(self, span: dict) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        self._finish(span)

    # -- the tracing interface --------------------------------------------

    def span(self, name: str, cat: str = "span", parent=None, **attrs):
        """A ``with``-able span nested under the current span (the
        tracer keeps a stack, like phase timers).  ``parent``
        optionally overrides the stack — e.g. nesting under a
        *detached* span that lifetimes prevent from being stacked."""
        return _SpanScope(self, name, cat, attrs, parent)

    def start_span(self, name, cat="span", parent=None, **attrs) -> dict:
        """Begin a *detached* span: not on the nesting stack, so
        overlapping lifetimes (suite tasks in flight concurrently) are
        fine.  ``parent`` is a span dict, a span_id string, or None
        (= current span / remote parent).  Finish with
        :meth:`end_span`."""
        return self._open(name, cat, self._parent_id(parent), attrs)

    def end_span(self, span, **attrs) -> None:
        """Finish a span from :meth:`start_span` (no-op on None, so
        callers need no guard when tracing was off)."""
        if span is not None:
            self._finish(span, attrs or None)

    def current_context(self) -> dict | None:
        """The propagation token for the innermost active span (falls
        back to the adopted remote parent): ship this dict to another
        process and build its tracer with
        ``SpanTracer(trace_id=ctx["trace_id"],
        remote_parent=ctx["span_id"])``."""
        if self._stack:
            return {
                "trace_id": self.trace_id,
                "span_id": self._stack[-1]["span_id"],
            }
        if self.remote_parent is not None:
            return {"trace_id": self.trace_id, "span_id": self.remote_parent}
        return None

    def absorb(self, spans) -> None:
        """Fold finished span records from another tracer (typically a
        worker's :meth:`snapshot` that crossed the process boundary)
        into this ring, preserving their ids and timestamps."""
        for span in spans or ():
            if isinstance(span, dict) and "span_id" in span:
                self._finish(dict(span))

    def snapshot(self) -> list[dict]:
        """The finished spans, as picklable plain data (open spans are
        not included — finish them first)."""
        return [dict(span) for span in self.finished]


# -- Chrome/Perfetto export --------------------------------------------------


def to_perfetto(spans, trace_id: str | None = None) -> dict:
    """Render spans as a Chrome trace-event JSON document.

    Every span becomes one complete ("X") event with microsecond
    ``ts``/``dur``; span identity rides in ``args`` so the parent
    chain survives the format.  A span whose parent is not in the
    document (its segment was dropped from a full ring, or the caller
    filtered) is re-parented to the root and marked
    ``args.orphan_of`` — the document stays loadable and
    :func:`validate_perfetto`-clean either way.
    """
    chosen = [
        s
        for s in spans
        if isinstance(s, dict)
        and "span_id" in s
        and (trace_id is None or s.get("trace_id") == trace_id)
    ]
    known = {s["span_id"] for s in chosen}
    events = []
    trace_ids = sorted({s.get("trace_id") for s in chosen if s.get("trace_id")})
    for span in sorted(chosen, key=lambda s: s.get("start", 0.0)):
        args = {
            "trace_id": span.get("trace_id"),
            "span_id": span["span_id"],
            "parent_id": span.get("parent_id"),
        }
        parent = span.get("parent_id")
        if parent is not None and parent not in known:
            args["parent_id"] = None
            args["orphan_of"] = parent
        for key, value in sorted(span.get("attrs", {}).items()):
            args[f"attr.{key}"] = value
        events.append(
            {
                "name": span.get("name", "?"),
                "cat": span.get("cat", "span"),
                "ph": "X",
                "ts": round(span.get("start", 0.0) * 1e6, 3),
                "dur": round(max(0.0, span.get("dur", 0.0)) * 1e6, 3),
                "pid": int(span.get("pid", 0)),
                "tid": int(span.get("tid", 0)),
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": SPAN_SCHEMA_VERSION,
            "generator": "repro.obs.spans",
            "trace_ids": trace_ids,
        },
    }


#: required keys (and types) of every Perfetto "X" event we emit
_PERFETTO_EVENT_SCHEMA = {
    "name": str,
    "cat": str,
    "ph": str,
    "ts": (int, float),
    "dur": (int, float),
    "pid": int,
    "tid": int,
    "args": dict,
}


def validate_perfetto(
    doc: dict, trace_id: str | None = None, min_pids: int = 1
) -> dict:
    """Schema-check a :func:`to_perfetto` document.

    Raises :class:`ValueError` on the first problem; returns a summary
    dict (event/pid/trace counts) on success.  ``trace_id`` asserts
    every event belongs to that trace; ``min_pids`` asserts spans from
    at least that many distinct processes are present (the e2e
    acceptance check: coordinator *and* pool worker on one timeline).
    """
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        raise ValueError("not a trace-event document: traceEvents missing")
    events = doc["traceEvents"]
    if not events:
        raise ValueError("trace-event document has no events")
    span_ids: set[str] = set()
    pids: set[int] = set()
    trace_ids: set[str] = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        for key, kind in _PERFETTO_EVENT_SCHEMA.items():
            if key not in event:
                raise ValueError(f"event {i} ({event.get('name')}): no {key!r}")
            if not isinstance(event[key], kind) or isinstance(
                event[key], bool
            ):
                raise ValueError(
                    f"event {i} ({event.get('name')}): {key!r} has type "
                    f"{type(event[key]).__name__}"
                )
        if event["ph"] != "X":
            raise ValueError(f"event {i}: ph must be 'X', got {event['ph']!r}")
        if event["ts"] < 0 or event["dur"] < 0:
            raise ValueError(f"event {i}: negative ts/dur")
        args = event["args"]
        span_id = args.get("span_id")
        if not isinstance(span_id, str) or not span_id:
            raise ValueError(f"event {i}: args.span_id missing")
        if span_id in span_ids:
            raise ValueError(f"duplicate span_id {span_id!r}")
        span_ids.add(span_id)
        pids.add(event["pid"])
        if args.get("trace_id"):
            trace_ids.add(args["trace_id"])
        if trace_id is not None and args.get("trace_id") != trace_id:
            raise ValueError(
                f"event {i} ({event['name']}): trace_id "
                f"{args.get('trace_id')!r} != expected {trace_id!r}"
            )
    for i, event in enumerate(events):
        parent = event["args"].get("parent_id")
        if parent is not None and parent not in span_ids:
            raise ValueError(
                f"event {i} ({event['name']}): parent_id {parent!r} "
                "resolves to no span in the document"
            )
    if len(pids) < min_pids:
        raise ValueError(
            f"spans from {len(pids)} process(es), expected >= {min_pids}"
        )
    return {
        "events": len(events),
        "pids": len(pids),
        "trace_ids": sorted(trace_ids),
    }


# -- flamegraph / self-time tree ---------------------------------------------


class FlameNode:
    """One aggregation node: all spans sharing a name path."""

    __slots__ = ("name", "cat", "total", "self_time", "calls", "children")

    def __init__(self, name: str, cat: str = "span") -> None:
        self.name = name
        self.cat = cat
        self.total = 0.0
        self.self_time = 0.0
        self.calls = 0
        self.children: dict[str, FlameNode] = {}


def flame_tree(spans) -> FlameNode:
    """Aggregate spans into a flamegraph tree by name path.

    Roots are spans with no (resolvable) parent; a span's self time is
    its duration minus its direct children's durations (clamped at 0 —
    absorbed segments from other processes can overlap their parent).
    Same-named siblings merge, so repeated phases fold into one node
    with a call count, like a collapsed flamegraph.
    """
    records = [s for s in spans if isinstance(s, dict) and "span_id" in s]
    by_id = {s["span_id"]: s for s in records}
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    for span in records:
        parent = span.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    root = FlameNode("<root>", cat="root")

    def _fold(span: dict, node: FlameNode) -> None:
        name = span.get("name", "?")
        child = node.children.get(name)
        if child is None:
            child = node.children[name] = FlameNode(
                name, span.get("cat", "span")
            )
        dur = max(0.0, span.get("dur", 0.0))
        kids = children.get(span["span_id"], ())
        kid_time = sum(max(0.0, k.get("dur", 0.0)) for k in kids)
        child.total += dur
        child.self_time += max(0.0, dur - kid_time)
        child.calls += 1
        for kid in sorted(kids, key=lambda s: s.get("start", 0.0)):
            _fold(kid, child)

    for span in sorted(roots, key=lambda s: s.get("start", 0.0)):
        _fold(span, root)
    root.total = sum(c.total for c in root.children.values())
    root.calls = sum(c.calls for c in root.children.values())
    return root


def format_flame(
    spans, *, width: int = 30, min_frac: float = 0.0
) -> str:
    """Render spans as an indented self-time tree with duration bars.

    ``width`` is the bar width in characters; ``min_frac`` hides
    subtrees below that fraction of the root total (0 shows all).
    """
    spans = list(spans or ())
    root = flame_tree(spans)
    if not root.children:
        return "(no spans)"

    def _max_total(node: FlameNode) -> float:
        return max(
            node.total,
            max((_max_total(c) for c in node.children.values()), default=0.0),
        )

    # an async child can outlive its root (an http:submit span closes at
    # 202-accept while the job it spawned keeps running), so scale bars
    # by the largest node, not the root sum — identical when roots
    # dominate, bounded when they don't
    scale = _max_total(root) or 1.0
    lines = [
        f"trace flame: {len(spans)} spans, {root.total:.4f}s total "
        "(self-time tree; bar = share of total)"
    ]

    def _emit(node: FlameNode, depth: int) -> None:
        frac = node.total / scale
        # prune on the subtree's peak, not the node: a short async
        # parent must not hide the long-running work under it
        if _max_total(node) / scale < min_frac:
            return
        bar = "#" * max(1, round(frac * width))
        lines.append(
            f"  {'  ' * depth}{node.name:<{max(1, 36 - 2 * depth)}} "
            f"total={node.total:9.4f}s self={node.self_time:9.4f}s "
            f"calls={node.calls:<5d} {bar}"
        )
        for child in sorted(
            node.children.values(), key=lambda n: -n.total
        ):
            _emit(child, depth + 1)

    for child in sorted(root.children.values(), key=lambda n: -n.total):
        _emit(child, 0)
    return "\n".join(lines)


# -- Prometheus summary + JSONL IO -------------------------------------------


def span_summary(spans) -> dict:
    """Per-name duration families: ``name -> {calls, seconds, cat}``,
    sorted by name.  This is what run manifests carry and
    :func:`repro.obs.export.to_prometheus` renders as
    ``repro_span_seconds_total`` / ``repro_span_calls_total``."""
    summary: dict[str, dict] = {}
    for span in spans or ():
        if not isinstance(span, dict) or "span_id" not in span:
            continue
        name = span.get("name", "?")
        entry = summary.setdefault(
            name, {"calls": 0, "seconds": 0.0, "cat": span.get("cat", "span")}
        )
        entry["calls"] += 1
        entry["seconds"] += max(0.0, span.get("dur", 0.0))
    for entry in summary.values():
        entry["seconds"] = round(entry["seconds"], 6)
    return {name: summary[name] for name in sorted(summary)}


def write_spans(path: str, spans) -> int:
    """Write spans as JSONL; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        for span in spans:
            handle.write(json.dumps(span, sort_keys=True) + "\n")
            count += 1
    return count


def read_spans(path: str) -> list[dict]:
    """Read spans from JSONL written by :func:`write_spans` — or from a
    job event stream dump, whose span records carry ``t == "span"``
    plus ring stamps that are stripped here.  Non-span records (other
    event types, malformed lines) are skipped."""
    spans: list[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            if record.get("t") is not None and record.get("t") != "span":
                continue
            record = {
                k: v
                for k, v in record.items()
                if k not in ("t", "seq", "ts", "worker")
            }
            if "span_id" in record and "trace_id" in record:
                spans.append(record)
    return spans
