"""Run manifests and the persistent run store.

A **run manifest** is a versioned JSON document capturing everything a
verification run produced that is worth comparing later: the headline
counts, exploration statistics, per-phase timings, and the profiler's
metrics snapshot.  Manifests are the interchange format of the
run-history tooling — ``repro runs list|show|diff|check`` — and the
input to the Prometheus exporter (:mod:`repro.obs.export`).

The **run store** is a flat directory of manifests (default
``.repro/runs/``, overridable with ``REPRO_RUNS_DIR`` or ``--dir``),
one ``<run-id>.json`` per saved run.  Run ids are
``YYYYMMDDTHHMMSS-<hash8>`` — sortable by creation time, unique by
content hash — and every command accepts an unambiguous id prefix.

``diff_manifests`` compares two manifests field by field;
``check_manifest`` turns the comparison into a CI gate: exact-count
mismatches (executions / blocked / errors / outcomes) are
**violations** — on a deterministic exhaustive search they must not
move — while timing regressions and scheduling-sensitive counters
(duplicates, per-worker accounting) are **warnings** governed by a
ratio threshold and a noise floor.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

MANIFEST_SCHEMA_VERSION = 1

#: manifest kind for single verification runs
RUN_MANIFEST_KIND = "repro-run-manifest"

#: manifest kind for batched suite runs (written by repro.suite)
SUITE_MANIFEST_KIND = "repro-suite-manifest"

#: every manifest kind the store reads, with the schema version this
#: build understands for each
MANIFEST_SCHEMAS = {
    RUN_MANIFEST_KIND: MANIFEST_SCHEMA_VERSION,
    SUITE_MANIFEST_KIND: 1,
}

#: environment override for the store location
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: default store location, relative to the working directory
DEFAULT_RUNS_DIR = os.path.join(".repro", "runs")

#: exact-match result fields: a mismatch is a correctness regression
EXACT_FIELDS = ("executions", "blocked", "errors")

#: result fields compared but only warned about (parallel scheduling
#: legitimately perturbs them)
NOISY_FIELDS = ("duplicates",)


def _outcome_key(outcome) -> str:
    """A stable string form of one observable outcome."""
    return ",".join(f"{k}={v}" for k, v in outcome)


def build_manifest(
    result,
    snapshot: dict | None = None,
    command: str | None = None,
    jobs: int | None = None,
    created: float | None = None,
    spans: list | None = None,
) -> dict:
    """Assemble the versioned manifest for one verification run.

    ``result`` is a :class:`~repro.core.result.VerificationResult`;
    ``snapshot`` the observer's ``metrics_snapshot()`` (omitted when
    the run was unobserved); ``spans`` optionally the run's finished
    trace spans, folded into a per-name duration summary (the raw
    spans stay in the ``--spans-out`` file — manifests keep only the
    aggregate).  The manifest is pure JSON-ready data.
    """
    created = time.time() if created is None else created
    meta = {
        k: v
        for k, v in result.meta.items()
        if isinstance(v, (int, float, bool, str, type(None), dict, list))
    }
    manifest = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "kind": RUN_MANIFEST_KIND,
        "created": created,
        "created_iso": time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.localtime(created)
        ),
        "program": result.program,
        "model": result.model,
        "command": command,
        "jobs": jobs,
        "result": {
            "executions": result.executions,
            "blocked": result.blocked,
            "duplicates": result.duplicates,
            "errors": len(result.errors),
            "truncated": result.truncated,
            "elapsed": round(result.elapsed, 6),
            "outcomes": {
                _outcome_key(outcome): count
                for outcome, count in sorted(result.outcomes.items())
            },
            "stats": result.stats.as_dict(),
            "meta": meta,
        },
        "phases": result.phase_times,
        "metrics": {
            "counters": dict((snapshot or {}).get("counters", {})),
            "gauges": dict((snapshot or {}).get("gauges", {})),
            "histograms": dict((snapshot or {}).get("histograms", {})),
        },
    }
    if spans:
        from .spans import span_summary

        manifest["spans"] = span_summary(spans)
    return manifest


def manifest_run_id(manifest: dict) -> str:
    """The store filename stem for ``manifest``: creation timestamp
    (sortable) plus a content-hash suffix (unique)."""
    stamp = time.strftime(
        "%Y%m%dT%H%M%S", time.localtime(manifest.get("created", 0))
    )
    digest = hashlib.sha256(
        json.dumps(manifest, sort_keys=True).encode()
    ).hexdigest()[:8]
    return f"{stamp}-{digest}"


class RunStore:
    """A flat directory of manifests.

    The store holds both single-run manifests (``--save-run``) and
    suite manifests (:mod:`repro.suite`) side by side; ``kind`` filters
    the listing commands, while ``load`` accepts any known kind unless
    pinned.
    """

    def __init__(self, root: str | None = None, kind: str | None = None) -> None:
        self.root = (
            root
            if root is not None
            else os.environ.get(RUNS_DIR_ENV) or DEFAULT_RUNS_DIR
        )
        #: when set, list_runs/latest only surface this manifest kind
        self.kind = kind

    # -- writing ---------------------------------------------------------

    def save(self, manifest: dict) -> str:
        """Persist ``manifest``; returns the path written."""
        os.makedirs(self.root, exist_ok=True)
        run_id = manifest_run_id(manifest)
        manifest = {**manifest, "run_id": run_id}
        path = os.path.join(self.root, f"{run_id}.json")
        tmp = f"{path}.tmp"
        with open(tmp, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    # -- reading ---------------------------------------------------------

    def run_ids(self) -> list[str]:
        """All stored run ids, oldest first."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.root)
            if name.endswith(".json")
        )

    def list_runs(self) -> list[dict]:
        """All stored manifests of this store's kind, oldest first."""
        manifests = []
        for run_id in self.run_ids():
            manifest = self.load(run_id)
            if self.kind is None or manifest.get("kind") == self.kind:
                manifests.append(manifest)
        return manifests

    def latest(self) -> dict | None:
        """The newest stored manifest of this store's kind."""
        manifests = self.list_runs()
        return manifests[-1] if manifests else None

    def load(self, ref: str) -> dict:
        """Load a manifest by run id, unambiguous id prefix, or path.

        Raises :class:`FileNotFoundError` for an unknown ref and
        :class:`ValueError` for an ambiguous prefix or a file that is
        not a run manifest.
        """
        if os.sep in ref or ref.endswith(".json") or os.path.isfile(ref):
            path = ref
        else:
            matches = [i for i in self.run_ids() if i.startswith(ref)]
            if not matches:
                raise FileNotFoundError(
                    f"no run matching {ref!r} in {self.root}"
                )
            if len(matches) > 1:
                raise ValueError(
                    f"ambiguous run ref {ref!r}: matches "
                    + ", ".join(matches)
                )
            path = os.path.join(self.root, f"{matches[0]}.json")
        with open(path) as handle:
            manifest = json.load(handle)
        kind = manifest.get("kind")
        if kind not in MANIFEST_SCHEMAS:
            raise ValueError(f"{path} is not a run manifest")
        expected = MANIFEST_SCHEMAS[kind]
        schema = manifest.get("schema")
        if schema != expected:
            raise ValueError(
                f"{path}: unsupported manifest schema {schema!r} "
                f"(this build reads {expected} for {kind})"
            )
        return manifest


# -- comparison --------------------------------------------------------------


def diff_manifests(a: dict, b: dict) -> dict:
    """Field-by-field comparison of two manifests (``a`` = old/baseline,
    ``b`` = new/current).  Returns JSON-ready data; render with
    :func:`format_diff`."""
    ra, rb = a.get("result", {}), b.get("result", {})
    counts = {}
    for key in (*EXACT_FIELDS, *NOISY_FIELDS, "truncated"):
        if ra.get(key) != rb.get(key):
            counts[key] = {"old": ra.get(key), "new": rb.get(key)}
    stats = {}
    sa, sb = ra.get("stats", {}), rb.get("stats", {})
    for key in sorted(set(sa) | set(sb)):
        if sa.get(key, 0) != sb.get(key, 0):
            stats[key] = {"old": sa.get(key, 0), "new": sb.get(key, 0)}
    oa, ob = ra.get("outcomes", {}), rb.get("outcomes", {})
    outcomes = {
        "added": sorted(set(ob) - set(oa)),
        "removed": sorted(set(oa) - set(ob)),
        "recount": {
            k: {"old": oa[k], "new": ob[k]}
            for k in sorted(set(oa) & set(ob))
            if oa[k] != ob[k]
        },
    }
    ca = a.get("metrics", {}).get("counters", {})
    cb = b.get("metrics", {}).get("counters", {})
    counters = {}
    for key in sorted(set(ca) | set(cb)):
        if ca.get(key, 0) != cb.get(key, 0):
            counters[key] = {"old": ca.get(key, 0), "new": cb.get(key, 0)}
    ea, eb = ra.get("elapsed", 0.0), rb.get("elapsed", 0.0)
    timing = {
        "elapsed": {
            "old": ea,
            "new": eb,
            "ratio": round(eb / ea, 3) if ea else None,
        }
    }
    pa, pb = a.get("phases", {}) or {}, b.get("phases", {}) or {}
    phases = {}
    for key in sorted(set(pa) | set(pb)):
        old = (pa.get(key) or {}).get("self", 0.0)
        new = (pb.get(key) or {}).get("self", 0.0)
        if old or new:
            phases[key] = {
                "old": old,
                "new": new,
                "ratio": round(new / old, 3) if old else None,
            }
    return {
        "old": a.get("run_id") or a.get("created_iso"),
        "new": b.get("run_id") or b.get("created_iso"),
        "program": {"old": a.get("program"), "new": b.get("program")},
        "model": {"old": a.get("model"), "new": b.get("model")},
        "counts": counts,
        "stats": stats,
        "outcomes": outcomes,
        "counters": counters,
        "timing": timing,
        "phases": phases,
    }


def format_diff(diff: dict) -> str:
    """Render :func:`diff_manifests` output as aligned text."""
    lines = [f"run diff: {diff['old']} -> {diff['new']}"]
    for key in ("program", "model"):
        pair = diff[key]
        if pair["old"] != pair["new"]:
            lines.append(
                f"  {key} differs: {pair['old']!r} vs {pair['new']!r}"
            )
    changed = False
    for section in ("counts", "stats", "counters"):
        entries = diff[section]
        if not entries:
            continue
        changed = True
        lines.append(f"  {section}:")
        for key, pair in entries.items():
            lines.append(f"    {key}: {pair['old']} -> {pair['new']}")
    outcomes = diff["outcomes"]
    if outcomes["added"] or outcomes["removed"] or outcomes["recount"]:
        changed = True
        lines.append("  outcomes:")
        for key in outcomes["added"]:
            lines.append(f"    + {{{key}}}")
        for key in outcomes["removed"]:
            lines.append(f"    - {{{key}}}")
        for key, pair in outcomes["recount"].items():
            lines.append(f"    {{{key}}}: {pair['old']} -> {pair['new']}")
    elapsed = diff["timing"]["elapsed"]
    ratio = elapsed["ratio"]
    if ratio is not None:
        suffix = f" ({ratio:.2f}x)"
    elif elapsed["new"]:
        suffix = " (baseline ~0s: ratio n/a)"
    else:
        suffix = ""
    lines.append(
        f"  elapsed: {elapsed['old']:.4f}s -> {elapsed['new']:.4f}s"
        + suffix
    )
    slow = {
        name: pair
        for name, pair in diff["phases"].items()
        if pair["ratio"] is not None and pair["ratio"] >= 1.2
    }
    if slow:
        lines.append("  slower phases (self time):")
        for name, pair in sorted(
            slow.items(), key=lambda kv: -(kv[1]["ratio"] or 0)
        ):
            lines.append(
                f"    {name}: {pair['old']:.4f}s -> {pair['new']:.4f}s "
                f"({pair['ratio']:.2f}x)"
            )
    if not changed:
        lines.append("  results identical")
    return "\n".join(lines)


def check_manifest(
    current: dict,
    baseline: dict,
    max_ratio: float = 1.5,
    min_seconds: float = 0.05,
) -> tuple[list[str], list[str]]:
    """Gate ``current`` against ``baseline``.

    Returns ``(violations, warnings)``: violations are result-count or
    outcome mismatches (a deterministic exhaustive search must
    reproduce the baseline exactly); warnings are timing regressions
    beyond ``max_ratio`` (ignored below the ``min_seconds`` noise
    floor) and scheduling-sensitive counter drift.
    """
    violations: list[str] = []
    warnings: list[str] = []
    for key in ("program", "model"):
        if current.get(key) != baseline.get(key):
            violations.append(
                f"{key} mismatch: baseline {baseline.get(key)!r}, "
                f"current {current.get(key)!r} — comparing different runs?"
            )
    rc, rb = current.get("result", {}), baseline.get("result", {})
    for key in EXACT_FIELDS:
        if rc.get(key) != rb.get(key):
            violations.append(
                f"{key}: baseline {rb.get(key)}, current {rc.get(key)}"
            )
    oc, ob = rc.get("outcomes", {}), rb.get("outcomes", {})
    for key in sorted(set(ob) - set(oc)):
        violations.append(f"outcome lost: {{{key}}}")
    for key in sorted(set(oc) - set(ob)):
        violations.append(f"outcome gained: {{{key}}}")
    for key in NOISY_FIELDS:
        if rc.get(key) != rb.get(key):
            warnings.append(
                f"{key}: baseline {rb.get(key)}, current {rc.get(key)} "
                "(scheduling-sensitive)"
            )
    sc, sb = rc.get("stats", {}), rb.get("stats", {})
    for key in sorted(set(sc) | set(sb)):
        if sc.get(key, 0) != sb.get(key, 0):
            warnings.append(
                f"stats.{key}: baseline {sb.get(key, 0)}, "
                f"current {sc.get(key, 0)}"
            )
    old, new = rb.get("elapsed", 0.0), rc.get("elapsed", 0.0)
    if old >= min_seconds and new >= min_seconds and new > old * max_ratio:
        warnings.append(
            f"elapsed regression: {old:.4f}s -> {new:.4f}s "
            f"({new / old:.2f}x > {max_ratio}x threshold)"
        )
    elif old < min_seconds <= new:
        # a ~zero baseline makes the ratio meaningless (and used to
        # make the gate silently pass); flag it instead of skipping
        warnings.append(
            f"elapsed baseline-zero: baseline {old:.4f}s is below the "
            f"{min_seconds:.2f}s noise floor but current is {new:.4f}s "
            "— ratio gate not applicable; re-baseline to arm it"
        )
    pc = current.get("phases", {}) or {}
    pb = baseline.get("phases", {}) or {}
    for name in sorted(set(pc) & set(pb)):
        old = (pb.get(name) or {}).get("self", 0.0)
        new = (pc.get(name) or {}).get("self", 0.0)
        if old >= min_seconds and new > old * max_ratio:
            warnings.append(
                f"phase {name!r} self-time regression: "
                f"{old:.4f}s -> {new:.4f}s ({new / old:.2f}x)"
            )
        elif old < min_seconds <= new:
            warnings.append(
                f"phase {name!r} baseline-zero: baseline {old:.4f}s is "
                f"below the {min_seconds:.2f}s noise floor but current "
                f"is {new:.4f}s — ratio gate not applicable"
            )
    return violations, warnings


def format_check(
    violations: list[str], warnings: list[str], warn_only: bool = False
) -> str:
    """Render a :func:`check_manifest` verdict as text."""
    lines = []
    for message in violations:
        lines.append(f"VIOLATION: {message}")
    for message in warnings:
        lines.append(f"warning: {message}")
    if not violations and not warnings:
        lines.append("check passed: current run matches the baseline")
    elif not violations:
        lines.append(f"check passed with {len(warnings)} warning(s)")
    elif warn_only:
        lines.append(
            f"check FAILED with {len(violations)} violation(s) "
            "(warn-only: exit 0)"
        )
    else:
        lines.append(f"check FAILED with {len(violations)} violation(s)")
    return "\n".join(lines)
