"""repro.obs — observability for the checker.

A zero-dependency metrics registry (counters, gauges, histograms,
nested phase timers), structured JSONL exploration traces, a progress
heartbeat for long runs, trace aggregation into the paper-style
summary table, deep-profiling hooks for hotspot attribution
(:mod:`repro.obs.profile`), a persistent run store with regression
gating (:mod:`repro.obs.runstore`), and a Prometheus exporter
(:mod:`repro.obs.export`).  The checker is instrumented against the
:class:`Observer` facade; the default :data:`NULL_OBSERVER` makes the
instrumentation cost ~nothing when observability is off.

See docs/OBSERVABILITY.md for the trace schema and metric names.
"""

from .export import service_families, to_prometheus
from .metrics import Histogram, MetricsRegistry, PhaseStat
from .observer import NULL_OBSERVER, NullObserver, Observer
from .profile import format_profile, memo_rates
from .progress import ProgressMeter, ProgressReporter, parse_progress_spec
from .runstore import (
    MANIFEST_SCHEMA_VERSION,
    MANIFEST_SCHEMAS,
    RUN_MANIFEST_KIND,
    SUITE_MANIFEST_KIND,
    RunStore,
    build_manifest,
    check_manifest,
    diff_manifests,
    format_check,
    format_diff,
)
from .spans import (
    NULL_TRACER,
    SPAN_SCHEMA_VERSION,
    FlameNode,
    NullTracer,
    SpanTracer,
    flame_tree,
    format_flame,
    make_span,
    new_trace_id,
    read_spans,
    span_summary,
    to_perfetto,
    validate_perfetto,
    write_spans,
)
from .summary import (
    TraceSummary,
    format_phase_table,
    format_summary,
    summarize_file,
    summarize_records,
)
from .trace import (
    TRACE_SCHEMA_VERSION,
    FileSink,
    MemorySink,
    TraceWriter,
    parse_trace,
    read_trace,
    read_trace_prefix,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "PhaseStat",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "ProgressMeter",
    "ProgressReporter",
    "parse_progress_spec",
    "format_profile",
    "memo_rates",
    "service_families",
    "to_prometheus",
    "MANIFEST_SCHEMA_VERSION",
    "MANIFEST_SCHEMAS",
    "RUN_MANIFEST_KIND",
    "SUITE_MANIFEST_KIND",
    "RunStore",
    "build_manifest",
    "check_manifest",
    "diff_manifests",
    "format_check",
    "format_diff",
    "NULL_TRACER",
    "SPAN_SCHEMA_VERSION",
    "FlameNode",
    "NullTracer",
    "SpanTracer",
    "flame_tree",
    "format_flame",
    "make_span",
    "new_trace_id",
    "read_spans",
    "span_summary",
    "to_perfetto",
    "validate_perfetto",
    "write_spans",
    "TraceSummary",
    "format_phase_table",
    "format_summary",
    "summarize_file",
    "summarize_records",
    "TRACE_SCHEMA_VERSION",
    "FileSink",
    "MemorySink",
    "TraceWriter",
    "parse_trace",
    "read_trace",
    "read_trace_prefix",
]
