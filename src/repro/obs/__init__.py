"""repro.obs — observability for the checker.

A zero-dependency metrics registry (counters, gauges, histograms,
nested phase timers), structured JSONL exploration traces, a progress
heartbeat for long runs, and trace aggregation into the paper-style
summary table.  The checker is instrumented against the
:class:`Observer` facade; the default :data:`NULL_OBSERVER` makes the
instrumentation cost ~nothing when observability is off.

See docs/OBSERVABILITY.md for the trace schema and metric names.
"""

from .metrics import Histogram, MetricsRegistry, PhaseStat
from .observer import NULL_OBSERVER, NullObserver, Observer
from .progress import ProgressReporter
from .summary import (
    TraceSummary,
    format_phase_table,
    format_summary,
    summarize_file,
    summarize_records,
)
from .trace import (
    TRACE_SCHEMA_VERSION,
    FileSink,
    MemorySink,
    TraceWriter,
    parse_trace,
    read_trace,
    read_trace_prefix,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "PhaseStat",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "ProgressReporter",
    "TraceSummary",
    "format_phase_table",
    "format_summary",
    "summarize_file",
    "summarize_records",
    "TRACE_SCHEMA_VERSION",
    "FileSink",
    "MemorySink",
    "TraceWriter",
    "parse_trace",
    "read_trace",
    "read_trace_prefix",
]
