"""Zero-dependency metrics: counters, gauges, histograms, phase timers.

The registry is the in-process backend of the observability layer
(see docs/OBSERVABILITY.md).  It is deliberately tiny — plain dicts,
no locks, no third-party client — because it sits on the exploration
hot path: the explorer calls into it once or twice per event added.
When observability is disabled the registry is never touched at all
(the :class:`~repro.obs.observer.NullObserver` short-circuits every
call before it reaches here).

Phase timers nest: entering ``phase("revisit")`` while
``phase("co_placement")`` is open attributes the inner duration to
both phases' *total* ("inclusive") time, but only to the inner
phase's *self* ("exclusive") time.  ``sum(self)`` over all phases
therefore never double-counts, which is what makes the per-phase
breakdown in ``VerificationResult.phase_times`` add up to (at most)
the wall clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .spans import NULL_TRACER


@dataclass
class Histogram:
    """A fixed-bucket histogram plus running summary statistics.

    ``bounds`` are the inclusive upper edges of the buckets; one
    overflow bucket is appended automatically.
    """

    bounds: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge_dict(self, snap: dict) -> None:
        """Fold a snapshot produced by :meth:`as_dict` into this
        histogram (bucket-wise, assuming the same ``bounds`` — which
        all histograms created through one metric name share)."""
        self.count += snap.get("count", 0)
        self.total += snap.get("total", 0.0)
        for edge in ("min", "max"):
            theirs = snap.get(edge)
            if theirs is None:
                continue
            ours = getattr(self, edge)
            pick = min if edge == "min" else max
            setattr(self, edge, theirs if ours is None else pick(ours, theirs))
        buckets = snap.get("buckets", {})
        for i, bound in enumerate(self.bounds):
            self.counts[i] += buckets.get(f"le_{bound:g}", 0)
        self.counts[-1] += buckets.get("inf", 0)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": round(self.mean, 6),
            "min": self.min,
            "max": self.max,
            "buckets": {
                **{f"le_{b:g}": c for b, c in zip(self.bounds, self.counts)},
                "inf": self.counts[-1],
            },
        }


@dataclass
class PhaseStat:
    """Accumulated timings of one named phase."""

    calls: int = 0
    #: inclusive seconds (children counted)
    total: float = 0.0
    #: exclusive seconds (children subtracted)
    self_time: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "calls": self.calls,
            "total": round(self.total, 6),
            "self": round(self.self_time, 6),
        }


class _PhaseContext:
    """Reusable context manager for one phase activation."""

    __slots__ = ("registry", "name", "start", "child_time", "span")

    def __init__(self, registry: MetricsRegistry, name: str) -> None:
        self.registry = registry
        self.name = name
        self.start = 0.0
        self.child_time = 0.0
        self.span = None

    def __enter__(self) -> "_PhaseContext":
        # co-emit a span per phase activation when a tracer is attached;
        # the NULL tracer keeps this one attribute check (the <5%
        # disabled-overhead budget holds: an unobserved run never even
        # reaches the registry)
        tracer = self.registry.tracer
        if tracer.enabled:
            self.span = tracer._push(self.name, "phase", None)
        self.start = self.registry._clock()
        self.child_time = 0.0
        self.registry._stack.append(self)
        return self

    def __exit__(self, *exc) -> bool:
        registry = self.registry
        duration = registry._clock() - self.start
        registry._stack.pop()
        if self.span is not None:
            registry.tracer._pop(self.span)
            self.span = None
        stat = registry._phases.get(self.name)
        if stat is None:
            stat = registry._phases[self.name] = PhaseStat()
        stat.calls += 1
        stat.total += duration
        stat.self_time += duration - self.child_time
        if registry._stack:
            registry._stack[-1].child_time += duration
        return False


class MetricsRegistry:
    """Counters, gauges, histograms and nested phase timers."""

    def __init__(self, clock=time.perf_counter, tracer=NULL_TRACER) -> None:
        self._clock = clock
        #: co-emits a span per phase activation when enabled (see
        #: repro.obs.spans); NULL_TRACER costs one attribute check
        self.tracer = tracer
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self._phases: dict[str, PhaseStat] = {}
        self._stack: list[_PhaseContext] = []

    # -- counters / gauges / histograms ---------------------------------

    def inc(self, name: str, by: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- phase timers ---------------------------------------------------

    def phase(self, name: str) -> _PhaseContext:
        """A ``with``-able timer; nesting attributes inner durations to
        the inner phase's self time only."""
        return _PhaseContext(self, name)

    def phase_stats(self) -> dict[str, PhaseStat]:
        return dict(self._phases)

    def phase_report(self) -> dict[str, dict[str, float]]:
        """JSON-ready per-phase timing breakdown, ordered by self time."""
        ordered = sorted(
            self._phases.items(), key=lambda kv: kv[1].self_time, reverse=True
        )
        return {name: stat.as_dict() for name, stat in ordered}

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything the registry knows, as plain JSON-ready data.

        The snapshot is built from plain dicts/floats only, so it
        pickles across process boundaries — parallel workers return one
        per subtree task and the coordinator folds them back with
        :meth:`merge_snapshot`.
        """
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.as_dict() for k, h in self.histograms.items()},
            "phases": self.phase_report(),
        }

    def merge_snapshot(self, snap: dict, include_phases: bool = False) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histograms sum; gauges keep the maximum (they are
        point-in-time readings, and "worst seen anywhere" is the only
        aggregation that stays meaningful across workers).  Phase
        timings are skipped by default because the parallel engine
        already merges them through ``VerificationResult.phase_times``
        — folding them here too would double-count; pass
        ``include_phases=True`` only when the snapshot's phases travel
        no other way.
        """
        for name, value in snap.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snap.get("gauges", {}).items():
            if name not in self.gauges or value > self.gauges[name]:
                self.gauges[name] = value
        for name, hist_snap in snap.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.merge_dict(hist_snap)
        if include_phases:
            for name, stat_snap in snap.get("phases", {}).items():
                stat = self._phases.get(name)
                if stat is None:
                    stat = self._phases[name] = PhaseStat()
                stat.calls += int(stat_snap.get("calls", 0))
                stat.total += stat_snap.get("total", 0.0)
                stat.self_time += stat_snap.get("self", 0.0)
