"""The observer facade the checker is instrumented against.

Instrumented code (``core/explorer.py``, ``core/revisits.py``,
``models/base.py``, the baselines) talks to exactly one small
interface — ``phase``/``emit``/``inc``/``tick`` — and never knows
whether anything is listening.  Two implementations exist:

* :data:`NULL_OBSERVER`, the default: every method is a no-op and
  ``enabled``/``trace_enabled`` are False, so hot paths can guard any
  non-trivial argument construction behind a plain attribute check.
  This is what makes the instrumentation cost ~nothing when off.
* :class:`Observer`, which fans out to a
  :class:`~repro.obs.metrics.MetricsRegistry`, an optional
  :class:`~repro.obs.trace.TraceWriter` and an optional
  :class:`~repro.obs.progress.ProgressReporter`.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .progress import ProgressReporter
from .spans import NULL_TRACER
from .trace import FileSink, MemorySink, TraceWriter


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CTX = _NullContext()


class NullObserver:
    """Observer that observes nothing, as cheaply as possible."""

    #: False ⇒ skip metric/phase work (and arg construction) entirely
    enabled: bool = False
    #: False ⇒ skip building trace-record fields entirely
    trace_enabled: bool = False
    #: the span tracer (NULL by default; see repro.obs.spans)
    tracer = NULL_TRACER

    def phase(self, name: str):
        return _NULL_CTX

    def emit(self, type_: str, **fields) -> None:
        pass

    def inc(self, name: str, by: float = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def tick(self, **counts) -> None:
        pass

    def phase_report(self) -> dict:
        return {}

    def metrics_snapshot(self) -> dict:
        return {}

    def finish(self, **counts) -> None:
        pass

    def close(self) -> None:
        pass


#: the shared do-nothing observer; safe to use from anywhere
NULL_OBSERVER = NullObserver()


class Observer(NullObserver):
    """Fan observations out to metrics, an optional trace and an
    optional progress reporter."""

    enabled = True

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        trace: TraceWriter | None = None,
        progress: ProgressReporter | None = None,
        tracer=None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace
        self.progress = progress
        self.trace_enabled = trace is not None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled:
            # phase timers co-emit spans through the registry
            self.metrics.tracer = self.tracer

    # -- construction helpers -------------------------------------------

    @classmethod
    def to_file(
        cls,
        path: str,
        progress: ProgressReporter | None = None,
        buffer_size: int = 512,
    ) -> "Observer":
        """An observer tracing to a JSONL file at ``path``."""
        return cls(
            trace=TraceWriter(FileSink(path, buffer_size=buffer_size)),
            progress=progress,
        )

    @classmethod
    def in_memory(
        cls, capacity: int = 10_000, progress: ProgressReporter | None = None
    ) -> "Observer":
        """An observer tracing into a bounded in-memory ring buffer."""
        return cls(
            trace=TraceWriter(MemorySink(capacity)), progress=progress
        )

    # -- the instrumented interface -------------------------------------

    def phase(self, name: str):
        return self.metrics.phase(name)

    def emit(self, type_: str, **fields) -> None:
        if self.trace is not None:
            self.trace.emit(type_, **fields)

    def inc(self, name: str, by: float = 1) -> None:
        self.metrics.inc(name, by)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def tick(self, **counts) -> None:
        if self.progress is not None:
            self.progress.tick(**counts)

    # -- reporting -------------------------------------------------------

    def phase_report(self) -> dict:
        return self.metrics.phase_report()

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot()

    def records(self) -> list[dict]:
        """The buffered records, when tracing to a MemorySink."""
        if self.trace is not None and isinstance(self.trace.sink, MemorySink):
            return list(self.trace.sink.records)
        return []

    def finish(self, **counts) -> None:
        if self.progress is not None:
            self.progress.finish(**counts)

    def close(self) -> None:
        if self.trace is not None:
            self.trace.close()
