"""Structured JSONL exploration traces.

Every record is one JSON object per line with at least:

* ``t``    — the event type (see docs/OBSERVABILITY.md for the schema);
* ``seq``  — a monotonically increasing sequence number;
* ``ts``   — seconds since the writer was created (perf-counter based).

plus type-specific fields.  Sinks are pluggable: :class:`FileSink`
appends to a JSONL file with bounded write buffering, and
:class:`MemorySink` keeps the last *N* records in a ring buffer (and
counts what it dropped) — useful for tests and post-mortem peeking
without touching the filesystem.
"""

from __future__ import annotations

import collections
import json
import time
from typing import IO, Iterable, Iterator

#: bump when a record's fields change incompatibly
TRACE_SCHEMA_VERSION = 1


class MemorySink:
    """Keep the most recent ``capacity`` records in memory."""

    def __init__(self, capacity: int = 10_000) -> None:
        self.records: collections.deque = collections.deque(maxlen=capacity)
        self.dropped = 0

    def write(self, record: dict) -> None:
        if len(self.records) == self.records.maxlen:
            self.dropped += 1
        self.records.append(record)

    def flush(self) -> None:  # interface symmetry
        pass

    def close(self) -> None:
        pass


class FileSink:
    """Append records to a JSONL file, flushing every ``buffer_size``."""

    def __init__(self, path: str, buffer_size: int = 512) -> None:
        self.path = path
        self.buffer_size = max(1, buffer_size)
        self._buffer: list[str] = []
        self._handle: IO[str] | None = open(path, "w", encoding="utf-8")
        self.written = 0

    def write(self, record: dict) -> None:
        self._buffer.append(json.dumps(record, separators=(",", ":")))
        if len(self._buffer) >= self.buffer_size:
            self.flush()

    def flush(self) -> None:
        if self._buffer and self._handle is not None:
            self._handle.write("\n".join(self._buffer) + "\n")
            self.written += len(self._buffer)
            self._buffer.clear()
            self._handle.flush()

    def close(self) -> None:
        self.flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class TraceWriter:
    """Stamp records with ``seq``/``ts`` and hand them to a sink."""

    def __init__(self, sink, clock=time.perf_counter) -> None:
        self.sink = sink
        self._clock = clock
        self._epoch = clock()
        self._seq = 0
        self.emit(
            "trace_start",
            schema=TRACE_SCHEMA_VERSION,
            wall_time=time.time(),
        )

    def emit(self, type_: str, **fields) -> None:
        self._seq += 1
        record = {
            "t": type_,
            "seq": self._seq,
            "ts": round(self._clock() - self._epoch, 6),
        }
        record.update(fields)
        self.sink.write(record)

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()


def parse_trace(lines: Iterable[str]) -> Iterator[dict]:
    """Parse JSONL trace lines, raising with a line number on garbage."""
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno}: not JSON ({exc})") from None
        if not isinstance(record, dict) or "t" not in record:
            raise ValueError(f"trace line {lineno}: not a trace record")
        yield record


def read_trace(path: str) -> list[dict]:
    """Read a whole JSONL trace file into a list of records."""
    with open(path, encoding="utf-8") as handle:
        return list(parse_trace(handle))


def read_trace_prefix(path: str) -> tuple[list[dict], bool]:
    """Read the longest valid record prefix of a JSONL trace file.

    A worker killed mid-write (crash, timeout, ``stop_on_error``
    cancellation) leaves a truncated final line; unlike
    :func:`read_trace`, which raises and loses every valid record with
    it, this stops at the first malformed line and returns
    ``(records, truncated)`` where ``truncated`` says whether anything
    had to be discarded.
    """
    records: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                return records, True
            if not isinstance(record, dict) or "t" not in record:
                return records, True
            records.append(record)
    return records, False
