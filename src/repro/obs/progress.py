"""Progress heartbeat for long explorations.

A :class:`ProgressReporter` is ticked once per completed (or blocked)
graph by the explorer and the baselines; it prints a one-line
heartbeat to stderr every *N* graphs and/or every *T* seconds,
whichever fires first.  Exploration loops stay oblivious to the
policy — they just call :meth:`ProgressReporter.tick`.

The cadence can be set without touching code through the
``REPRO_PROGRESS_EVERY`` environment variable: a comma- or
space-separated list of tokens where a bare integer means *graphs*
and a number suffixed ``s`` means *seconds* — ``"500"``, ``"2s"``
and ``"1000,5s"`` are all valid.  Explicit constructor arguments win
over the environment.
"""

from __future__ import annotations

import os
import sys
import time

#: environment variable holding the default heartbeat cadence
PROGRESS_ENV = "REPRO_PROGRESS_EVERY"


def parse_progress_spec(spec: str) -> tuple[int | None, float | None]:
    """Parse a ``REPRO_PROGRESS_EVERY`` value into
    ``(every_graphs, every_seconds)``.

    Raises :class:`ValueError` on malformed tokens, naming the token —
    a silent fallback would make a typo'd cadence indistinguishable
    from the default.
    """
    every_graphs: int | None = None
    every_seconds: float | None = None
    for token in spec.replace(",", " ").split():
        try:
            if token.lower().endswith("s"):
                every_seconds = float(token[:-1])
            else:
                every_graphs = int(token)
        except ValueError:
            raise ValueError(
                f"bad {PROGRESS_ENV} token {token!r}: expected an integer "
                "(graphs) or a number suffixed 's' (seconds), "
                "e.g. '500', '2s' or '1000,5s'"
            ) from None
    if every_graphs is not None and every_graphs <= 0:
        raise ValueError(f"{PROGRESS_ENV} graph count must be positive")
    if every_seconds is not None and every_seconds <= 0:
        raise ValueError(f"{PROGRESS_ENV} seconds must be positive")
    return every_graphs, every_seconds


class ProgressReporter:
    """Emit heartbeat lines every ``every_graphs`` ticks or
    ``every_seconds`` seconds (either may be None)."""

    def __init__(
        self,
        every_graphs: int | None = None,
        every_seconds: float | None = None,
        stream=None,
        clock=time.monotonic,
        label: str = "explore",
    ) -> None:
        if every_graphs is None and every_seconds is None:
            env = os.environ.get(PROGRESS_ENV)
            if env:
                every_graphs, every_seconds = parse_progress_spec(env)
        if every_graphs is None and every_seconds is None:
            every_seconds = 2.0
        self.every_graphs = every_graphs
        self.every_seconds = every_seconds
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self.label = label
        self._start = clock()
        self._last_time = self._start
        self._ticks = 0
        self._ticks_at_last = 0
        #: heartbeat lines actually printed
        self.beats = 0

    def tick(self, **counts) -> None:
        """Account one unit of progress; print a heartbeat when due."""
        self._ticks += 1
        due = False
        if (
            self.every_graphs is not None
            and self._ticks - self._ticks_at_last >= self.every_graphs
        ):
            due = True
        now = self._clock()
        if (
            self.every_seconds is not None
            and now - self._last_time >= self.every_seconds
        ):
            due = True
        if due:
            self._beat(now, counts)

    def finish(self, **counts) -> None:
        """Print the final heartbeat line.

        Always emits, even when no periodic beat fired: a run short
        enough to finish inside one interval still deserves its one
        summary line (a silent finish made ``--progress`` look broken
        on small programs)."""
        self._beat(self._clock(), counts, final=True)

    def _beat(self, now: float, counts: dict, final: bool = False) -> None:
        self.beats += 1
        self._last_time = now
        self._ticks_at_last = self._ticks
        elapsed = now - self._start
        rate = self._ticks / elapsed if elapsed > 0 else 0.0
        shown = " ".join(f"{k}={v}" for k, v in counts.items())
        tag = "done" if final else "progress"
        print(
            f"[{self.label} {tag}] {self._ticks} graphs "
            f"in {elapsed:.1f}s ({rate:.0f}/s){' ' if shown else ''}{shown}",
            file=self.stream,
        )


#: the name the docs use for the heartbeat component; kept as an alias
#: so ``from repro.obs import ProgressMeter`` reads naturally
ProgressMeter = ProgressReporter
