"""Progress heartbeat for long explorations.

A :class:`ProgressReporter` is ticked once per completed (or blocked)
graph by the explorer and the baselines; it prints a one-line
heartbeat to stderr every *N* graphs and/or every *T* seconds,
whichever fires first.  Exploration loops stay oblivious to the
policy — they just call :meth:`ProgressReporter.tick`.
"""

from __future__ import annotations

import sys
import time


class ProgressReporter:
    """Emit heartbeat lines every ``every_graphs`` ticks or
    ``every_seconds`` seconds (either may be None)."""

    def __init__(
        self,
        every_graphs: int | None = None,
        every_seconds: float | None = None,
        stream=None,
        clock=time.monotonic,
        label: str = "explore",
    ) -> None:
        if every_graphs is None and every_seconds is None:
            every_seconds = 2.0
        self.every_graphs = every_graphs
        self.every_seconds = every_seconds
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self.label = label
        self._start = clock()
        self._last_time = self._start
        self._ticks = 0
        self._ticks_at_last = 0
        #: heartbeat lines actually printed
        self.beats = 0

    def tick(self, **counts) -> None:
        """Account one unit of progress; print a heartbeat when due."""
        self._ticks += 1
        due = False
        if (
            self.every_graphs is not None
            and self._ticks - self._ticks_at_last >= self.every_graphs
        ):
            due = True
        now = self._clock()
        if (
            self.every_seconds is not None
            and now - self._last_time >= self.every_seconds
        ):
            due = True
        if due:
            self._beat(now, counts)

    def finish(self, **counts) -> None:
        """Print a final line (only if at least one beat was printed,
        so short runs stay silent)."""
        if self.beats:
            self._beat(self._clock(), counts, final=True)

    def _beat(self, now: float, counts: dict, final: bool = False) -> None:
        self.beats += 1
        self._last_time = now
        self._ticks_at_last = self._ticks
        elapsed = now - self._start
        rate = self._ticks / elapsed if elapsed > 0 else 0.0
        shown = " ".join(f"{k}={v}" for k, v in counts.items())
        tag = "done" if final else "progress"
        print(
            f"[{self.label} {tag}] {self._ticks} graphs "
            f"in {elapsed:.1f}s ({rate:.0f}/s){' ' if shown else ''}{shown}",
            file=self.stream,
        )
