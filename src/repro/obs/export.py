"""Exporters: run manifests to external monitoring formats.

Only the Prometheus *text exposition format* is implemented — it is a
plain-text format with zero client-library dependencies, and every
mainstream scraper (Prometheus itself, VictoriaMetrics, Grafana
agent) ingests it.  The exporter is a pure function of a run manifest
(:func:`repro.obs.runstore.build_manifest`), so the same document
feeds the run store, ``runs diff`` and the metrics endpoint.

Output is deterministic (sorted metric and label order) so golden-file
tests can compare it byte for byte.
"""

from __future__ import annotations

_PREFIX = "repro"


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _sanitize(name: str) -> str:
    """A metric-name-safe form of a registry key: the registry allows
    ``:`` and arbitrary punctuation, Prometheus ``[a-zA-Z0-9_:]`` —
    map everything else to ``_``."""
    return "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus(manifest: dict, service: dict | None = None) -> str:
    """Render a run manifest in the Prometheus text exposition format.

    Every sample carries ``program`` and ``model`` labels; registry
    metric names ride in a ``name`` label under a fixed family per
    kind (counter / gauge / histogram / phase), so arbitrary
    registry keys can't produce malformed metric names.

    ``service`` optionally appends the verification service's job
    families (see :func:`service_families`); the server's ``/metrics``
    endpoint passes an empty manifest plus its live service stats, in
    which case the per-run families are skipped entirely.
    """
    lines: list[str] = []
    if manifest:
        lines.extend(_run_lines(manifest))
    if service is not None:
        lines.extend(service_families(service))
    return "\n".join(lines) + "\n"


def _run_lines(manifest: dict) -> list[str]:
    labels = (
        f'program="{_escape(manifest.get("program") or "")}"'
        f',model="{_escape(manifest.get("model") or "")}"'
    )
    result = manifest.get("result", {})
    lines: list[str] = []

    def sample(family: str, value, extra: str = "", help_: str | None = None,
               type_: str | None = None) -> None:
        if help_ is not None:
            lines.append(f"# HELP {family} {help_}")
        if type_ is not None:
            lines.append(f"# TYPE {family} {type_}")
        label_str = labels + (f",{extra}" if extra else "")
        lines.append(f"{family}{{{label_str}}} {_fmt(value)}")

    sample(
        f"{_PREFIX}_executions_total",
        result.get("executions", 0),
        help_="Distinct consistent complete executions.",
        type_="counter",
    )
    sample(
        f"{_PREFIX}_blocked_total",
        result.get("blocked", 0),
        help_="Blocked explorations (failed assume / unsat RMW).",
        type_="counter",
    )
    sample(
        f"{_PREFIX}_duplicates_total",
        result.get("duplicates", 0),
        help_="Complete graphs reached more than once.",
        type_="counter",
    )
    sample(
        f"{_PREFIX}_errors_total",
        result.get("errors", 0),
        help_="Assertion failures found.",
        type_="counter",
    )
    sample(
        f"{_PREFIX}_truncated",
        result.get("truncated", False),
        help_="1 when a search limit bit somewhere.",
        type_="gauge",
    )
    sample(
        f"{_PREFIX}_elapsed_seconds",
        result.get("elapsed", 0.0),
        help_="Wall-clock duration of the run.",
        type_="gauge",
    )

    stats = result.get("stats", {})
    if stats:
        family = f"{_PREFIX}_stat_total"
        lines.append(f"# HELP {family} Exploration statistics counters.")
        lines.append(f"# TYPE {family} counter")
        for key in sorted(stats):
            lines.append(
                f'{family}{{{labels},stat="{_escape(key)}"}} '
                f"{_fmt(stats[key])}"
            )

    metrics = manifest.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        family = f"{_PREFIX}_counter_total"
        lines.append(f"# HELP {family} Registry counters (profiler hooks).")
        lines.append(f"# TYPE {family} counter")
        for key in sorted(counters):
            lines.append(
                f'{family}{{{labels},name="{_escape(key)}"}} '
                f"{_fmt(counters[key])}"
            )
    gauges = metrics.get("gauges", {})
    if gauges:
        family = f"{_PREFIX}_gauge"
        lines.append(f"# HELP {family} Registry gauges.")
        lines.append(f"# TYPE {family} gauge")
        for key in sorted(gauges):
            lines.append(
                f'{family}{{{labels},name="{_escape(key)}"}} '
                f"{_fmt(gauges[key])}"
            )
    histograms = metrics.get("histograms", {})
    for key in sorted(histograms):
        hist = histograms[key]
        family = f"{_PREFIX}_hist_{_sanitize(key)}"
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        buckets = hist.get("buckets", {})
        ordered = sorted(
            (float(name[len("le_"):]), count)
            for name, count in buckets.items()
            if name.startswith("le_")
        )
        for bound, count in ordered:
            cumulative += count
            lines.append(
                f'{family}_bucket{{{labels},le="{_fmt(bound)}"}} '
                f"{cumulative}"
            )
        cumulative += buckets.get("inf", 0)
        lines.append(
            f'{family}_bucket{{{labels},le="+Inf"}} {cumulative}'
        )
        lines.append(f"{family}_sum{{{labels}}} {_fmt(hist.get('total', 0.0))}")
        lines.append(f"{family}_count{{{labels}}} {hist.get('count', 0)}")

    spans = manifest.get("spans", {}) or {}
    if spans:
        for field, family_suffix, help_, type_ in (
            ("seconds", "span_seconds_total",
             "Total traced seconds per span name.", "counter"),
            ("calls", "span_calls_total",
             "Finished spans per span name.", "counter"),
        ):
            family = f"{_PREFIX}_{family_suffix}"
            lines.append(f"# HELP {family} {help_}")
            lines.append(f"# TYPE {family} {type_}")
            for name in sorted(spans):
                entry = spans[name]
                lines.append(
                    f'{family}{{{labels},span="{_escape(name)}"'
                    f',cat="{_escape(entry.get("cat", "span"))}"}} '
                    f"{_fmt(entry.get(field, 0))}"
                )

    phases = manifest.get("phases", {}) or {}
    if phases:
        for field, family_suffix, help_ in (
            ("self", "phase_self_seconds", "Exclusive seconds per phase."),
            ("total", "phase_seconds", "Inclusive seconds per phase."),
            ("calls", "phase_calls_total", "Activations per phase."),
        ):
            family = f"{_PREFIX}_{family_suffix}"
            lines.append(f"# HELP {family} {help_}")
            lines.append(
                f"# TYPE {family} "
                + ("counter" if field == "calls" else "gauge")
            )
            for name in sorted(phases):
                value = phases[name].get(field, 0)
                lines.append(
                    f'{family}{{{labels},phase="{_escape(name)}"}} '
                    f"{_fmt(value)}"
                )
    return lines


def service_families(service: dict) -> list[str]:
    """The verification service's metric families.

    ``service`` is the plain dict a running server maintains:
    ``jobs`` (state name → count of jobs that *reached* that state),
    ``queue_depth``, ``inflight``, ``cache_hits``, plus optional
    ``submitted``/``rejected``/``executions``/``uptime_seconds``.
    Absent keys render as zero so scrapes are shape-stable.
    """
    lines: list[str] = []
    family = f"{_PREFIX}_service_jobs_total"
    lines.append(f"# HELP {family} Jobs by terminal state.")
    lines.append(f"# TYPE {family} counter")
    jobs = service.get("jobs", {})
    for state in sorted(set(jobs) | {"done", "failed", "cancelled"}):
        lines.append(
            f'{family}{{state="{_escape(state)}"}} '
            f"{_fmt(jobs.get(state, 0))}"
        )
    for name, help_, type_ in (
        ("queue_depth", "Jobs waiting in the queue.", "gauge"),
        ("inflight", "Jobs currently executing.", "gauge"),
        ("submitted", "Jobs accepted since start.", "counter"),
        ("rejected", "Submissions rejected by backpressure.", "counter"),
        ("cache_hits", "Suite tasks served from the result cache.",
         "counter"),
        ("executions", "Consistent executions explored for jobs.",
         "counter"),
        ("events_dropped",
         "Progress events evicted from bounded job event rings.",
         "counter"),
    ):
        family = f"{_PREFIX}_service_{name}"
        if type_ == "counter":
            family += "_total"
        lines.append(f"# HELP {family} {help_}")
        lines.append(f"# TYPE {family} {type_}")
        lines.append(f"{family} {_fmt(service.get(name, 0))}")
    family = f"{_PREFIX}_service_uptime_seconds"
    lines.append(f"# HELP {family} Seconds since the server started.")
    lines.append(f"# TYPE {family} gauge")
    lines.append(f"{family} {_fmt(round(service.get('uptime_seconds', 0.0), 3))}")
    return lines
