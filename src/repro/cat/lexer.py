"""Tokenizer for the ``.cat`` model language.

The token vocabulary follows herd's cat files: identifiers may contain
``-`` and ``.`` (``po-loc``, ``dmb.ld``-style names), ``(* ... *)``
comments nest, ``//`` and ``#`` comment to end of line, and ``^-1`` is
one token (postfix inverse).  Comments are skipped but their text is
preserved on the token stream object — structured
``(* repro: key=value *)`` directives ride in comments so every model
file stays plain cat to other tools.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import CatSyntaxError

KEYWORDS = frozenset(
    {"let", "rec", "and", "as", "acyclic", "irreflexive", "empty", "include"}
)

#: multi-character punctuation, longest first
_PUNCT = ("^-1", "|", ";", "&", "\\", "*", "+", "?", "=", "(", ")", "[", "]")

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789-.")


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # "ident" | "keyword" | "string" | punctuation | "eof"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r}@{self.line}:{self.column})"


@dataclass(frozen=True, slots=True)
class Comment:
    """A skipped comment, kept for directive extraction."""

    text: str
    line: int


def tokenize(source: str) -> tuple[list[Token], list[Comment]]:
    """Split ``source`` into tokens, returning ``(tokens, comments)``.

    The token list always ends with an ``eof`` token; positions are
    1-based.  Raises :class:`CatSyntaxError` on stray characters or
    unterminated comments/strings.
    """
    tokens: list[Token] = []
    comments: list[Comment] = []
    i, line, col = 0, 1, 1
    n = len(source)

    def advance(text: str) -> None:
        nonlocal line, col
        newlines = text.count("\n")
        if newlines:
            line += newlines
            col = len(text) - text.rfind("\n")
        else:
            col += len(text)

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(ch)
            i += 1
            continue
        if source.startswith("(*", i):
            depth, j = 1, i + 2
            while j < n and depth:
                if source.startswith("(*", j):
                    depth += 1
                    j += 2
                elif source.startswith("*)", j):
                    depth -= 1
                    j += 2
                else:
                    j += 1
            if depth:
                raise CatSyntaxError("unterminated comment", line, col)
            comments.append(Comment(source[i + 2 : j - 2], line))
            advance(source[i:j])
            i = j
            continue
        if source.startswith("//", i) or ch == "#":
            j = source.find("\n", i)
            j = n if j < 0 else j
            comments.append(Comment(source[i:j].lstrip("/#"), line))
            advance(source[i:j])
            i = j
            continue
        if ch == '"':
            j = source.find('"', i + 1)
            if j < 0:
                raise CatSyntaxError("unterminated string", line, col)
            tokens.append(Token("string", source[i + 1 : j], line, col))
            advance(source[i : j + 1])
            i = j + 1
            continue
        if ch in _IDENT_START:
            j = i + 1
            while j < n and source[j] in _IDENT_CONT:
                j += 1
            # identifiers may not *end* with '-' or '.' (keeps a
            # trailing range/operator readable in errors)
            while source[j - 1] in "-.":
                j -= 1
            word = source[i:j]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, col))
            advance(word)
            i = j
            continue
        for punct in _PUNCT:
            if source.startswith(punct, i):
                tokens.append(Token(punct, punct, line, col))
                advance(punct)
                i += len(punct)
                break
        else:
            raise CatSyntaxError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens, comments
