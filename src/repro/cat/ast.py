"""AST for the ``.cat`` model language.

All nodes are plain frozen dataclasses at module level, so a parsed
model — and therefore :class:`~repro.cat.model.CatModel` — pickles
cleanly through the parallel engine.  Every node carries its source
position for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Expr:
    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


@dataclass(frozen=True, slots=True)
class Var(Expr):
    """A reference to a base or ``let``-bound name."""

    name: str = ""


@dataclass(frozen=True, slots=True)
class Bracket(Expr):
    """``[S]`` — the identity relation restricted to the set ``S``."""

    body: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True, slots=True)
class Binary(Expr):
    """``|  ;  &  \\``, and ``*`` as the cartesian product of sets."""

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True, slots=True)
class Postfix(Expr):
    """``^-1`` (inverse), ``?`` (reflexive), ``+`` (transitive
    closure), ``*`` (reflexive-transitive closure)."""

    op: str = ""
    body: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True, slots=True)
class Binding:
    name: str
    body: Expr
    line: int
    column: int


@dataclass(frozen=True, slots=True)
class Let:
    """``let [rec] x = e (and y = e)*``."""

    recursive: bool
    bindings: tuple[Binding, ...]


@dataclass(frozen=True, slots=True)
class Constraint:
    """``acyclic e``, ``irreflexive e`` or ``empty e``, optionally
    ``as name``."""

    kind: str  # "acyclic" | "irreflexive" | "empty"
    expr: Expr
    name: str | None
    line: int
    column: int


@dataclass(frozen=True, slots=True)
class CatSpec:
    """A parsed model file: title, statements, and ``repro:`` directives."""

    title: str | None
    statements: tuple[Let | Constraint, ...]
    directives: dict[str, str]
    source: str

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return tuple(
            s for s in self.statements if isinstance(s, Constraint)
        )

    @property
    def lets(self) -> tuple[Let, ...]:
        return tuple(s for s in self.statements if isinstance(s, Let))
