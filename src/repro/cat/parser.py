"""Recursive-descent parser for the ``.cat`` model language.

Grammar (binding looser to tighter, matching herd)::

    model      :=  title? statement*
    title      :=  STRING | IDENT            -- display name, first token
    statement  :=  'let' 'rec'? binding ('and' binding)*
                |  ('acyclic' | 'irreflexive' | 'empty') expr ('as' IDENT)?
    binding    :=  IDENT '=' expr
    expr       :=  union
    union      :=  seq   ('|'  seq)*
    seq        :=  diff  (';'  diff)*
    diff       :=  inter ('\\' inter)*
    inter      :=  cross ('&'  cross)*
    cross      :=  postfix ('*' postfix)*    -- cartesian product of sets
    postfix    :=  primary ('^-1' | '?' | '+' | '*')*
    primary    :=  IDENT | '[' expr ']' | '(' expr ')'

The one ambiguity is ``*``: it is the binary cartesian product when the
token after it can start a primary (``W * R``), and the postfix
reflexive-transitive closure otherwise (``(po | rf)*``).

Structured comments ``(* repro: key=value ... *)`` carry evaluation
directives (``porf_acyclic``, ``prefix``, ``name``) without leaving
the cat comment syntax; they are collected into ``CatSpec.directives``.
"""

from __future__ import annotations

import re

from .ast import Binary, Binding, Bracket, CatSpec, Constraint, Expr, Let, Postfix, Var
from .errors import CatSyntaxError
from .lexer import Comment, Token, tokenize

CONSTRAINT_KINDS = ("acyclic", "irreflexive", "empty")

#: a directive comment: ``repro: key=value [key=value ...]``
_DIRECTIVE_RE = re.compile(r"^\s*repro\s*:\s*(.*)$", re.DOTALL)
_KV_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_-]*)\s*=\s*([A-Za-z0-9_.-]+)")

_PRIMARY_START = ("ident", "[", "(")


def _directives(comments: list[Comment]) -> dict[str, str]:
    out: dict[str, str] = {}
    for comment in comments:
        match = _DIRECTIVE_RE.match(comment.text.strip())
        if match is None:
            continue
        body = match.group(1)
        found = _KV_RE.findall(body)
        leftover = _KV_RE.sub("", body).replace(",", "").strip()
        if not found or leftover:
            raise CatSyntaxError(
                f"malformed repro: directive {comment.text.strip()!r} "
                "(expected key=value pairs)",
                comment.line,
            )
        for key, value in found:
            out[key] = value
    return out


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.current
        self.pos += 1
        return tok

    def expect(self, kind: str, what: str) -> Token:
        tok = self.current
        if tok.kind != kind:
            shown = tok.text or tok.kind
            raise CatSyntaxError(
                f"expected {what}, found {shown!r}", tok.line, tok.column
            )
        return self.advance()

    def at_keyword(self, *words: str) -> bool:
        tok = self.current
        return tok.kind == "keyword" and tok.text in words

    # -- grammar --------------------------------------------------------

    def model(self, directives: dict[str, str], source: str) -> CatSpec:
        title = None
        if self.current.kind == "string":
            title = self.advance().text
        elif self.current.kind == "ident" and self.peek().kind in (
            "keyword",
            "string",
            "eof",
        ):
            title = self.advance().text
        statements: list[Let | Constraint] = []
        while self.current.kind != "eof":
            statements.append(self.statement())
        return CatSpec(
            title=title,
            statements=tuple(statements),
            directives=directives,
            source=source,
        )

    def statement(self) -> Let | Constraint:
        tok = self.current
        if self.at_keyword("let"):
            return self.let()
        if self.at_keyword(*CONSTRAINT_KINDS):
            return self.constraint()
        if self.at_keyword("include"):
            raise CatSyntaxError(
                "include is not supported; inline the definitions",
                tok.line,
                tok.column,
            )
        shown = tok.text or tok.kind
        raise CatSyntaxError(
            f"expected 'let' or a constraint, found {shown!r}",
            tok.line,
            tok.column,
        )

    def let(self) -> Let:
        self.advance()  # 'let'
        recursive = False
        if self.at_keyword("rec"):
            recursive = True
            self.advance()
        bindings = [self.binding()]
        while self.at_keyword("and"):
            self.advance()
            bindings.append(self.binding())
        return Let(recursive=recursive, bindings=tuple(bindings))

    def binding(self) -> Binding:
        name = self.expect("ident", "a name to bind")
        self.expect("=", "'='")
        body = self.expr()
        return Binding(
            name=name.text, body=body, line=name.line, column=name.column
        )

    def constraint(self) -> Constraint:
        tok = self.advance()
        expr = self.expr()
        name = None
        if self.at_keyword("as"):
            self.advance()
            name = self.expect("ident", "a constraint name after 'as'").text
        return Constraint(
            kind=tok.text, expr=expr, name=name, line=tok.line, column=tok.column
        )

    def expr(self) -> Expr:
        return self.union()

    def _binary_chain(self, op: str, sub) -> Expr:
        left = sub()
        while self.current.kind == op:
            tok = self.advance()
            right = sub()
            left = Binary(
                op=op, left=left, right=right, line=tok.line, column=tok.column
            )
        return left

    def union(self) -> Expr:
        return self._binary_chain("|", self.seq)

    def seq(self) -> Expr:
        return self._binary_chain(";", self.diff)

    def diff(self) -> Expr:
        return self._binary_chain("\\", self.inter)

    def inter(self) -> Expr:
        return self._binary_chain("&", self.cross)

    def _star_is_binary(self) -> bool:
        return (
            self.current.kind == "*"
            and self.peek().kind in _PRIMARY_START
        )

    def cross(self) -> Expr:
        left = self.postfix()
        while self._star_is_binary():
            tok = self.advance()
            right = self.postfix()
            left = Binary(
                op="*", left=left, right=right, line=tok.line, column=tok.column
            )
        return left

    def postfix(self) -> Expr:
        body = self.primary()
        while True:
            tok = self.current
            if tok.kind in ("^-1", "?", "+"):
                self.advance()
                body = Postfix(
                    op=tok.text, body=body, line=tok.line, column=tok.column
                )
            elif tok.kind == "*" and not self._star_is_binary():
                self.advance()
                body = Postfix(
                    op="*", body=body, line=tok.line, column=tok.column
                )
            else:
                return body

    def primary(self) -> Expr:
        tok = self.current
        if tok.kind == "ident":
            self.advance()
            return Var(name=tok.text, line=tok.line, column=tok.column)
        if tok.kind == "[":
            self.advance()
            body = self.expr()
            self.expect("]", "']'")
            return Bracket(body=body, line=tok.line, column=tok.column)
        if tok.kind == "(":
            self.advance()
            body = self.expr()
            self.expect(")", "')'")
            return body
        shown = tok.text or tok.kind
        raise CatSyntaxError(
            f"expected a relation or set expression, found {shown!r}",
            tok.line,
            tok.column,
        )


def parse_cat(source: str, filename: str | None = None) -> CatSpec:
    """Parse cat ``source`` into a :class:`CatSpec`.

    Raises :class:`CatSyntaxError` (annotated with ``filename`` when
    given) on malformed input.
    """
    try:
        tokens, comments = tokenize(source)
        spec = _Parser(tokens).model(_directives(comments), source)
    except CatSyntaxError as exc:
        if filename is not None and exc.filename is None:
            raise exc.at(filename) from None
        raise
    return spec
