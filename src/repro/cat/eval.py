"""Evaluating ``.cat`` specifications over execution graphs.

A cat expression denotes either an **event set** (``frozenset`` of
events) or a **relation** (:class:`repro.relations.Relation`); the
evaluator is dynamically typed over those two kinds, with
:class:`CatTypeError` on mismatches (sequencing two sets, bracketing a
relation, ...).  Base names resolve to the same derived relations the
hand-coded models use (:mod:`repro.graphs.derived`), which is what
makes differential validation meaningful: a ``.cat`` twin and its
Python twin literally share ``po``/``rf``/``co``/``fr``.

Evaluation is memoised per ``(graph, version)`` — the exploration core
calls ``is_consistent`` on every step, and within one check multiple
constraints share their ``let`` intermediates, so each derived
relation is a once-per-step cost (mirroring
:func:`repro.graphs.derived.graph_cached`).
"""

from __future__ import annotations

from ..events import FenceKind, FenceLabel, MemOrder
from ..graphs import ExecutionGraph
from ..graphs.derived import (
    co,
    coe,
    coi,
    dependency,
    eco,
    ext_rel,
    fr,
    fre,
    fri,
    id_rel,
    int_rel,
    po,
    po_loc,
    rf,
    rfe,
    rfi,
    rmw_pairs,
    same_loc,
)
from ..graphs.incremental import check_equal, differential_enabled
from ..relations import Relation
from .ast import Binary, Binding, Bracket, CatSpec, Constraint, Expr, Let, Postfix, Var
from .errors import CatEvalError, CatTypeError

#: a cat value: an event set or a binary relation over events
Value = "Relation | frozenset"


def _kind(value) -> str:
    return "relation" if isinstance(value, Relation) else "set"


# -- base environment -------------------------------------------------------
#
# Every entry is a function of the graph.  Sets cover event shape
# (R/W/F/...), access-mode annotations (literal C11 orders on accesses
# and C11 fences; hardware fences are matched by *kind* sets instead),
# and fence kinds.  Relations mirror repro.graphs.derived.


def _events(graph: ExecutionGraph) -> list:
    return list(graph.events())


def _set_of(graph, predicate) -> frozenset:
    return frozenset(e for e in graph.events() if predicate(graph.label(e)))


def _mode_set(graph: ExecutionGraph, order: MemOrder) -> frozenset:
    """Accesses annotated ``order``, plus C11 *fences* of that order.

    Hardware fences carry no C11 annotation — select them with the
    fence-kind sets (``MFENCE``, ``LWSYNC``, ...) instead.
    """
    def pred(lab):
        if isinstance(lab, FenceLabel):
            return lab.kind is FenceKind.C11 and lab.order is order
        return lab.is_access and lab.order is order

    return _set_of(graph, pred)


def _fence_kind_set(graph: ExecutionGraph, kind: FenceKind) -> frozenset:
    return _set_of(
        graph, lambda lab: isinstance(lab, FenceLabel) and lab.kind is kind
    )


def _exclusive_set(graph: ExecutionGraph) -> frozenset:
    return _set_of(
        graph, lambda lab: lab.is_access and getattr(lab, "exclusive", False)
    )


BASE_SETS = {
    "_": lambda g: frozenset(g.events()),
    "R": lambda g: _set_of(g, lambda lab: lab.is_read),
    "W": lambda g: _set_of(g, lambda lab: lab.is_write),
    "M": lambda g: _set_of(g, lambda lab: lab.is_access),
    "F": lambda g: _set_of(g, lambda lab: lab.is_fence),
    "IW": lambda g: frozenset(g.init_events()),
    "X": _exclusive_set,
    "RMW": _exclusive_set,
    "RLX": lambda g: _mode_set(g, MemOrder.RLX),
    "ACQ": lambda g: _mode_set(g, MemOrder.ACQ),
    "REL": lambda g: _mode_set(g, MemOrder.REL),
    "ACQ_REL": lambda g: _mode_set(g, MemOrder.ACQ_REL),
    "SC": lambda g: _mode_set(g, MemOrder.SC),
    "MFENCE": lambda g: _fence_kind_set(g, FenceKind.MFENCE),
    "SYNC": lambda g: _fence_kind_set(g, FenceKind.SYNC),
    "LWSYNC": lambda g: _fence_kind_set(g, FenceKind.LWSYNC),
    "ISYNC": lambda g: _fence_kind_set(g, FenceKind.ISYNC),
    "DMB_LD": lambda g: _fence_kind_set(g, FenceKind.DMB_LD),
    "DMB_ST": lambda g: _fence_kind_set(g, FenceKind.DMB_ST),
    "C11F": lambda g: _fence_kind_set(g, FenceKind.C11),
}

BASE_RELATIONS = {
    "po": po,
    "po-loc": po_loc,
    "rf": rf,
    "rfe": rfe,
    "rfi": rfi,
    "co": co,
    "coe": coe,
    "coi": coi,
    "fr": fr,
    "fre": fre,
    "fri": fri,
    "eco": eco,
    "rmw": rmw_pairs,
    "loc": same_loc,
    "ext": ext_rel,
    "int": int_rel,
    "id": id_rel,
    "addr": lambda g: dependency(g, "a"),
    "data": lambda g: dependency(g, "d"),
    "ctrl": lambda g: dependency(g, "c"),
    "deps": lambda g: dependency(g, "adc"),
}

BASE_NAMES = frozenset(BASE_SETS) | frozenset(BASE_RELATIONS)


def _mode_member(order: MemOrder):
    def pred(graph, ev):
        lab = graph.label(ev)
        if isinstance(lab, FenceLabel):
            return lab.kind is FenceKind.C11 and lab.order is order
        return lab.is_access and lab.order is order

    return pred


def _fence_kind_member(kind: FenceKind):
    return lambda graph, ev: (
        isinstance(graph.label(ev), FenceLabel) and graph.label(ev).kind is kind
    )


def _exclusive_member(graph, ev):
    lab = graph.label(ev)
    return lab.is_access and getattr(lab, "exclusive", False)


#: per-event membership tests mirroring BASE_SETS, used by
#: :meth:`Env.advanced` to carry memoised base sets across graph
#: copies by testing only the events the delta log added
_SET_MEMBERS = {
    "_": lambda graph, ev: True,
    "R": lambda graph, ev: graph.label(ev).is_read,
    "W": lambda graph, ev: graph.label(ev).is_write,
    "M": lambda graph, ev: graph.label(ev).is_access,
    "F": lambda graph, ev: graph.label(ev).is_fence,
    "IW": lambda graph, ev: ev.is_initial,
    "X": _exclusive_member,
    "RMW": _exclusive_member,
    "RLX": _mode_member(MemOrder.RLX),
    "ACQ": _mode_member(MemOrder.ACQ),
    "REL": _mode_member(MemOrder.REL),
    "ACQ_REL": _mode_member(MemOrder.ACQ_REL),
    "SC": _mode_member(MemOrder.SC),
    "MFENCE": _fence_kind_member(FenceKind.MFENCE),
    "SYNC": _fence_kind_member(FenceKind.SYNC),
    "LWSYNC": _fence_kind_member(FenceKind.LWSYNC),
    "ISYNC": _fence_kind_member(FenceKind.ISYNC),
    "DMB_LD": _fence_kind_member(FenceKind.DMB_LD),
    "DMB_ST": _fence_kind_member(FenceKind.DMB_ST),
    "C11F": _fence_kind_member(FenceKind.C11),
}

#: fixpoint iteration guard: any monotone relation definition converges
#: in at most |universe|^2 steps (one new pair per round)
_FIXPOINT_SLACK = 2


class Env:
    """One graph's evaluation environment, with memoised results.

    ``profiler`` (a :class:`~repro.obs.metrics.MetricsRegistry`, or
    None) attributes the evaluator's memo behaviour: every name lookup
    bumps ``cat:memo_hit:<name>`` or ``cat:memo_miss:<name>``, and each
    ``let rec`` solve records its convergence rounds in the
    ``cat:fixpoint_iters:<names>`` histogram — the decomposition that
    lets ``.cat`` evaluator overhead be profiled per definition rather
    than as one opaque ``check:axiom`` phase.
    """

    def __init__(
        self, graph: ExecutionGraph, spec: CatSpec, profiler=None
    ) -> None:
        self.graph = graph
        self.spec = spec
        self._profiler = profiler
        self._memo: dict[str, object] = {}
        self._in_progress: set[str] = set()
        #: name -> (Let, Binding); later bindings shadow earlier ones
        self._bindings: dict[str, tuple[Let, Binding]] = {}
        for let in spec.lets:
            for binding in let.bindings:
                self._bindings[binding.name] = (let, binding)

    def advanced(self, graph: ExecutionGraph, deltas, profiler=None) -> "Env":
        """A fresh environment for ``graph`` (a descendant of this
        env's graph) with memoised *base sets* carried over: each is
        extended by testing only the events the delta log added.

        Base relations need no seeding — they resolve through
        :func:`~repro.graphs.derived.graph_cached`, which is already
        incremental across copies.  ``let``-bound names are arbitrary
        expressions and are re-evaluated on demand.
        """
        env = Env(graph, self.spec, profiler=profiler)
        fresh = [d[1] for d in deltas if d[0] in ("event", "init")]
        for name, value in self._memo.items():
            if name in self._bindings:
                continue
            pred = _SET_MEMBERS.get(name)
            if pred is None:
                continue
            added = [e for e in fresh if pred(graph, e)]
            carried = value | frozenset(added) if added else value
            if differential_enabled():
                check_equal(f"cat-set:{name}", carried, BASE_SETS[name](graph))
            env._memo[name] = carried
        return env

    # -- name resolution -------------------------------------------------

    def lookup(self, node: Var):
        name = node.name
        prof = self._profiler
        if name in self._memo:
            if prof is not None:
                prof.inc(f"cat:memo_hit:{name}")
            return self._memo[name]
        if prof is not None:
            prof.inc(f"cat:memo_miss:{name}")
        entry = self._bindings.get(name)
        if entry is not None:
            let, binding = entry
            if name in self._in_progress:
                raise CatEvalError(
                    f"{name!r} refers to itself; use 'let rec' for "
                    "fixpoint definitions",
                    node.line,
                    node.column,
                )
            if let.recursive:
                self._solve_rec(let)
            else:
                self._in_progress.add(name)
                try:
                    self._memo[name] = self.eval(binding.body)
                finally:
                    self._in_progress.discard(name)
            return self._memo[name]
        if name in BASE_SETS:
            value = BASE_SETS[name](self.graph)
        elif name in BASE_RELATIONS:
            value = BASE_RELATIONS[name](self.graph)
        else:
            known = ", ".join(sorted(BASE_NAMES | set(self._bindings)))
            raise CatEvalError(
                f"unknown name {name!r}; known names: {known}",
                node.line,
                node.column,
            )
        self._memo[name] = value
        return value

    def _solve_rec(self, let: Let) -> None:
        """Least-fixpoint solve one ``let rec ... and ...`` group."""
        names = [b.name for b in let.bindings]
        for name in names:
            self._memo[name] = Relation()
        bound = len(_events(self.graph)) ** 2 + _FIXPOINT_SLACK
        for rounds in range(1, bound + 1):
            changed = False
            for binding in let.bindings:
                value = self.eval(binding.body)
                if not isinstance(value, Relation):
                    raise CatTypeError(
                        f"recursive binding {binding.name!r} must define a "
                        f"relation, got a {_kind(value)}",
                        binding.line,
                        binding.column,
                    )
                if value != self._memo[binding.name]:
                    self._memo[binding.name] = value
                    changed = True
            if not changed:
                if self._profiler is not None:
                    self._profiler.observe(
                        f"cat:fixpoint_iters:{'+'.join(names)}", rounds
                    )
                return
        raise CatEvalError(
            f"recursive definition of {', '.join(names)} did not converge "
            "(non-monotone right-hand side?)",
            let.bindings[0].line,
            let.bindings[0].column,
        )

    # -- expression evaluation -------------------------------------------

    def eval(self, node: Expr):
        if isinstance(node, Var):
            return self.lookup(node)
        if isinstance(node, Bracket):
            body = self.eval(node.body)
            if isinstance(body, Relation):
                raise CatTypeError(
                    "[...] restricts identity to a *set*; got a relation",
                    node.line,
                    node.column,
                )
            return Relation.identity(body)
        if isinstance(node, Postfix):
            return self._postfix(node)
        if isinstance(node, Binary):
            return self._binary(node)
        raise CatEvalError(  # pragma: no cover - parser emits no other nodes
            f"cannot evaluate {type(node).__name__}", node.line, node.column
        )

    def _as_relation(self, value, node: Expr, op: str) -> Relation:
        if isinstance(value, Relation):
            return value
        raise CatTypeError(
            f"{op} needs a relation, got a set "
            "(wrap it in [brackets] for the identity relation)",
            node.line,
            node.column,
        )

    def _postfix(self, node: Postfix):
        value = self.eval(node.body)
        op = node.op
        if op == "^-1":
            return self._as_relation(value, node, "inverse ^-1").inverse()
        if op == "+":
            return self._as_relation(
                value, node, "transitive closure +"
            ).transitive_closure()
        if op == "*":
            return self._as_relation(
                value, node, "reflexive-transitive closure *"
            ).reflexive_transitive_closure(self.graph.events())
        if op == "?":
            rel = self._as_relation(value, node, "optional ?")
            return rel | Relation.identity(self.graph.events())
        raise CatEvalError(  # pragma: no cover - lexer emits no other ops
            f"unknown postfix operator {op!r}", node.line, node.column
        )

    def _binary(self, node: Binary):
        left = self.eval(node.left)
        right = self.eval(node.right)
        op = node.op
        if op == ";":
            # sets are lifted to identity filters, so [W] ; po and
            # W ; po mean the same thing
            lrel = left if isinstance(left, Relation) else Relation.identity(left)
            rrel = right if isinstance(right, Relation) else Relation.identity(right)
            return lrel.compose(rrel)
        if op == "*":
            for value, side in ((left, node.left), (right, node.right)):
                if isinstance(value, Relation):
                    raise CatTypeError(
                        "cartesian product * needs two sets, got a relation",
                        side.line,
                        side.column,
                    )
            return Relation.product(left, right)
        if isinstance(left, Relation) != isinstance(right, Relation):
            raise CatTypeError(
                f"{op!r} needs both sides of the same kind; got a "
                f"{_kind(left)} and a {_kind(right)} "
                "(wrap the set in [brackets] to make it a relation)",
                node.line,
                node.column,
            )
        if op == "|":
            return left | right
        if op == "&":
            return left & right
        if op == "\\":
            return left - right
        raise CatEvalError(  # pragma: no cover - parser emits no other ops
            f"unknown operator {op!r}", node.line, node.column
        )

    # -- constraints -----------------------------------------------------

    def constraint_relation(self, constraint: Constraint) -> Relation:
        value = self.eval(constraint.expr)
        if constraint.kind == "empty":
            # empty applies to sets and relations alike; normalise
            if not isinstance(value, Relation):
                return Relation.identity(value)
            return value
        return self._as_relation(
            value, constraint.expr, f"constraint {constraint.kind!r}"
        )

    def check(self, constraint: Constraint) -> bool:
        rel = self.constraint_relation(constraint)
        if constraint.kind == "acyclic":
            return rel.is_acyclic()
        if constraint.kind == "irreflexive":
            return rel.is_irreflexive()
        if constraint.kind == "empty":
            return not rel
        raise CatEvalError(  # pragma: no cover - parser restricts kinds
            f"unknown constraint kind {constraint.kind!r}",
            constraint.line,
            constraint.column,
        )


def check_all(spec: CatSpec, graph: ExecutionGraph) -> bool:
    """Do all of ``spec``'s constraints hold on ``graph``?"""
    env = Env(graph, spec)
    return all(env.check(c) for c in spec.constraints)
