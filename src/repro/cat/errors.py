"""Errors raised while parsing or evaluating ``.cat`` models.

Every error carries the source position (1-based line and column) when
one is known, and renders it in the message — model files are user
input, so "what went wrong where" is part of the contract.
"""

from __future__ import annotations


class CatError(Exception):
    """Base class of all ``.cat`` DSL errors."""

    def __init__(
        self,
        message: str,
        line: int | None = None,
        column: int | None = None,
        filename: str | None = None,
    ) -> None:
        self.bare_message = message
        self.line = line
        self.column = column
        self.filename = filename
        super().__init__(self._format())

    def _format(self) -> str:
        where = ""
        if self.filename is not None:
            where += self.filename
        if self.line is not None:
            where += f"{':' if where else 'line '}{self.line}"
            if self.column is not None:
                where += f":{self.column}"
        return f"{where}: {self.bare_message}" if where else self.bare_message

    def at(self, filename: str | None) -> "CatError":
        """A copy of this error annotated with ``filename``."""
        return type(self)(self.bare_message, self.line, self.column, filename)


class CatSyntaxError(CatError):
    """The source is not a well-formed cat model (lexer/parser)."""


class CatTypeError(CatError):
    """An operator was applied to the wrong kinds of operands
    (e.g. sequencing two event sets, or bracketing a relation)."""


class CatEvalError(CatError):
    """Evaluation failed on a concrete graph (unknown name, diverging
    recursive definition, ...)."""
