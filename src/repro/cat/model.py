"""The :class:`CatModel` adapter: a parsed ``.cat`` spec as a
:class:`~repro.models.base.MemoryModel`.

A ``CatModel`` drops into every place a hand-coded model goes: the
explorer, all backends, ``compare_models``, litmus running, fence
synthesis.  Like the built-in models it checks coherence and RMW
atomicity implicitly (the base-class contract); the file's constraints
are the *global axiom* beyond coherence.

Two knobs the file controls through ``(* repro: ... *)`` directives:

``porf_acyclic`` (default ``true``)
    whether the model forbids po ∪ rf cycles — selects the explorer's
    duplicate-suppression hypothesis, exactly like the attribute on
    hand-coded models.

``prefix`` (default ``porf`` when porf-acyclic, else ``hardware``)
    the causal-prefix notion used during exploration: ``porf``
    (po ∪ rf, the GenMC notion), ``hardware`` (dependency-based, as
    IMM/ARMv8 use), ``hardware-plain`` (dependency-based ignoring
    acquire/release annotations, as POWER uses) or ``minimal``
    (coherence-only: rf sources, RMW pairing, same-location po).

Pickling ships the *source text*: workers reparse on first use, so a
``CatModel`` rides through :mod:`repro.core.parallel` task tuples and
process pools with no registry coordination.
"""

from __future__ import annotations

import os

from ..events import Event
from ..graphs import ExecutionGraph, porf_preds
from ..graphs.incremental import incremental_enabled
from ..models.base import MemoryModel
from ..models.common import hardware_prefix_preds, minimal_prefix_preds
from ..obs import NULL_OBSERVER
from ..relations import Relation
from .ast import CatSpec
from .errors import CatError, CatSyntaxError
from .eval import Env
from .parser import parse_cat

PREFIX_MODES = ("porf", "hardware", "hardware-plain", "minimal")

_TRUE = ("true", "yes", "1", "on")
_FALSE = ("false", "no", "0", "off")

KNOWN_DIRECTIVES = ("name", "porf_acyclic", "prefix")


def _parse_directives(spec: CatSpec, filename: str | None):
    """Validate the spec's directives; returns (name, porf, prefix)."""
    for key in spec.directives:
        if key not in KNOWN_DIRECTIVES:
            raise CatSyntaxError(
                f"unknown repro: directive {key!r}; known: "
                + ", ".join(KNOWN_DIRECTIVES),
                filename=filename,
            )
    porf_text = spec.directives.get("porf_acyclic", "true").lower()
    if porf_text in _TRUE:
        porf = True
    elif porf_text in _FALSE:
        porf = False
    else:
        raise CatSyntaxError(
            f"porf_acyclic must be true or false, got {porf_text!r}",
            filename=filename,
        )
    prefix = spec.directives.get("prefix")
    if prefix is None:
        prefix = "porf" if porf else "hardware"
    if prefix not in PREFIX_MODES:
        raise CatSyntaxError(
            f"unknown prefix mode {prefix!r}; known: "
            + ", ".join(PREFIX_MODES),
            filename=filename,
        )
    return spec.directives.get("name"), porf, prefix


class CatModel(MemoryModel):
    """A memory model defined by a cat specification."""

    def __init__(
        self,
        spec: CatSpec,
        name: str | None = None,
        filename: str | None = None,
    ) -> None:
        directive_name, porf, prefix = _parse_directives(spec, filename)
        self.spec = spec
        self.filename = filename
        self.name = name or directive_name or "cat"
        self.porf_acyclic = porf
        self.prefix_mode = prefix
        title = spec.title or f"declarative model {self.name!r}"
        origin = f" (from {filename})" if filename else ""
        self.__doc__ = f"{title}{origin}."

    # -- construction ----------------------------------------------------

    @classmethod
    def from_source(
        cls,
        source: str,
        name: str | None = None,
        filename: str | None = None,
    ) -> "CatModel":
        return cls(parse_cat(source, filename), name=name, filename=filename)

    # -- evaluation ------------------------------------------------------

    def env(self, graph: ExecutionGraph) -> Env:
        """The (memoised) evaluation environment for ``graph``.

        Entries live in ``graph._aux`` (keyed per model), so a copied
        graph starts out with its parent's environment: a same-version
        entry is returned as-is, and a stale one is *advanced* through
        the graph's delta log (base-set memos extended in place, see
        :meth:`Env.advanced`) rather than rebuilt from nothing.

        When an observer is attached (one run of the explorer), the
        environment profiles its memo hits/misses and fixpoint rounds
        into the observer's registry — see :class:`Env`.
        """
        obs = self._observer
        profiler = getattr(obs, "metrics", None) if obs.enabled else None
        version = graph._version
        key = ("cat-env", self)
        entry = graph._aux.get(key)
        if entry is not None and entry[1]._profiler is profiler:
            if entry[0] == version:
                return entry[1]
            if incremental_enabled():
                deltas = graph.deltas_since(entry[0])
                if deltas is not None:
                    env = entry[1].advanced(graph, deltas, profiler=profiler)
                    graph._aux[key] = (version, env)
                    return env
        env = Env(graph, self.spec, profiler=profiler)
        graph._aux[key] = (version, env)
        return env

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        env = self.env(graph)
        return all(env.check(c) for c in self.spec.constraints)

    def axiom_relation(self, graph: ExecutionGraph) -> Relation | None:
        """The single acyclicity relation, when the model is one
        ``acyclic`` constraint (used by diagnosis); None otherwise."""
        constraints = self.spec.constraints
        if len(constraints) == 1 and constraints[0].kind == "acyclic":
            return self.env(graph).constraint_relation(constraints[0])
        return None

    def failed_constraints(self, graph: ExecutionGraph) -> list[str]:
        """Names (or positional labels) of the constraints ``graph``
        violates — the diagnostic behind a 'forbidden' verdict."""
        env = self.env(graph)
        out = []
        for i, constraint in enumerate(self.spec.constraints):
            if not env.check(constraint):
                out.append(constraint.name or f"{constraint.kind}#{i + 1}")
        return out

    # -- exploration hooks ----------------------------------------------

    def prefix_preds(self, graph: ExecutionGraph, ev: Event) -> list[Event]:
        mode = self.prefix_mode
        if mode == "porf":
            return porf_preds(graph, ev)
        if mode == "hardware":
            return hardware_prefix_preds(graph, ev, annotations=True)
        if mode == "hardware-plain":
            return hardware_prefix_preds(graph, ev, annotations=False)
        return minimal_prefix_preds(graph, ev)

    # -- pickling --------------------------------------------------------
    #
    # Ship the source text and identity only: the parse is cheap, the
    # per-graph memo is process-local, and the observer is attached per
    # run by the explorer.

    def __getstate__(self):
        return {
            "name": self.name,
            "source": self.spec.source,
            "filename": self.filename,
        }

    def __setstate__(self, state):
        spec = parse_cat(state["source"], state["filename"])
        self.__init__(spec, name=state["name"], filename=state["filename"])
        self._observer = NULL_OBSERVER

    def __repr__(self) -> str:
        origin = f" from {self.filename}" if self.filename else ""
        return f"<cat model {self.name}{origin}>"


def load_cat_file(path: str, name: str | None = None) -> CatModel:
    """Parse the ``.cat`` file at ``path`` into a :class:`CatModel`.

    The model's registry name is, in order of preference: the ``name``
    argument, a ``(* repro: name=... *)`` directive, or the file's
    stem.  Raises :class:`OSError` when unreadable and
    :class:`CatError` (with the filename in the message) when invalid —
    including static errors the linter finds (unknown names, set/
    relation mix-ups), so a broken file fails at load time rather than
    mid-exploration.
    """
    from .lint import lint_source  # late: lint imports this module

    with open(path) as handle:
        source = handle.read()
    stem = os.path.splitext(os.path.basename(path))[0]
    try:
        spec = parse_cat(source, filename=path)
        for diag in lint_source(source, filename=path):
            if diag.severity == "error":
                raise CatSyntaxError(
                    diag.message, diag.line, diag.column, filename=path
                )
        return CatModel(
            spec,
            name=name or spec.directives.get("name") or stem,
            filename=path,
        )
    except CatError as exc:
        raise (exc if exc.filename else exc.at(path)) from None
