"""Static checks for ``.cat`` model files (the ``cat-check`` command).

Linting needs no execution graph: it parses the file, validates the
directives, and walks the definitions in order doing name resolution
and *kind* inference (every expression is statically a set or a
relation).  Errors are things evaluation would reject on every graph;
warnings are smells (shadowing a base name, an unused ``let``, a file
with no constraints).
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import Binary, Bracket, CatSpec, Constraint, Expr, Let, Postfix, Var
from .errors import CatError
from .eval import BASE_NAMES, BASE_RELATIONS, BASE_SETS
from .model import _parse_directives
from .parser import parse_cat

SET, REL, UNKNOWN = "set", "relation", "unknown"


@dataclass(frozen=True, slots=True)
class CatDiagnostic:
    severity: str  # "error" | "warning"
    message: str
    line: int | None = None
    column: int | None = None

    def format(self, filename: str | None = None) -> str:
        where = filename or ""
        if self.line is not None:
            where += f":{self.line}"
            if self.column is not None:
                where += f":{self.column}"
        prefix = f"{where}: " if where else ""
        return f"{prefix}{self.severity}: {self.message}"


class _Linter:
    def __init__(self, spec: CatSpec) -> None:
        self.spec = spec
        self.diagnostics: list[CatDiagnostic] = []
        #: names bound so far -> inferred kind
        self.bound: dict[str, str] = {}
        self.used: set[str] = set()

    def error(self, message: str, node) -> None:
        self.diagnostics.append(
            CatDiagnostic("error", message, node.line, node.column)
        )

    def warn(self, message: str, node) -> None:
        self.diagnostics.append(
            CatDiagnostic("warning", message, node.line, node.column)
        )

    def run(self) -> list[CatDiagnostic]:
        for statement in self.spec.statements:
            if isinstance(statement, Let):
                self._lint_let(statement)
            else:
                self._lint_constraint(statement)
        if not self.spec.constraints:
            self.diagnostics.append(
                CatDiagnostic(
                    "warning",
                    "no constraints: every execution is allowed "
                    "(beyond coherence)",
                )
            )
        for name, (line, column) in self._definitions.items():
            if name not in self.used:
                self.diagnostics.append(
                    CatDiagnostic(
                        "warning", f"unused definition {name!r}", line, column
                    )
                )
        return self.diagnostics

    @property
    def _definitions(self) -> dict[str, tuple[int, int]]:
        out = {}
        for let in self.spec.lets:
            for binding in let.bindings:
                out[binding.name] = (binding.line, binding.column)
        return out

    def _lint_let(self, let: Let) -> None:
        if let.recursive:
            # rec names are in scope inside the whole group, as relations
            for binding in let.bindings:
                self._check_shadow(binding)
                self.bound[binding.name] = REL
            for binding in let.bindings:
                kind = self._kind(binding.body)
                if kind == SET:
                    self.error(
                        f"recursive binding {binding.name!r} must define "
                        "a relation, not a set",
                        binding,
                    )
            return
        for binding in let.bindings:
            kind = self._kind(binding.body)
            self._check_shadow(binding)
            self.bound[binding.name] = kind

    def _check_shadow(self, binding) -> None:
        if binding.name in BASE_NAMES:
            self.warn(
                f"{binding.name!r} shadows a base "
                f"{'set' if binding.name in BASE_SETS else 'relation'}",
                binding,
            )
        elif binding.name in self.bound:
            self.warn(f"{binding.name!r} rebinds an earlier definition", binding)

    def _lint_constraint(self, constraint: Constraint) -> None:
        kind = self._kind(constraint.expr)
        if constraint.kind in ("acyclic", "irreflexive") and kind == SET:
            self.error(
                f"{constraint.kind} needs a relation, got a set", constraint
            )

    # -- kind inference --------------------------------------------------

    def _kind(self, node: Expr) -> str:
        if isinstance(node, Var):
            name = node.name
            self.used.add(name)
            if name in self.bound:
                return self.bound[name]
            if name in BASE_SETS:
                return SET
            if name in BASE_RELATIONS:
                return REL
            if name in self._definitions:
                self.error(
                    f"{name!r} is used before its definition "
                    "(reorder, or use 'let rec' for fixpoints)",
                    node,
                )
            else:
                self.error(f"unknown name {name!r}", node)
            return UNKNOWN
        if isinstance(node, Bracket):
            if self._kind(node.body) == REL:
                self.error("[...] needs a set, got a relation", node)
            return REL
        if isinstance(node, Postfix):
            if self._kind(node.body) == SET:
                self.error(
                    f"postfix {node.op!r} needs a relation, got a set "
                    "(wrap it in [brackets])",
                    node,
                )
            return REL
        if isinstance(node, Binary):
            left = self._kind(node.left)
            right = self._kind(node.right)
            if node.op == ";":
                return REL
            if node.op == "*":
                if REL in (left, right):
                    self.error(
                        "cartesian product * needs two sets, got a relation",
                        node,
                    )
                return REL
            if UNKNOWN in (left, right):
                return UNKNOWN
            if left != right:
                self.error(
                    f"{node.op!r} mixes a set and a relation "
                    "(wrap the set in [brackets])",
                    node,
                )
                return UNKNOWN
            return left
        return UNKNOWN  # pragma: no cover - parser emits no other nodes


def lint_source(source: str, filename: str | None = None) -> list[CatDiagnostic]:
    """All diagnostics for ``source``; a parse error yields exactly one."""
    try:
        spec = parse_cat(source, filename)
        _parse_directives(spec, filename)
    except CatError as exc:
        return [CatDiagnostic("error", exc.bare_message, exc.line, exc.column)]
    return _Linter(spec).run()


def lint_path(path: str) -> list[CatDiagnostic]:
    with open(path) as handle:
        return lint_source(handle.read(), filename=path)
