"""repro.cat — a declarative, herd-style axiomatic-model DSL.

HMC's defining move is that the memory model is an *input*: an
axiomatic specification over ``po``/``rf``/``co``.  This package makes
that literal.  A ``.cat`` file names derived relations with ``let``
(including recursive fixpoint definitions), combines them with the
relational operators ``| ; & \\ ^-1 ? + *``, and states the model as
``acyclic``/``irreflexive``/``empty`` constraints.  The text compiles
onto :mod:`repro.relations` and runs through the unchanged exploration
core via :class:`CatModel`, a picklable :class:`~repro.models.base.
MemoryModel` adapter — so user-written models work with every backend,
the parallel engine, tracing and the CLI.

Quick tour::

    from repro.cat import CatModel

    sc = CatModel.from_source('''
        "my sequential consistency"
        let com = rf | co | fr
        acyclic po | com as sc
    ''', name="my-sc")

    from repro.core import verify
    verify(program, sc)

See ``docs/CAT.md`` for the grammar and the base-relation glossary,
and ``src/repro/models/cat/`` for the shipped model files that are
differentially validated against the hand-coded models.
"""

from .errors import CatError, CatEvalError, CatSyntaxError, CatTypeError
from .lint import CatDiagnostic, lint_path, lint_source
from .model import CatModel, load_cat_file
from .parser import parse_cat

__all__ = [
    "CatDiagnostic",
    "CatError",
    "CatEvalError",
    "CatModel",
    "CatSyntaxError",
    "CatTypeError",
    "lint_path",
    "lint_source",
    "load_cat_file",
    "parse_cat",
]
