"""Backward revisits: the mechanism that lets already-added reads
observe writes added later.

When the explorer adds a write ``w``, every same-location read ``r``
outside ``w``'s *causal prefix* is a revisit candidate: the graph is
restricted to the events added no later than ``r`` plus the events
``w`` transitively needs, ``r`` is redirected to read from ``w``, and
exploration restarts from there (the deleted events re-execute).

Which reads count as "outside the prefix" is what distinguishes HMC
from GenMC: the model supplies the prefix relation
(:meth:`MemoryModel.prefix_preds`).  Under po ∪ rf every read po- or
rf-before ``w`` is protected, so load-buffering cycles can never be
constructed; under a dependency prefix an independent po-earlier read
*can* be revisited by a po-later write, constructing exactly the
porf-cyclic executions hardware allows.

Duplication avoidance follows TruSt (Kokologiannakis et al., POPL
2022): a revisit is performed only when every deleted event was added
*maximally* (reads from the coherence-maximal write then available,
writes at the coherence-maximal position), which makes the revisited
graph's re-exploration canonical.
"""

from __future__ import annotations

from ..events import Event, ReadLabel, WriteLabel, labels_match
from ..graphs import ExecutionGraph, closure, revisit_kept_set
from ..lang import Program, replay
from ..models import MemoryModel
from ..obs import NULL_OBSERVER
from .config import ExplorationOptions
from .result import Stats


def maximally_added(graph: ExecutionGraph, ev: Event) -> bool:
    """Was ``ev``'s choice the canonical (first) one?

    A read is maximal when it reads from the coherence-latest write
    among those added before it; a write is maximal when no write added
    before it sits coherence-after it.  Fences have no choices.
    """
    lab = graph.label(ev)
    stamp = graph.stamp(ev)
    if isinstance(lab, ReadLabel):
        order = graph.co_order(lab.loc)
        older = [w for w in order if graph.stamp(w) < stamp]
        return bool(older) and graph.rf(ev) == older[-1]
    if isinstance(lab, WriteLabel):
        # Maximality is judged against the graph as it was when the
        # event was added: the write must sit coherence-after every
        # *older* same-location write.  Where later-added writes ended
        # up is irrelevant.
        order = graph.co_order(lab.loc)
        pos = order.index(ev)
        return all(graph.stamp(w) > stamp for w in order[pos + 1:])
    return True


def revisit_candidates(
    graph: ExecutionGraph, write: Event, model: MemoryModel
) -> tuple[list[Event], set[Event]]:
    """Same-location reads outside the write's causal prefix, plus the
    prefix itself (for the caller's bookkeeping)."""
    lab = graph.label(write)
    assert isinstance(lab, WriteLabel)
    prefix = closure(graph, [write], model.prefix_preds)
    reads = [
        r
        for r in graph.reads(lab.loc)
        if r not in prefix and r != graph.exclusive_pair(write)
    ]
    return reads, prefix


def replay_matches(program: Program, graph: ExecutionGraph) -> bool:
    """Do all threads, re-executed against the graph's read values,
    reproduce the graph's labels?  This is the validity condition for
    dependency-prefix revisits: kept events po-after a revisited read
    must be value-independent of it."""
    for tid in graph.thread_ids():
        n = graph.thread_size(tid)
        rep = replay(
            program.threads[tid], tid, graph.read_values(tid), max_events=n
        )
        if len(rep.labels) < n:
            return False
        events = graph.thread_events(tid)
        for ev, new_label in zip(events, rep.labels):
            if not labels_match(graph.label(ev), new_label):
                return False
    return True


def backward_revisits(
    graph: ExecutionGraph,
    write: Event,
    program: Program,
    model: MemoryModel,
    options: ExplorationOptions,
    stats: Stats,
    obs=NULL_OBSERVER,
) -> list[ExecutionGraph]:
    """All valid revisited graphs produced by the freshly added
    ``write``.  ``graph`` must already contain ``write`` (at some
    coherence position) and be consistent."""
    out: list[ExecutionGraph] = []
    candidates, _prefix = revisit_candidates(graph, write, model)
    all_reads = graph.reads(graph.label(write).location)  # type: ignore[arg-type]
    stats.revisits_considered += len(all_reads)
    stats.revisits_rejected_prefix += len(all_reads) - len(candidates)
    if obs.trace_enabled:
        wref = [write.tid, write.index]
        in_prefix = set(all_reads) - set(candidates)
        for read in all_reads:
            obs.emit(
                "revisit_considered",
                read=[read.tid, read.index],
                write=wref,
            )
            if read in in_prefix:
                obs.emit(
                    "revisit_rejected",
                    read=[read.tid, read.index],
                    write=wref,
                    reason="prefix",
                )
    for read in candidates:
        kept = revisit_kept_set(graph, write, read)
        deleted = [e for e in graph.events() if e not in kept]
        # Canonicity filter: only revisit from the exploration in which
        # every deleted event took its canonical (coherence-maximal)
        # choice — every other configuration of the deleted events is
        # re-derivable from that one.  This prunes the bulk of the
        # would-be duplicates; the residue (revisit chains reaching the
        # same graph along different coherence histories) is suppressed
        # by the explorer's canonical-hash check and reported.
        if options.maximality_check and not all(
            maximally_added(graph, e) for e in deleted
        ):
            stats.revisits_rejected_maximality += 1
            _emit_rejected(obs, read, write, "maximality")
            continue
        revisited = graph.restricted(kept)
        revisited.set_rf(read, write)
        # the read is conceptually re-added: it reads a newer write, so
        # it gets a fresh stamp (and stays revisitable itself)
        revisited.touch(read)
        revisited.renumber_stamps()
        if options.validate_revisits and not replay_matches(program, revisited):
            stats.revisits_rejected_replay += 1
            _emit_rejected(obs, read, write, "replay")
            continue
        stats.consistency_checks += 1
        if not model.is_consistent(revisited):
            stats.revisits_rejected_inconsistent += 1
            _emit_rejected(obs, read, write, "inconsistent")
            continue
        stats.revisits_performed += 1
        if obs.enabled:
            obs.observe("revisit_deleted", len(deleted))
            if obs.trace_enabled:
                obs.emit(
                    "revisit_performed",
                    read=[read.tid, read.index],
                    write=[write.tid, write.index],
                    deleted=len(deleted),
                )
        out.append(revisited)
    return out


def _emit_rejected(obs, read: Event, write: Event, reason: str) -> None:
    if obs.trace_enabled:
        obs.emit(
            "revisit_rejected",
            read=[read.tid, read.index],
            write=[write.tid, write.index],
            reason=reason,
        )
