"""Fence synthesis: make a program safe on a weak model by inserting
the fewest fences.

The application the paper's introduction motivates: code verified
under SC breaks on TSO/ARM/POWER; the checker can not only find the
violating execution but *search the space of fence placements* for a
minimal fix.  `synthesize_fences` enumerates candidate insertion
points (between consecutive top-level statements of each thread) and
tries placements in increasing cardinality, verifying each with the
checker, so the returned set is minimal in size.

This is exhaustive-by-construction (every candidate subset is model
checked), which is exactly how fence-insertion papers built on SMC
back ends work; the exploration's speed is what makes it viable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..events import FenceKind, MemOrder
from ..lang import Fence, Program, Stmt
from ..models import MemoryModel, get_model
from ..obs import NULL_OBSERVER
from .config import ExplorationOptions, resolve_options
from .explorer import verify

#: an insertion point: fence goes before statement ``index`` of thread
FencePlacement = tuple[int, int]


@dataclass
class RepairResult:
    program: str
    model: str
    fence: FenceKind
    #: None when even fencing everywhere does not help
    placements: tuple[FencePlacement, ...] | None
    #: the repaired program, when one exists
    repaired: Program | None
    #: how many candidate programs were model checked
    attempts: int = 0
    already_safe: bool = False

    def summary(self) -> str:
        if self.already_safe:
            return f"{self.program} is already safe under {self.model}"
        if self.placements is None:
            return (
                f"{self.program}: no {self.fence.value} placement fixes it "
                f"under {self.model} ({self.attempts} candidates tried)"
            )
        spots = ", ".join(
            f"thread {tid} before statement {idx}"
            for tid, idx in self.placements
        )
        return (
            f"{self.program}: safe under {self.model} with "
            f"{len(self.placements)} x {self.fence.value} ({spots}; "
            f"{self.attempts} candidates tried)"
        )


def _with_fences(
    program: Program, placements: tuple[FencePlacement, ...], fence: FenceKind
) -> Program:
    threads = []
    for tid, stmts in enumerate(program.threads):
        out: list[Stmt] = []
        wanted = sorted(idx for t, idx in placements if t == tid)
        for idx, st in enumerate(stmts):
            if idx in wanted:
                out.append(Fence(fence, MemOrder.SC))
            out.append(st)
        if len(stmts) in wanted:  # fence at the very end
            out.append(Fence(fence, MemOrder.SC))
        threads.append(tuple(out))
    return Program(
        name=f"{program.name}+fences",
        threads=tuple(threads),
        observables=program.observables,
    )


def _is_safe(
    program: Program,
    model: MemoryModel,
    options: ExplorationOptions,
    observer,
) -> bool:
    return verify(program, model, options=options, observer=observer).ok


def candidate_points(program: Program) -> list[FencePlacement]:
    """All interior insertion points (a fence first or last in a thread
    never orders anything)."""
    points = []
    for tid, stmts in enumerate(program.threads):
        for idx in range(1, len(stmts)):
            points.append((tid, idx))
    return points


def synthesize_fences(
    program: Program,
    model: MemoryModel | str,
    *,
    fence: FenceKind = FenceKind.SYNC,
    max_fences: int | None = None,
    options: ExplorationOptions | None = None,
    observer=NULL_OBSERVER,
    **option_overrides,
) -> RepairResult:
    """Find a minimum-cardinality set of fence insertions making
    ``program`` assertion-safe under ``model``.

    Keyword-only after the model argument; follows
    :func:`~repro.core.explorer.verify`'s convention: each candidate
    verification uses ``options`` if given, otherwise the synthesis
    defaults ``stop_on_error=True, max_events=10_000`` with any
    keyword ``option_overrides`` applied (``max_events=...`` and
    ``jobs=...`` are the useful knobs).
    """
    options = resolve_options(
        options, option_overrides,
        stop_on_error=True, max_events=10_000,
    )
    model = get_model(model) if isinstance(model, str) else model
    result = RepairResult(
        program=program.name,
        model=model.name,
        fence=fence,
        placements=None,
        repaired=None,
    )
    if _is_safe(program, model, options, observer):
        result.already_safe = True
        result.placements = ()
        result.repaired = program
        return result

    points = candidate_points(program)
    limit = len(points) if max_fences is None else min(max_fences, len(points))
    for size in range(1, limit + 1):
        for combo in itertools.combinations(points, size):
            candidate = _with_fences(program, combo, fence)
            result.attempts += 1
            if _is_safe(candidate, model, options, observer):
                result.placements = combo
                result.repaired = candidate
                return result
    return result
