"""Verification results and statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..graphs import ExecutionGraph

#: An observable outcome: ("r0@1", value) pairs, sorted.
Outcome = tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class ErrorReport:
    """An assertion failure, with its witness execution."""

    message: str
    thread: int
    witness: str  # pretty-printed witness graph
    #: the witness graph itself (for linearisation / DOT export)
    graph: "ExecutionGraph | None" = None

    def __str__(self) -> str:
        return f"assertion failure in thread {self.thread}: {self.message}"


@dataclass
class Stats:
    """Exploration counters (the quantities the paper's tables report,
    plus internals useful for the ablations)."""

    events_added: int = 0
    reads_added: int = 0
    writes_added: int = 0
    rf_candidates: int = 0
    co_positions: int = 0
    revisits_considered: int = 0
    revisits_performed: int = 0
    revisits_rejected_prefix: int = 0
    revisits_rejected_maximality: int = 0
    revisits_rejected_replay: int = 0
    revisits_rejected_inconsistent: int = 0
    consistency_checks: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


@dataclass
class VerificationResult:
    """Everything a run of the checker learned about a program."""

    program: str
    model: str
    #: distinct consistent complete executions
    executions: int = 0
    #: complete-or-dead-end explorations blocked by a failed assume /
    #: unsatisfiable RMW
    blocked: int = 0
    #: complete graphs explored more than once (0 for porf-acyclic models)
    duplicates: int = 0
    errors: list[ErrorReport] = field(default_factory=list)
    #: observable-register outcomes over consistent executions
    outcomes: Counter = field(default_factory=Counter)
    #: final memory states over consistent executions
    final_states: Counter = field(default_factory=Counter)
    elapsed: float = 0.0
    stats: Stats = field(default_factory=Stats)
    #: per-phase timing breakdown ({phase: {"calls", "total", "self"}}),
    #: populated when the run was observed (see repro.obs); empty dict
    #: when observability was off
    phase_times: dict[str, dict[str, float]] = field(default_factory=dict)
    #: populated when options.collect_executions is set
    execution_graphs: list[ExecutionGraph] = field(default_factory=list)
    #: search aborted by a limit (max_executions / max_explored)
    truncated: bool = False

    @property
    def ok(self) -> bool:
        """No assertion failures found."""
        return not self.errors

    @property
    def explored(self) -> int:
        """All complete graphs visited, including duplicates."""
        return self.executions + self.duplicates

    def summary(self) -> str:
        lines = [
            f"program   : {self.program}",
            f"model     : {self.model}",
            f"executions: {self.executions}",
            f"blocked   : {self.blocked}",
            f"duplicates: {self.duplicates}",
            f"errors    : {len(self.errors)}",
            f"time      : {self.elapsed:.3f}s",
        ]
        if self.errors:
            lines.append(f"first error: {self.errors[0]}")
        if self.outcomes:
            lines.append("outcomes:")
            for outcome, count in sorted(self.outcomes.items()):
                shown = ", ".join(f"{k}={v}" for k, v in outcome)
                lines.append(f"  {{{shown}}}: {count}")
        return "\n".join(lines)

    def stats_summary(self) -> str:
        """The exploration counters plus (when observed) the per-phase
        time breakdown, as aligned text."""
        lines = ["stats:"]
        for name, value in self.stats.as_dict().items():
            lines.append(f"  {name:30s} {value}")
        if self.phase_times:
            from ..obs import format_phase_table

            lines.append("time by phase:")
            lines.extend(format_phase_table(self.phase_times))
        return "\n".join(lines)
