"""Verification results and statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..graphs import ExecutionGraph

#: An observable outcome: ("r0@1", value) pairs, sorted.
Outcome = tuple[tuple[str, int], ...]


def _summable(value) -> bool:
    # bool is an int subclass, but True + True == 2 is never the right
    # way to combine two workers' flags — booleans stay left-biased
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _merge_meta(left: dict, right: dict) -> dict:
    """Sum numeric entries shared by both sides, otherwise left-biased."""
    merged = dict(left)
    for key, value in right.items():
        if key in merged and _summable(merged[key]) and _summable(value):
            merged[key] = merged[key] + value
        else:
            merged.setdefault(key, value)
    return merged


@dataclass(frozen=True)
class ErrorReport:
    """An assertion failure, with its witness execution."""

    message: str
    thread: int
    witness: str  # pretty-printed witness graph
    #: the witness graph itself (for linearisation / DOT export)
    graph: "ExecutionGraph | None" = None

    def __str__(self) -> str:
        return f"assertion failure in thread {self.thread}: {self.message}"


@dataclass(frozen=True)
class ExecutionRecord:
    """One distinct complete execution, in a process-portable form.

    Recorded when :attr:`ExplorationOptions.collect_keys` is set; the
    parallel coordinator uses the canonical key to reconcile executions
    that different workers discovered independently.
    """

    key: tuple
    outcome: Outcome
    final_state: tuple
    #: kept only when options.collect_executions is also set
    graph: "ExecutionGraph | None" = None


@dataclass
class Stats:
    """Exploration counters (the quantities the paper's tables report,
    plus internals useful for the ablations)."""

    events_added: int = 0
    reads_added: int = 0
    writes_added: int = 0
    rf_candidates: int = 0
    co_positions: int = 0
    revisits_considered: int = 0
    revisits_performed: int = 0
    revisits_rejected_prefix: int = 0
    revisits_rejected_maximality: int = 0
    revisits_rejected_replay: int = 0
    revisits_rejected_inconsistent: int = 0
    consistency_checks: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))

    def merge(self, other: "Stats") -> "Stats":
        """Field-wise sum (commutative and associative)."""
        return Stats(
            **{
                name: value + getattr(other, name)
                for name, value in vars(self).items()
            }
        )


def merge_phase_times(
    left: dict[str, dict[str, float]], right: dict[str, dict[str, float]]
) -> dict[str, dict[str, float]]:
    """Sum two per-phase timing reports key-wise.

    Merged totals are cumulative CPU seconds across contributors, so on
    a parallel run they can exceed the wall-clock ``elapsed``.
    """
    merged = {name: dict(stat) for name, stat in left.items()}
    for name, stat in right.items():
        into = merged.setdefault(name, {})
        for field_name, value in stat.items():
            into[field_name] = into.get(field_name, 0.0) + value
    return merged


@dataclass
class VerificationResult:
    """Everything a run of the checker learned about a program."""

    program: str
    model: str
    #: distinct consistent complete executions
    executions: int = 0
    #: complete-or-dead-end explorations blocked by a failed assume /
    #: unsatisfiable RMW
    blocked: int = 0
    #: complete graphs explored more than once (0 for porf-acyclic models)
    duplicates: int = 0
    errors: list[ErrorReport] = field(default_factory=list)
    #: observable-register outcomes over consistent executions
    outcomes: Counter = field(default_factory=Counter)
    #: final memory states over consistent executions
    final_states: Counter = field(default_factory=Counter)
    elapsed: float = 0.0
    stats: Stats = field(default_factory=Stats)
    #: per-phase timing breakdown ({phase: {"calls", "total", "self"}}),
    #: populated when the run was observed (see repro.obs); empty dict
    #: when observability was off
    phase_times: dict[str, dict[str, float]] = field(default_factory=dict)
    #: populated when options.collect_executions is set
    execution_graphs: list[ExecutionGraph] = field(default_factory=list)
    #: search aborted by a limit (max_executions / max_explored)
    truncated: bool = False
    #: one record per distinct execution, populated when
    #: options.collect_keys is set (the parallel engine relies on it)
    execution_records: list[ExecutionRecord] = field(default_factory=list)
    #: backend-specific counters (baseline trace counts, parallel task
    #: accounting, ...) that have no first-class field
    meta: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """No assertion failures found."""
        return not self.errors

    @property
    def explored(self) -> int:
        """All complete graphs visited, including duplicates."""
        return self.executions + self.duplicates

    @property
    def keyed(self) -> bool:
        """Every distinct execution carries an :class:`ExecutionRecord`
        (required for exact cross-process deduplication)."""
        return len(self.execution_records) == self.executions

    def merge(self, other: "VerificationResult") -> "VerificationResult":
        """Combine two partial results of the *same* verification task.

        Deterministic, associative, and non-mutating.  When both sides
        are :attr:`keyed`, executions completed on both sides are
        reconciled by canonical key: the merged result counts each
        distinct execution once (left-biased on first sight) and
        reclassifies re-discoveries as duplicates, so a parallel run
        reports the same ``executions``/``outcomes``/``final_states``
        as a serial one.  Without keys the counters are simply summed.
        """
        if (self.program, self.model) != (other.program, other.model):
            raise ValueError(
                f"cannot merge results of different tasks: "
                f"{(self.program, self.model)} vs {(other.program, other.model)}"
            )
        if self.keyed != other.keyed and self.executions and other.executions:
            # mixing a keyed result with an unkeyed one would silently
            # fall into the unkeyed sum path and double-count any
            # execution both sides discovered; refuse instead of lying
            raise ValueError(
                "cannot merge a keyed result with an unkeyed one: "
                "execution records were stripped (or never collected) "
                "on one side, so cross-side deduplication is impossible"
            )
        merged = VerificationResult(program=self.program, model=self.model)
        merged.blocked = self.blocked + other.blocked
        merged.errors = [*self.errors, *other.errors]
        merged.truncated = self.truncated or other.truncated
        merged.elapsed = max(self.elapsed, other.elapsed)
        merged.stats = self.stats.merge(other.stats)
        merged.phase_times = merge_phase_times(self.phase_times, other.phase_times)
        merged.meta = _merge_meta(self.meta, other.meta)
        if self.keyed and other.keyed:
            seen = {record.key for record in self.execution_records}
            merged.execution_records = list(self.execution_records)
            for record in other.execution_records:
                if record.key not in seen:
                    seen.add(record.key)
                    merged.execution_records.append(record)
            merged.executions = len(merged.execution_records)
            merged.duplicates = (
                self.explored + other.explored - merged.executions
            )
            merged.outcomes = Counter(
                record.outcome for record in merged.execution_records
            )
            merged.final_states = Counter(
                record.final_state for record in merged.execution_records
            )
            merged.execution_graphs = [
                record.graph
                for record in merged.execution_records
                if record.graph is not None
            ]
        else:
            merged.executions = self.executions + other.executions
            merged.duplicates = self.duplicates + other.duplicates
            merged.outcomes = self.outcomes + other.outcomes
            merged.final_states = self.final_states + other.final_states
            merged.execution_graphs = [
                *self.execution_graphs,
                *other.execution_graphs,
            ]
            merged.execution_records = [
                *self.execution_records,
                *other.execution_records,
            ]
        return merged

    def summary(self) -> str:
        lines = [
            f"program   : {self.program}",
            f"model     : {self.model}",
            f"executions: {self.executions}",
            f"blocked   : {self.blocked}",
            f"duplicates: {self.duplicates}",
            f"errors    : {len(self.errors)}",
            f"time      : {self.elapsed:.3f}s",
        ]
        if self.errors:
            lines.append(f"first error: {self.errors[0]}")
        if self.outcomes:
            lines.append("outcomes:")
            for outcome, count in sorted(self.outcomes.items()):
                shown = ", ".join(f"{k}={v}" for k, v in outcome)
                lines.append(f"  {{{shown}}}: {count}")
        return "\n".join(lines)

    def stats_summary(self) -> str:
        """The exploration counters plus (when observed) the per-phase
        time breakdown, as aligned text."""
        lines = ["stats:"]
        for name, value in self.stats.as_dict().items():
            lines.append(f"  {name:30s} {value}")
        if self.phase_times:
            from ..obs import format_phase_table

            lines.append("time by phase:")
            lines.extend(format_phase_table(self.phase_times))
        return "\n".join(lines)
