"""Differential verification: the same program under two models.

Answers the questions HMC-style tooling gets used for in practice:
*which behaviours does porting to a weaker architecture add?* and
*does my synchronisation still work there?*  `compare_models` runs
the checker under both models and diffs the outcome sets, returning
the behaviours (and witnesses) unique to each side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graphs import ExecutionGraph
from ..lang import Program
from ..models import MemoryModel, get_model
from ..obs import NULL_OBSERVER
from .config import ExplorationOptions, resolve_options
from .explorer import verify
from .result import Outcome, VerificationResult


@dataclass
class ModelComparison:
    """The difference in behaviour between two memory models."""

    program: str
    left: str
    right: str
    left_result: VerificationResult
    right_result: VerificationResult
    #: outcomes observable under left but not right, and vice versa
    only_left: set[Outcome] = field(default_factory=set)
    only_right: set[Outcome] = field(default_factory=set)
    #: a witness graph (pretty text) per side-exclusive outcome
    witnesses: dict[Outcome, str] = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        """Same observable outcomes, same safety verdict."""
        return (
            not self.only_left
            and not self.only_right
            and self.left_result.ok == self.right_result.ok
        )

    @property
    def executions_ratio(self) -> float:
        """How many more executions the weaker side explores."""
        if self.left_result.executions == 0:
            return float("inf")
        return self.right_result.executions / self.left_result.executions

    def summary(self) -> str:
        lines = [
            f"program : {self.program}",
            f"{self.left:9s}: {self.left_result.executions} executions, "
            f"{len(self.left_result.errors)} errors",
            f"{self.right:9s}: {self.right_result.executions} executions, "
            f"{len(self.right_result.errors)} errors",
        ]
        if self.equivalent:
            lines.append("observably equivalent under both models")
        for side, outcomes in (
            (self.left, self.only_left),
            (self.right, self.only_right),
        ):
            for outcome in sorted(outcomes):
                shown = ", ".join(f"{k}={v}" for k, v in outcome) or "(empty)"
                lines.append(f"only under {side}: {{{shown}}}")
        return "\n".join(lines)


def _run(
    program: Program,
    model: MemoryModel,
    options: ExplorationOptions,
    observer,
) -> VerificationResult:
    return verify(program, model, options=options, observer=observer)


def _outcome_of(program: Program, graph: ExecutionGraph) -> Outcome:
    from ..lang import replay

    outcome = []
    for tid, reg in program.observables:
        rep = replay(program.threads[tid], tid, graph.read_values(tid))
        if reg in rep.registers:
            outcome.append((f"{reg}@{tid}", rep.registers[reg]))
    return tuple(sorted(outcome))


def compare_models(
    program: Program,
    left: MemoryModel | str,
    right: MemoryModel | str,
    *,
    options: ExplorationOptions | None = None,
    observer=NULL_OBSERVER,
    **option_overrides,
) -> ModelComparison:
    """Diff the observable behaviours of ``program`` under two models.

    Keyword-only after the model arguments; follows
    :func:`~repro.core.explorer.verify`'s convention: pass either a
    full ``options`` object or keyword overrides (applied on top of
    the comparison defaults ``stop_on_error=False,
    collect_executions=True``), and optionally an ``observer`` that
    both runs report into.  E.g. ``compare_models(p, "sc", "tso",
    jobs=4)`` shards both explorations.
    """
    options = resolve_options(
        options, option_overrides,
        stop_on_error=False, collect_executions=True,
    )
    left = get_model(left) if isinstance(left, str) else left
    right = get_model(right) if isinstance(right, str) else right
    left_result = _run(program, left, options, observer)
    right_result = _run(program, right, options, observer)
    comparison = ModelComparison(
        program=program.name,
        left=left.name,
        right=right.name,
        left_result=left_result,
        right_result=right_result,
    )
    left_outcomes = set(left_result.outcomes)
    right_outcomes = set(right_result.outcomes)
    comparison.only_left = left_outcomes - right_outcomes
    comparison.only_right = right_outcomes - left_outcomes
    for result, exclusive in (
        (left_result, comparison.only_left),
        (right_result, comparison.only_right),
    ):
        if not exclusive:
            continue
        for graph in result.execution_graphs:
            outcome = _outcome_of(program, graph)
            if outcome in exclusive and outcome not in comparison.witnesses:
                comparison.witnesses[outcome] = graph.pretty()
    return comparison


def new_behaviours(
    program: Program,
    strong: MemoryModel | str,
    weak: MemoryModel | str,
) -> set[Outcome]:
    """Outcomes that porting from ``strong`` to ``weak`` introduces."""
    return compare_models(program, strong, weak).only_right
