"""Witness linearisation: turning an execution graph back into a
schedule people can read.

For porf-acyclic executions (always, under sc/tso/pso/ra/rc11) the
events can be ordered consistently with program order and reads-from;
under SC the order can additionally respect coherence and from-reads,
i.e. it is a real interleaving.  Load-buffering executions admit no
such schedule — :func:`linearize` reports that honestly, which is
itself instructive output (the "this cannot be explained by any
interleaving" message hardware bug reports need).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events import Event
from ..graphs import ExecutionGraph
from ..graphs.derived import co, fr, po, rf
from ..relations import union


@dataclass(frozen=True)
class Witness:
    """A linearised execution, or the reason none exists."""

    schedule: tuple[Event, ...] | None
    #: "sc" when the schedule explains the execution as a plain
    #: interleaving, "porf" when it only respects po ∪ rf
    strength: str | None

    @property
    def exists(self) -> bool:
        return self.schedule is not None


def linearize(graph: ExecutionGraph) -> Witness:
    """The strongest schedule the execution admits."""
    events = [e for e in graph.events() if not e.is_initial]
    sc_order = union(po(graph), rf(graph), co(graph), fr(graph))
    try:
        schedule = sc_order.topological_sort(events)
        return Witness(tuple(schedule), "sc")
    except ValueError:
        pass
    porf = union(po(graph), rf(graph))
    try:
        schedule = porf.topological_sort(events)
        return Witness(tuple(schedule), "porf")
    except ValueError:
        return Witness(None, None)


def format_witness(graph: ExecutionGraph, witness: Witness | None = None) -> str:
    """A human-readable schedule (or the no-interleaving message)."""
    witness = witness or linearize(graph)
    if witness.schedule is None:
        return (
            "no interleaving explains this execution: po ∪ rf is cyclic "
            "(a load-buffering behaviour)"
        )
    lines = []
    if witness.strength == "porf":
        lines.append(
            "note: consistent with po ∪ rf only — no SC interleaving "
            "produces these values"
        )
    for step, ev in enumerate(witness.schedule):
        lab = graph.label(ev)
        extra = ""
        if lab.is_read:
            extra = f"   (reads {graph.value_of(ev)} from {graph.rf(ev)!r})"
        lines.append(f"{step:3d}. thread {ev.tid}: {lab!r}{extra}")
    return "\n".join(lines)
