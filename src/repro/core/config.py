"""Exploration options.

The flags mirror the ablations in the evaluation: backward revisits
and the maximality condition can be disabled (experiment A1), and
incremental consistency checking can be turned off (A2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExplorationOptions:
    """Tuning knobs for :class:`repro.core.explorer.Explorer`."""

    #: stop after this many consistent executions (None = exhaustive)
    max_executions: int | None = None
    #: hard safety bound on events per execution graph
    max_events: int = 10_000
    #: hard safety bound on explored complete graphs (None = unlimited)
    max_explored: int | None = None
    #: abort the search at the first assertion failure
    stop_on_error: bool = True
    #: enable backward revisits (disabling loses executions — ablation A1)
    backward_revisits: bool = True
    #: enforce the TruSt maximality condition on deleted events
    #: (disabling multiplies duplicates — ablation A1)
    maximality_check: bool = True
    #: deduplicate complete executions by canonical graph hashing;
    #: None = automatic (off for porf-acyclic models, on otherwise)
    deduplicate: bool | None = None
    #: check model consistency after every event addition instead of
    #: only at completion (ablation A2)
    incremental_checks: bool = True
    #: record every complete execution graph in the result (tests)
    collect_executions: bool = False
    #: re-run all threads after each backward revisit and verify the
    #: kept labels replay identically (cheap, and required for
    #: dependency-prefix revisits; only disable in experiments)
    validate_revisits: bool = True
    #: worker processes for subtree-parallel exploration: None = serial
    #: (unless the ``REPRO_JOBS`` environment variable overrides it),
    #: 0 = one per CPU, N >= 1 = exactly N (1 degenerates to serial)
    jobs: int | None = None
    #: how many subtree tasks to carve out per worker; more tasks give
    #: better load balance at the cost of more coordinator splitting
    oversubscription: int = 4
    #: record one (canonical key, outcome, final state) record per
    #: distinct execution, enabling cross-process merge reconciliation
    #: (set automatically on parallel workers)
    collect_keys: bool = False
    #: wall-clock seconds a parallel subtree task may run before the
    #: coordinator declares it hung, kills the pool workers and retries
    #: it (None = no timeout; serial runs ignore this)
    task_timeout: float | None = None
    #: how many times a failed/crashed/timed-out subtree task is
    #: resubmitted to the pool before the coordinator gives up on the
    #: pool and re-explores that subtree serially itself
    task_retries: int = 2

    def __post_init__(self) -> None:
        if self.max_events <= 0:
            raise ValueError(
                f"max_events must be positive, got {self.max_events}"
            )
        if self.max_executions is not None and self.max_executions < 0:
            raise ValueError(
                f"max_executions must be >= 0 or None, got {self.max_executions}"
            )
        if self.max_explored is not None and self.max_explored < 0:
            raise ValueError(
                f"max_explored must be >= 0 or None, got {self.max_explored}"
            )
        if self.jobs is not None and self.jobs < 0:
            raise ValueError(f"jobs must be >= 0 or None, got {self.jobs}")
        if self.oversubscription < 1:
            raise ValueError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be positive or None, got {self.task_timeout}"
            )
        if self.task_retries < 0:
            raise ValueError(
                f"task_retries must be >= 0, got {self.task_retries}"
            )


def resolve_options(
    options: ExplorationOptions | None,
    overrides: dict,
    **defaults,
) -> ExplorationOptions:
    """Resolve the ``options`` / keyword-override convention every
    option-bearing entry point shares.

    Callers accept either a full :class:`ExplorationOptions` object
    *or* keyword overrides (applied on top of the entry point's
    ``defaults``) — never both.  This helper is the single
    implementation of that rule, so the error message and precedence
    are identical across :func:`repro.verify`,
    :func:`repro.count_executions`, :func:`repro.run_litmus`,
    :func:`repro.compare_models`, :func:`repro.synthesize_fences` and
    :func:`repro.run_suite`.
    """
    if options is None:
        merged = dict(defaults)
        merged.update(overrides)
        return ExplorationOptions(**merged)
    if overrides:
        raise ValueError(
            "pass either options=... or keyword option overrides, not both"
        )
    return options
