"""Serialisation of verification results.

``to_dict``/``to_json`` give a stable machine-readable form of a
:class:`~repro.core.result.VerificationResult` (used by the benchmark
harness and handy for CI pipelines diffing verification outcomes).
"""

from __future__ import annotations

import json

from .result import VerificationResult


def to_dict(result: VerificationResult) -> dict:
    """A JSON-ready dictionary of the result."""
    return {
        "program": result.program,
        "model": result.model,
        "executions": result.executions,
        "blocked": result.blocked,
        "duplicates": result.duplicates,
        "truncated": result.truncated,
        "ok": result.ok,
        "elapsed_seconds": round(result.elapsed, 6),
        "errors": [
            {"message": e.message, "thread": e.thread, "witness": e.witness}
            for e in result.errors
        ],
        "outcomes": [
            {"observation": dict(key), "count": count}
            for key, count in sorted(result.outcomes.items())
        ],
        "final_states": [
            {"state": dict(key), "count": count}
            for key, count in sorted(result.final_states.items())
        ],
        "stats": result.stats.as_dict(),
        "phases": dict(result.phase_times),
    }


def to_json(result: VerificationResult, indent: int | None = 2) -> str:
    return json.dumps(to_dict(result), indent=indent, sort_keys=False)
