"""Serialisation of verification results.

``to_dict``/``to_json`` give a stable machine-readable form of a
:class:`~repro.core.result.VerificationResult` (used by the benchmark
harness and handy for CI pipelines diffing verification outcomes);
``from_dict``/``from_json`` invert them, so results round-trip across
files and process boundaries.  Witness graphs and per-execution
records are deliberately not part of the JSON form (the pretty-printed
witness text is); use pickle when the graphs themselves must travel.
"""

from __future__ import annotations

import json

from collections import Counter

from .result import ErrorReport, Stats, VerificationResult


def to_dict(result: VerificationResult) -> dict:
    """A JSON-ready dictionary of the result."""
    return {
        "program": result.program,
        "model": result.model,
        "executions": result.executions,
        "blocked": result.blocked,
        "duplicates": result.duplicates,
        "truncated": result.truncated,
        "ok": result.ok,
        "elapsed_seconds": round(result.elapsed, 6),
        "errors": [
            {"message": e.message, "thread": e.thread, "witness": e.witness}
            for e in result.errors
        ],
        "outcomes": [
            {"observation": dict(key), "count": count}
            for key, count in sorted(result.outcomes.items())
        ],
        "final_states": [
            {"state": dict(key), "count": count}
            for key, count in sorted(result.final_states.items())
        ],
        "stats": result.stats.as_dict(),
        "phases": dict(result.phase_times),
        "meta": dict(result.meta),
    }


def to_json(result: VerificationResult, indent: int | None = 2) -> str:
    return json.dumps(to_dict(result), indent=indent, sort_keys=False)


def from_dict(data: dict) -> VerificationResult:
    """Rebuild a :class:`VerificationResult` from its ``to_dict`` form.

    The inverse of :func:`to_dict` up to the fields the JSON form
    carries: witness graphs and execution records do not round-trip
    (witness *text* does).
    """
    result = VerificationResult(
        program=data["program"],
        model=data["model"],
        executions=data.get("executions", 0),
        blocked=data.get("blocked", 0),
        duplicates=data.get("duplicates", 0),
        truncated=bool(data.get("truncated", False)),
        elapsed=float(data.get("elapsed_seconds", 0.0)),
    )
    result.errors = [
        ErrorReport(
            message=err["message"],
            thread=err["thread"],
            witness=err.get("witness", ""),
        )
        for err in data.get("errors", [])
    ]
    result.outcomes = Counter(
        {
            tuple(sorted(entry["observation"].items())): entry["count"]
            for entry in data.get("outcomes", [])
        }
    )
    result.final_states = Counter(
        {
            tuple(sorted(entry["state"].items())): entry["count"]
            for entry in data.get("final_states", [])
        }
    )
    known = set(vars(Stats()))
    result.stats = Stats(
        **{k: v for k, v in data.get("stats", {}).items() if k in known}
    )
    result.phase_times = {
        name: dict(stat) for name, stat in data.get("phases", {}).items()
    }
    result.meta = dict(data.get("meta", {}))
    return result


def from_json(text: str) -> VerificationResult:
    return from_dict(json.loads(text))
