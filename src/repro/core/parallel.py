"""Parallel subtree exploration: work-sharding over a process pool.

HMC's search is a pure function of the execution graph: once the DFS
branches (over rf sources, co positions, or backward revisits), the
branches share no mutable state, so disjoint subtrees can be explored
by separate worker processes and the per-subtree
:class:`~repro.core.result.VerificationResult`\\ s merged afterwards.
CPython's GIL makes threads useless for this CPU-bound search, hence
``multiprocessing``: task descriptors and results cross the process
boundary by pickling.

The engine has three phases:

1. **Split** — the coordinator expands the DFS root breadth-first,
   re-splitting the shallowest branch points until at least
   ``jobs × oversubscription`` independent subtree prefixes exist (or
   the whole search completes during splitting, in which case no pool
   is spawned at all).  Completions, blocked graphs and errors hit
   while splitting are recorded in the coordinator's partial result.
2. **Dispatch** — each prefix becomes a pickled
   ``(program, model, options, prefix graph)`` task; workers resume the
   DFS from the prefix (``Explorer(root=...)``) with per-worker dedup
   and revisit-memoisation state, and tracing (when enabled) to a
   per-worker JSONL file.
3. **Merge** — worker results are combined in deterministic task order
   with :meth:`VerificationResult.merge`.  Executions are reconciled by
   canonical key (a graph completed in two subtrees counts once, with
   the re-discovery reported as a duplicate), counters are summed, and
   worker trace records are folded back into the coordinator's trace so
   ``repro trace-summary`` still reconciles.

``stop_on_error`` is propagated by cancelling outstanding tasks as
soon as any worker reports an assertion failure.

Determinism guarantee (see docs/PARALLEL.md): for exhaustive searches
(no ``max_executions``/``max_explored``, deduplication on) the merged
``executions``, ``outcomes`` and ``final_states`` are identical to the
serial run's, because the subtree prefixes partition the serial DFS
tree and completions are deduplicated by the same canonical key serial
exploration uses.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import replace

from ..graphs import ExecutionGraph
from ..lang import Program
from ..models import MemoryModel, get_model
from ..obs import NULL_OBSERVER, FileSink, read_trace
from .config import ExplorationOptions
from .explorer import Explorer, _SearchLimit, effective_jobs
from .result import VerificationResult, merge_phase_times

#: a pickled unit of work: (task index, program, model name, options,
#: subtree prefix graph, worker trace path or None)
SubtreeTask = tuple[int, Program, str, ExplorationOptions, ExecutionGraph, "str | None"]


def split_frontier(
    program: Program,
    model: MemoryModel | str,
    options: ExplorationOptions,
    target: int,
    observer=NULL_OBSERVER,
) -> tuple[list[ExecutionGraph], VerificationResult, bool]:
    """Expand the DFS root into ``>= target`` independent subtrees.

    Branch points are expanded breadth-first (shallowest first), so the
    returned prefixes are as close to the root frontier as the branching
    structure allows; a prefix that branches again is re-split until the
    target is met or the frontier drains.  Returns the remaining
    frontier, the partial result accumulated while splitting (graphs
    that completed before the target was reached), and whether the
    search aborted during splitting (stop-on-error or a search limit).
    """
    coordinator = Explorer(program, model, options, observer=observer)
    frontier: deque[ExecutionGraph] = deque(
        [ExecutionGraph(program.location_bases())]
    )
    aborted = False
    coordinator.model.set_observer(observer)
    try:
        while frontier and len(frontier) < target:
            graph = frontier.popleft()
            while True:
                successors = coordinator._step(graph)
                if successors is None:
                    break
                if len(successors) == 1:
                    graph = successors[0]
                    continue
                frontier.extend(successors)
                break
    except _SearchLimit:
        coordinator.result.truncated = True
        aborted = True
    finally:
        coordinator.model.set_observer(NULL_OBSERVER)
    return list(frontier), coordinator.result, aborted


def _run_subtree(task: SubtreeTask) -> tuple[int, VerificationResult]:
    """Worker entry point: explore one subtree prefix to exhaustion."""
    index, program, model_name, options, prefix, trace_path = task
    observer = NULL_OBSERVER
    if trace_path is not None:
        from ..obs import Observer

        observer = Observer.to_file(trace_path)
    try:
        result = Explorer(
            program, model_name, options, observer=observer, root=prefix
        ).run()
    finally:
        observer.close()
    return index, result


def _worker_trace_base(observer) -> str | None:
    """The coordinator's trace file path, when it traces to a file."""
    trace = getattr(observer, "trace", None)
    if trace is not None and isinstance(trace.sink, FileSink):
        return trace.sink.path
    return None


def verify_parallel(
    program: Program,
    model: MemoryModel | str = "sc",
    options: ExplorationOptions | None = None,
    observer=NULL_OBSERVER,
    jobs: int | None = None,
) -> VerificationResult:
    """Verify ``program`` by sharding the search over worker processes.

    ``jobs`` defaults to the resolution of ``options.jobs`` /
    ``REPRO_JOBS`` (0 means one worker per CPU).  Falls back to the
    serial explorer when only one job is requested.
    """
    options = options or ExplorationOptions()
    model = get_model(model) if isinstance(model, str) else model
    if jobs is None:
        jobs = effective_jobs(options)
    elif jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs <= 1:
        return Explorer(program, model, options, observer=observer).run()
    start = time.perf_counter()
    obs = observer
    if obs.trace_enabled:
        obs.emit(
            "run_start",
            program=program.name,
            model=model.name,
            threads=program.num_threads,
            jobs=jobs,
        )
    target = jobs * options.oversubscription
    # workers (and the splitting coordinator) record per-execution
    # canonical keys so the merge can reconcile cross-worker duplicates
    shard_options = replace(options, collect_keys=True, jobs=None)
    frontier, merged, aborted = split_frontier(
        program, model, shard_options, target, observer=obs
    )
    trace_base = _worker_trace_base(obs)
    tasks: list[SubtreeTask] = []
    if not aborted:
        tasks = [
            (
                index,
                program,
                model.name,
                shard_options,
                prefix,
                None
                if trace_base is None
                else f"{trace_base}.worker{index}",
            )
            for index, prefix in enumerate(frontier)
        ]
    worker_results: dict[int, VerificationResult] = {}
    cancelled = 0
    if tasks:
        if obs.trace_enabled:
            obs.emit("parallel_dispatch", tasks=len(tasks), jobs=jobs)
        pool = multiprocessing.get_context().Pool(
            processes=min(jobs, len(tasks))
        )
        try:
            stop = False
            for index, result in pool.imap_unordered(_run_subtree, tasks):
                worker_results[index] = result
                if options.stop_on_error and result.errors:
                    stop = True
                    break
            if stop:
                cancelled = len(tasks) - len(worker_results)
                pool.terminate()
            else:
                pool.close()
        except BaseException:
            pool.terminate()
            raise
        finally:
            pool.join()
    for index in sorted(worker_results):
        merged = merged.merge(worker_results[index])
    if trace_base is not None:
        _fold_worker_traces(
            obs, [(t[0], t[5]) for t in tasks if t[0] in worker_results]
        )
    merged.elapsed = time.perf_counter() - start
    merged.truncated = merged.truncated or cancelled > 0
    merged.meta.update(
        {
            "jobs": jobs,
            "tasks": len(tasks),
            "tasks_cancelled": cancelled,
            "oversubscription": options.oversubscription,
        }
    )
    if not options.collect_keys:
        merged.execution_records = []
    if obs.enabled:
        merged.phase_times = merge_phase_times(
            merged.phase_times, obs.phase_report()
        )
        obs.emit(
            "run_end",
            executions=merged.executions,
            blocked=merged.blocked,
            duplicates=merged.duplicates,
            errors=len(merged.errors),
            truncated=merged.truncated,
            elapsed=round(merged.elapsed, 6),
            stats=merged.stats.as_dict(),
            phases=merged.phase_times,
            jobs=jobs,
            tasks=len(tasks),
        )
        obs.finish(executions=merged.executions, blocked=merged.blocked)
    return merged


def _fold_worker_traces(observer, indexed_paths: list[tuple[int, str]]) -> None:
    """Re-emit each worker's trace records into the coordinator trace.

    Records keep their type and fields, gain a ``worker`` index, and are
    re-stamped with the coordinator's ``seq``/``ts`` (per-worker files
    stay on disk for debugging).  ``trace_start`` records are skipped so
    the merged file has a single header.
    """
    for index, path in sorted(indexed_paths):
        try:
            records = read_trace(path)
        except (OSError, ValueError):
            continue  # a cancelled worker may have left nothing behind
        for record in records:
            type_ = record.pop("t")
            if type_ == "trace_start":
                continue
            record.pop("seq", None)
            record.pop("ts", None)
            observer.emit(type_, worker=index, **record)
