"""Parallel subtree exploration: fault-tolerant work-sharding over a
process pool.

HMC's search is a pure function of the execution graph: once the DFS
branches (over rf sources, co positions, or backward revisits), the
branches share no mutable state, so disjoint subtrees can be explored
by separate worker processes and the per-subtree
:class:`~repro.core.result.VerificationResult`\\ s merged afterwards.
CPython's GIL makes threads useless for this CPU-bound search, hence
``multiprocessing``: task descriptors and results cross the process
boundary by pickling.

The engine has three phases:

1. **Split** — the coordinator expands the DFS root breadth-first,
   re-splitting the shallowest branch points until at least
   ``jobs × oversubscription`` independent subtree prefixes exist (or
   the whole search completes during splitting, in which case no pool
   is spawned at all).  Completions, blocked graphs and errors hit
   while splitting are recorded in the coordinator's partial result.
2. **Dispatch** — each prefix becomes a pickled
   ``(index, attempt, program, model, options, prefix graph, trace
   path)`` task; workers resume the DFS from the prefix
   (``Explorer(root=...)``) with per-worker dedup and
   revisit-memoisation state, and tracing (when enabled) to a
   per-worker JSONL file.  Dispatch is supervised: every task is an
   ``apply_async`` handle the coordinator polls, so a worker that
   raises, is killed (SIGKILL), or hangs past
   ``ExplorationOptions.task_timeout`` is detected, the task is
   retried up to ``task_retries`` times, and a task that keeps failing
   is re-explored *serially in the coordinator* — the run still
   returns a complete, deterministic result instead of raising or
   wedging.
3. **Merge** — worker results are combined in deterministic task order
   with :meth:`VerificationResult.merge`.  Executions are reconciled by
   canonical key (a graph completed in two subtrees counts once, with
   the re-discovery reported as a duplicate), counters are summed, and
   worker trace records are folded back into the coordinator's trace so
   ``repro trace-summary`` still reconciles.

``max_executions``/``max_explored`` hold for the **merged** result: the
coordinator charges the split phase against a :class:`GlobalBudget`
(shared ``multiprocessing`` counters) and every worker draws execution
/explored units from the same budget, stopping early once it drains.
``truncated`` is set exactly when a limit actually bit somewhere.

``stop_on_error`` is propagated by cancelling outstanding tasks as
soon as any worker reports an assertion failure.

Determinism guarantee (see docs/PARALLEL.md): for exhaustive searches
(no ``max_executions``/``max_explored``, deduplication on) the merged
``executions``, ``outcomes`` and ``final_states`` are identical to the
serial run's, because the subtree prefixes partition the serial DFS
tree and completions are deduplicated by the same canonical key serial
exploration uses.  Retries and serial fallback preserve this: subtree
tasks are pure functions, so re-running one yields the identical
sub-result.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field, replace

from ..graphs import ExecutionGraph
from ..lang import Program
from ..models import MemoryModel, get_model
from ..obs import NULL_OBSERVER, FileSink, Observer, read_trace_prefix
from ..obs.spans import NULL_TRACER, SpanTracer
from ..obs.profile import activation as _profile_activation
from .config import ExplorationOptions
from .explorer import Explorer, _SearchLimit, effective_jobs
from .result import VerificationResult, merge_phase_times

#: a pickled unit of work: (task index, attempt number, program, model
#: spec, options, subtree prefix graph, worker trace path or None,
#: collect-metrics flag, span context or None).  The model spec is the
#: registry name for registered models, and the pickled model object
#: itself otherwise (e.g. a CatModel loaded from a ``.cat`` file) —
#: workers hand either form to the Explorer.  When the collect-metrics
#: flag is set the worker runs observed (even without tracing) and
#: returns a picklable metrics snapshot for the coordinator to fold
#: back.  The span context is the coordinator's propagation token
#: (``{"trace_id", "span_id"}``, see :mod:`repro.obs.spans`): when
#: present the worker records spans for its subtree under that parent
#: and returns them alongside the snapshot.
SubtreeTask = tuple[
    int,
    int,
    Program,
    "str | MemoryModel",
    ExplorationOptions,
    ExecutionGraph,
    "str | None",
    bool,
    "dict | None",
]


def _model_spec(model: MemoryModel) -> "str | MemoryModel":
    """What to ship to workers for ``model``: its name when the
    registry resolves that name back to this very model (cheap, and
    robust under any multiprocessing start method), else the model
    object itself, which must then be picklable (CatModel is)."""
    try:
        registered = get_model(model.name)
    except KeyError:
        return model
    return model.name if registered is model else model

#: test-only fault injection hook (see ``_maybe_inject_fault``)
FAULT_ENV = "REPRO_FAULT_INJECT"

#: seconds between coordinator supervision polls
_POLL_INTERVAL = 0.01


class GlobalBudget:
    """Cross-process ``max_executions``/``max_explored`` budget.

    Workers (and the coordinator's serial-fallback explorer) draw units
    from shared counters before recording an execution or a duplicate,
    so the limits hold for the *merged* result instead of being applied
    per worker.  ``limit_hit`` latches once a limit actually bites and
    doubles as the workers' early-stop signal.

    The shared state must be created before the pool (workers receive
    it through the pool initializer) and from the same multiprocessing
    context.
    """

    def __init__(
        self,
        max_executions: int | None = None,
        max_explored: int | None = None,
        executions_used: int = 0,
        explored_used: int = 0,
        ctx=None,
    ) -> None:
        ctx = ctx if ctx is not None else multiprocessing.get_context()
        self.max_executions = max_executions
        self.max_explored = max_explored
        self._lock = ctx.Lock()
        self._executions = (
            None
            if max_executions is None
            else ctx.Value("q", executions_used, lock=False)
        )
        self._explored = (
            None
            if max_explored is None
            else ctx.Value("q", explored_used, lock=False)
        )
        hit = (
            max_executions is not None and executions_used >= max_executions
        ) or (max_explored is not None and explored_used >= max_explored)
        self._limit_hit = ctx.Value("b", int(hit), lock=False)

    @property
    def limit_hit(self) -> bool:
        """A limit has bitten somewhere (lock-free read)."""
        return bool(self._limit_hit.value)

    def take_execution(self) -> bool:
        """Draw one execution unit; False when the budget is drained."""
        if self._executions is None:
            return True
        with self._lock:
            n = self._executions.value
            if n >= self.max_executions:
                self._limit_hit.value = 1
                return False
            self._executions.value = n + 1
            if n + 1 >= self.max_executions:
                self._limit_hit.value = 1
            return True

    def take_explored(self) -> bool:
        """Draw one explored-graph unit; False when drained."""
        if self._explored is None:
            return True
        with self._lock:
            n = self._explored.value
            if n >= self.max_explored:
                self._limit_hit.value = 1
                return False
            self._explored.value = n + 1
            if n + 1 >= self.max_explored:
                self._limit_hit.value = 1
            return True

    def snapshot(self) -> dict:
        """Current consumption, for ``result.meta`` accounting."""
        out: dict = {}
        if self._executions is not None:
            out["budget_executions"] = self._executions.value
        if self._explored is not None:
            out["budget_explored"] = self._explored.value
        return out


def split_frontier(
    program: Program,
    model: MemoryModel | str,
    options: ExplorationOptions,
    target: int,
    observer=NULL_OBSERVER,
) -> tuple[list[ExecutionGraph], VerificationResult, bool]:
    """Expand the DFS root into ``>= target`` independent subtrees.

    Branch points are expanded breadth-first (shallowest first), so the
    returned prefixes are as close to the root frontier as the branching
    structure allows; a prefix that branches again is re-split until the
    target is met or the frontier drains.  Returns the remaining
    frontier, the partial result accumulated while splitting (graphs
    that completed before the target was reached), and whether the
    search aborted during splitting (stop-on-error or a search limit).
    """
    coordinator = Explorer(program, model, options, observer=observer)
    frontier: deque[ExecutionGraph] = deque(
        [ExecutionGraph(program.location_bases())]
    )
    aborted = False
    coordinator.model.set_observer(observer)
    try:
        # _step bypasses Explorer.run(), so the profile hook used by the
        # observer-less hot paths (graph_cached memoisation) is armed here
        with _profile_activation(observer):
            while frontier and len(frontier) < target:
                graph = frontier.popleft()
                while True:
                    successors = coordinator._step(graph)
                    if successors is None:
                        break
                    if len(successors) == 1:
                        graph = successors[0]
                        continue
                    frontier.extend(successors)
                    break
    except _SearchLimit:
        coordinator.result.truncated = True
        aborted = True
    finally:
        coordinator.model.set_observer(NULL_OBSERVER)
    return list(frontier), coordinator.result, aborted


# -- worker side -----------------------------------------------------------

#: the shared budget, installed per worker by the pool initializer
#: (shared ctypes cannot ride along inside pickled task tuples)
_WORKER_BUDGET: GlobalBudget | None = None


def _init_worker(budget: GlobalBudget | None) -> None:
    global _WORKER_BUDGET
    _WORKER_BUDGET = budget


def _maybe_inject_fault(index: int, attempt: int) -> None:
    """Test-only fault injection, driven by ``REPRO_FAULT_INJECT``.

    The value is ``kind[:tasks[:marker]]`` where ``kind`` is ``crash``
    (SIGKILL self), ``hang`` (sleep forever) or ``raise``; ``tasks`` is
    a comma-separated list of task indices (empty = any task); and
    ``marker`` is a path created *before* faulting so the fault fires
    only once — leave it empty to fault on every attempt (exercising
    the serial-fallback path).  Used by the fault-tolerance tests and
    the CI fault-injection smoke leg; ignored in normal operation.
    """
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    parts = spec.split(":", 2)
    kind = parts[0]
    targets = parts[1] if len(parts) > 1 else ""
    marker = parts[2] if len(parts) > 2 else ""
    if targets and str(index) not in targets.split(","):
        return
    if marker:
        if os.path.exists(marker):
            return
        with open(marker, "w") as handle:
            handle.write(f"task {index} attempt {attempt}\n")
    if kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "hang":
        time.sleep(3600)
    elif kind == "raise":
        raise RuntimeError(f"injected fault in task {index}")


def _run_subtree(
    task: SubtreeTask,
) -> tuple[int, int, VerificationResult, "dict | None", "list | None"]:
    """Worker entry point: explore one subtree prefix to exhaustion.

    Returns ``(index, attempt, result, metrics snapshot, spans)`` —
    the snapshot is a plain picklable dict (or None when the
    coordinator runs unobserved) the coordinator merges into its own
    registry, so worker-side counters/histograms survive the process
    boundary; ``spans`` (or None when untraced) are this subtree's
    finished span records, folded back with ``tracer.absorb`` so one
    trace_id covers coordinator and workers.
    """
    index, attempt, program, model_spec, options, prefix, trace_path, \
        collect_metrics, span_ctx = task
    _maybe_inject_fault(index, attempt)
    tracer = NULL_TRACER
    if span_ctx is not None:
        tracer = SpanTracer(
            trace_id=span_ctx["trace_id"],
            remote_parent=span_ctx["span_id"],
        )
    observer = NULL_OBSERVER
    if trace_path is not None:
        observer = Observer.to_file(trace_path)
        if tracer.enabled:
            observer.tracer = tracer
            observer.metrics.tracer = tracer
    elif collect_metrics or tracer.enabled:
        observer = Observer(tracer=tracer)
    try:
        with tracer.span(
            f"subtree:{index}", cat="worker", task=index, attempt=attempt
        ):
            result = Explorer(
                program,
                model_spec,
                options,
                observer=observer,
                root=prefix,
                budget=_WORKER_BUDGET,
            ).run()
    finally:
        observer.close()
    snapshot = observer.metrics_snapshot() if collect_metrics else None
    spans = tracer.snapshot() if tracer.enabled else None
    return index, attempt, result, snapshot, spans


# -- coordinator side ------------------------------------------------------


def _worker_trace_base(observer) -> str | None:
    """The coordinator's trace file path, when it traces to a file."""
    trace = getattr(observer, "trace", None)
    if trace is not None and isinstance(trace.sink, FileSink):
        return trace.sink.path
    return None


def _trace_path(base: str | None, index: int, attempt: int) -> str | None:
    """Per-attempt worker trace path (retries must not clobber the
    evidence a failed attempt left behind)."""
    if base is None:
        return None
    if attempt == 0:
        return f"{base}.worker{index}"
    return f"{base}.worker{index}.retry{attempt}"


@dataclass
class _TaskState:
    """Coordinator-side bookkeeping for one supervised pool task."""

    index: int
    #: attempts submitted so far (the next attempt number)
    attempts: int = 0
    #: failures observed (exception, lost worker, timeout)
    failures: int = 0
    #: live AsyncResult handles; more than one after a lost-worker
    #: resubmission (first completion wins, stale handles are ignored)
    handles: list = field(default_factory=list)
    deadline: float | None = None


def _live_pids(pool) -> "frozenset[int] | None":
    """The pool's current worker pids (None when not introspectable)."""
    procs = getattr(pool, "_pool", None)
    if procs is None:
        return None
    try:
        return frozenset(p.pid for p in procs if p.is_alive())
    except Exception:  # pragma: no cover - defensive
        return None


def _settled_pids(pool, processes: int, wait: float = 1.0):
    """Worker pids once the pool has replaced any dead workers (bounded
    wait; a worker that keeps dying just yields the current set)."""
    end = time.monotonic() + wait
    while time.monotonic() < end:
        pids = _live_pids(pool)
        if pids is None:
            return None
        if len(pids) == processes:
            return pids
        time.sleep(0.005)
    return _live_pids(pool)


class PoolSupervisor:
    """Reusable supervised process-pool engine: AsyncResult-based
    dispatch with crash/hang detection, bounded retries, and a serial
    fallback list.

    Both the subtree-parallel explorer (:func:`verify_parallel`) and
    the batch suite engine (:mod:`repro.suite`) run their work through
    one of these, so the PR-3 fault semantics — timeout, retry, budget,
    graceful degradation — hold identically for a single sharded
    verification and for an N-task suite sharing one pool.

    Work is described, not owned: callers pass a picklable worker
    function plus a mapping ``index -> payload factory``; the factory
    is called with the attempt number so retries can build fresh
    payloads (e.g. per-attempt trace paths).  Completed values are
    handed to ``on_result(index, value)``, which returns True to stop
    dispatch (stop-on-error); the supervisor stores no results itself.

    Every task is an ``apply_async`` handle polled by the coordinator,
    so the three failure modes a bare pool is blind to become
    recoverable events —

    * a worker that **raises** surfaces through ``AsyncResult.get`` and
      the task is resubmitted;
    * a worker that is **killed** (OOM, SIGKILL) is noticed via the
      pool's worker pids changing; its task's result would never
      arrive, so all outstanding tasks are resubmitted (they must be
      pure — duplicates are ignored, first completion per index wins);
    * a worker that **hangs** past ``task_timeout`` is detected by
      deadline; the pool is torn down (the only way to reclaim the
      wedged slot) and rebuilt, and the outstanding tasks resubmitted.

    A task failing more than ``task_retries`` times lands on
    :attr:`fallback` for the caller to re-run serially in-process.

    With ``persistent=True`` the pool outlives :meth:`run`: workers
    stay warm across calls (the verification service drives every job
    through one such supervisor), per-run state (``acct``,
    ``fallback``, ``stopped``) is reset at the start of each call, and
    the caller owns the lifetime via :meth:`close`.  A run that stopped
    early still rebuilds the pool — cancelled tasks keep running in
    the workers and teardown is the only way to reclaim the slots.
    """

    def __init__(
        self,
        ctx,
        processes: int,
        *,
        task_timeout: float | None = None,
        task_retries: int = 2,
        initializer=None,
        initargs: tuple = (),
        observer=NULL_OBSERVER,
        persistent: bool = False,
    ) -> None:
        self.ctx = ctx
        self.processes = processes
        self.task_timeout = task_timeout
        self.task_retries = task_retries
        self.initializer = initializer
        self.initargs = initargs
        self.obs = observer
        self.persistent = persistent
        #: task indices whose retries were exhausted (caller re-runs
        #: these serially); cleared when the run stopped early instead
        self.fallback: list[int] = []
        self.stopped = False
        self.cancelled = 0
        self.acct = {
            "tasks_failed": 0,
            "tasks_retried": 0,
            "tasks_timeout": 0,
            "workers_lost": 0,
        }
        self.states: dict[int, _TaskState] = {}
        self.pool = None
        self._known_pids = None
        self._fn = None
        self._payloads: dict = {}
        self._on_result = None

    # -- pool lifecycle ---------------------------------------------------

    def _new_pool(self):
        self.pool = self.ctx.Pool(
            processes=self.processes,
            initializer=self.initializer,
            initargs=self.initargs,
        )
        self._known_pids = _settled_pids(self.pool, self.processes)

    def _teardown_pool(self) -> None:
        if self.pool is not None:
            self.pool.terminate()
            self.pool.join()
            self.pool = None

    # -- submission -------------------------------------------------------

    def _submit(self, state: _TaskState) -> None:
        attempt = state.attempts
        payload = self._payloads[state.index](attempt)
        state.handles.append(self.pool.apply_async(self._fn, (payload,)))
        state.attempts = attempt + 1
        state.deadline = (
            None
            if self.task_timeout is None
            else time.monotonic() + self.task_timeout
        )

    def _retry_or_fallback(self, state: _TaskState, outstanding: set) -> None:
        """After a failure was charged: resubmit, or escalate to the
        caller's serial fallback once retries are exhausted."""
        if state.failures > self.task_retries:
            outstanding.discard(state.index)
            self.fallback.append(state.index)
            return
        self.acct["tasks_retried"] += 1
        if self.obs.trace_enabled:
            self.obs.emit(
                "task_retried", task=state.index, attempt=state.attempts
            )
        self._submit(state)

    # -- the supervision loop --------------------------------------------

    def run(self, fn, payloads: dict, on_result) -> None:
        """Dispatch every payload through one pool and supervise it.

        ``fn`` is the picklable worker entry point, called as
        ``fn(payloads[index](attempt))``; ``on_result(index, value)``
        consumes each first-completed value and returns True to cancel
        the remaining tasks.
        """
        self._fn = fn
        self._payloads = dict(payloads)
        self._on_result = on_result
        self.states = {i: _TaskState(index=i) for i in self._payloads}
        self.fallback = []
        self.stopped = False
        self.cancelled = 0
        self.acct = {
            "tasks_failed": 0,
            "tasks_retried": 0,
            "tasks_timeout": 0,
            "workers_lost": 0,
        }
        outstanding = set(self.states)
        if self.pool is None:
            self._new_pool()
        try:
            for index in sorted(outstanding):
                self._submit(self.states[index])
            while outstanding and not self.stopped:
                progressed = self._collect(outstanding)
                if self.stopped or not outstanding:
                    break
                self._check_timeouts(outstanding)
                self._check_workers(outstanding)
                if not progressed:
                    time.sleep(_POLL_INTERVAL)
        finally:
            # stale duplicate attempts may still be running; never wait.
            # A persistent pool survives a clean run, but a stopped run
            # leaves cancelled tasks occupying worker slots — rebuild.
            if not self.persistent or self.stopped:
                self._teardown_pool()
        self.cancelled = len(outstanding) if self.stopped else 0
        if self.stopped:
            self.fallback = []

    def close(self) -> None:
        """Tear the pool down (persistent supervisors only need this)."""
        self._teardown_pool()

    def _collect(self, outstanding: set) -> bool:
        """Harvest ready handles; returns whether anything completed."""
        progressed = False
        for index in sorted(outstanding):
            state = self.states[index]
            done = next((h for h in state.handles if h.ready()), None)
            if done is None:
                continue
            progressed = True
            try:
                value = done.get()
            except BaseException as exc:
                state.handles.remove(done)
                state.failures += 1
                self.acct["tasks_failed"] += 1
                if self.obs.trace_enabled:
                    self.obs.emit(
                        "task_failed",
                        task=index,
                        reason="exception",
                        error=repr(exc),
                    )
                self._retry_or_fallback(state, outstanding)
                continue
            outstanding.discard(index)
            if self._on_result(index, value):
                self.stopped = True
                return True
        return progressed

    def _check_timeouts(self, outstanding: set) -> None:
        """Kill and rebuild the pool when a task overruns its deadline
        (a wedged worker can only be reclaimed by pool teardown)."""
        now = time.monotonic()
        timed_out = [
            i
            for i in sorted(outstanding)
            if self.states[i].deadline is not None
            and now >= self.states[i].deadline
        ]
        if not timed_out:
            return
        for index in timed_out:
            state = self.states[index]
            state.failures += 1
            self.acct["tasks_timeout"] += 1
            if self.obs.trace_enabled:
                self.obs.emit(
                    "task_timeout",
                    task=index,
                    attempt=state.attempts - 1,
                    timeout=self.task_timeout,
                )
            if state.failures > self.task_retries:
                outstanding.discard(index)
                self.fallback.append(index)
        # terminate() reclaims the hung slot but also kills the innocent
        # in-flight attempts, so every outstanding task is resubmitted
        # (without a failure charge for the innocents)
        self._teardown_pool()
        for index in outstanding:
            self.states[index].handles.clear()
        self._new_pool()
        for index in sorted(outstanding):
            state = self.states[index]
            if index in timed_out:
                self.acct["tasks_retried"] += 1
                if self.obs.trace_enabled:
                    self.obs.emit(
                        "task_retried", task=index, attempt=state.attempts
                    )
            self._submit(state)

    def _check_workers(self, outstanding: set) -> None:
        """Detect killed workers via the pool's pid set changing.

        The pool replaces a dead worker transparently but the task it
        was running would never report back; which task that was is not
        observable, so every outstanding task is charged one failure
        and resubmitted (tasks must be pure — the duplicate attempt of
        a task that was actually fine is harmless, its first completion
        wins).
        """
        current = _live_pids(self.pool)
        if current is None or self._known_pids is None:
            return
        if current == self._known_pids:
            return
        self.acct["workers_lost"] += max(
            1, len(self._known_pids - current)
        )
        self.acct["tasks_failed"] += 1
        if self.obs.trace_enabled:
            self.obs.emit(
                "task_failed",
                reason="worker_lost",
                outstanding=sorted(outstanding),
            )
        for index in sorted(outstanding):
            state = self.states[index]
            state.failures += 1
            self._retry_or_fallback(state, outstanding)
        self._known_pids = _settled_pids(self.pool, self.processes)


def verify_parallel(
    program: Program,
    model: MemoryModel | str = "sc",
    options: ExplorationOptions | None = None,
    observer=NULL_OBSERVER,
    jobs: int | None = None,
) -> VerificationResult:
    """Verify ``program`` by sharding the search over worker processes.

    ``jobs`` defaults to the resolution of ``options.jobs`` /
    ``REPRO_JOBS`` (0 means one worker per CPU).  Falls back to the
    serial explorer when only one job is requested.

    Fault tolerance (see docs/PARALLEL.md): crashed, killed or hung
    workers are detected, their tasks retried up to
    ``options.task_retries`` times and finally re-explored serially in
    the coordinator, so the merged result is complete even under
    worker faults.  ``max_executions``/``max_explored`` are enforced
    globally through a shared :class:`GlobalBudget`.  The returned
    result keeps its ``execution_records`` (it is ``keyed``) so it can
    be merged again safely; the public :func:`repro.core.verify` entry
    point strips them at the API boundary.
    """
    options = options or ExplorationOptions()
    model = get_model(model) if isinstance(model, str) else model
    if jobs is None:
        jobs = effective_jobs(options)
    elif jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs <= 1:
        return Explorer(program, model, options, observer=observer).run()
    start = time.perf_counter()
    obs = observer
    if obs.trace_enabled:
        obs.emit(
            "run_start",
            program=program.name,
            model=model.name,
            threads=program.num_threads,
            jobs=jobs,
        )
    target = jobs * options.oversubscription
    # workers (and the splitting coordinator) record per-execution
    # canonical keys so the merge can reconcile cross-worker duplicates
    split_options = replace(options, collect_keys=True, jobs=None)
    frontier, merged, aborted = split_frontier(
        program, model, split_options, target, observer=obs
    )
    ctx = multiprocessing.get_context()
    budget = None
    if options.max_executions is not None or options.max_explored is not None:
        # charge what the split phase already consumed; workers share
        # the remainder
        budget = GlobalBudget(
            options.max_executions,
            options.max_explored,
            executions_used=merged.executions,
            explored_used=merged.explored,
            ctx=ctx,
        )
    # workers draw from the global budget instead of each applying the
    # whole limit locally (the PR-2 engine overshot by tasks × limit)
    worker_options = replace(
        split_options, max_executions=None, max_explored=None
    )
    trace_base = _worker_trace_base(obs)
    supervisor = None
    cancelled = 0
    worker_results: dict[int, VerificationResult] = {}
    snapshots: dict[int, dict] = {}
    winning_paths: dict[int, str] = {}
    if not aborted and frontier:
        if obs.trace_enabled:
            obs.emit("parallel_dispatch", tasks=len(frontier), jobs=jobs)
        supervisor = PoolSupervisor(
            ctx,
            processes=min(jobs, len(frontier)),
            task_timeout=options.task_timeout,
            task_retries=options.task_retries,
            initializer=_init_worker,
            initargs=(budget,),
            observer=obs,
        )
        collect_metrics = obs.enabled
        model_spec = _model_spec(model)
        # the propagation token workers parent their subtree spans on;
        # None (no tracer) keeps the task payload span-free.  With a
        # tracer but no active span the workers still join the trace,
        # their subtree spans becoming roots of it.
        span_ctx = None
        if obs.tracer.enabled:
            span_ctx = obs.tracer.current_context() or {
                "trace_id": obs.tracer.trace_id,
                "span_id": None,
            }

        def _payload(index: int, prefix: ExecutionGraph):
            def make(attempt: int) -> SubtreeTask:
                return (
                    index,
                    attempt,
                    program,
                    model_spec,
                    worker_options,
                    prefix,
                    _trace_path(trace_base, index, attempt),
                    collect_metrics,
                    span_ctx,
                )

            return make

        def _on_result(index: int, value) -> bool:
            _, attempt, result, snapshot, spans = value
            worker_results[index] = result
            if snapshot is not None:
                snapshots[index] = snapshot
            if spans:
                obs.tracer.absorb(spans)
            path = _trace_path(trace_base, index, attempt)
            if path is not None:
                winning_paths[index] = path
            return bool(options.stop_on_error and result.errors)

        supervisor.run(
            _run_subtree,
            {i: _payload(i, p) for i, p in enumerate(frontier)},
            _on_result,
        )
        cancelled = supervisor.cancelled
        # graceful degradation: subtrees whose tasks kept failing are
        # re-explored serially right here, so the run still returns a
        # complete deterministic result
        for position, index in enumerate(supervisor.fallback):
            if obs.trace_enabled:
                obs.emit("task_fallback", task=index)
            # the fallback explorer gets its *own* registry (not the
            # coordinator's): its result.phase_times must cover only
            # this subtree, and VerificationResult.merge folds them in
            # — sharing the coordinator registry would double-count.
            # Counters/histograms travel by snapshot, like a worker's.
            fb_obs = NULL_OBSERVER
            if obs.enabled:
                # the coordinator's tracer is shared (spans are append-
                # only, unlike phase timers, so no double-count risk):
                # the fallback subtree's phases land on the same trace
                fb_obs = Observer(
                    trace=obs.trace if obs.trace_enabled else None,
                    tracer=obs.tracer if obs.tracer.enabled else None,
                )
            with obs.tracer.span(
                f"subtree:{index}", cat="worker", task=index, fallback=True
            ):
                worker_results[index] = Explorer(
                    program,
                    model,
                    worker_options,
                    observer=fb_obs,
                    root=frontier[index],
                    budget=budget,
                ).run()
            if fb_obs.enabled:
                snapshots[index] = fb_obs.metrics_snapshot()
            if options.stop_on_error and worker_results[index].errors:
                cancelled += len(supervisor.fallback) - position - 1
                break
    for index in sorted(worker_results):
        merged = merged.merge(worker_results[index])
    if supervisor is not None and obs.enabled:
        # fold worker-side counters/histograms into the coordinator's
        # registry (phases already arrived through result.phase_times)
        for index in sorted(snapshots):
            obs.metrics.merge_snapshot(snapshots[index])
        skew = _worker_skew(worker_results)
        if skew is not None:
            merged.meta["worker_skew"] = skew
        if obs.trace_enabled:
            for index in sorted(worker_results):
                sub = worker_results[index]
                obs.emit(
                    "worker_metrics",
                    worker=index,
                    executions=sub.executions,
                    blocked=sub.blocked,
                    errors=len(sub.errors),
                    elapsed=round(sub.elapsed, 6),
                )
    if supervisor is not None and trace_base is not None:
        _fold_worker_traces(obs, sorted(winning_paths.items()))
    merged.elapsed = time.perf_counter() - start
    merged.truncated = (
        merged.truncated
        or cancelled > 0
        or (budget is not None and budget.limit_hit)
    )
    acct = (
        supervisor.acct
        if supervisor is not None
        else {
            "tasks_failed": 0,
            "tasks_retried": 0,
            "tasks_timeout": 0,
            "workers_lost": 0,
        }
    )
    merged.meta.update(
        {
            "jobs": jobs,
            "tasks": len(frontier) if not aborted else 0,
            "tasks_cancelled": cancelled,
            "tasks_fallback": sum(
                1 for i in supervisor.fallback if i in worker_results
            )
            if supervisor is not None
            else 0,
            "oversubscription": options.oversubscription,
            **acct,
        }
    )
    if budget is not None:
        merged.meta.update(budget.snapshot())
    if obs.enabled:
        merged.phase_times = merge_phase_times(
            merged.phase_times, obs.phase_report()
        )
        obs.emit(
            "run_end",
            executions=merged.executions,
            blocked=merged.blocked,
            duplicates=merged.duplicates,
            errors=len(merged.errors),
            truncated=merged.truncated,
            elapsed=round(merged.elapsed, 6),
            stats=merged.stats.as_dict(),
            phases=merged.phase_times,
            jobs=jobs,
            tasks=merged.meta["tasks"],
        )
        obs.finish(executions=merged.executions, blocked=merged.blocked)
    return merged


def _worker_skew(worker_results: dict[int, VerificationResult]) -> dict | None:
    """Load-balance summary across subtree tasks: how unevenly the
    search was carved up.  ``max/mean`` executions is the headline
    number — 1.0 means perfectly balanced shards, large values mean one
    subtree dominated the run (`trace-summary` surfaces the same figure
    from ``worker_metrics`` records)."""
    if not worker_results:
        return None
    executions = [r.executions for r in worker_results.values()]
    elapsed = [r.elapsed for r in worker_results.values()]
    mean = sum(executions) / len(executions)
    return {
        "tasks": len(executions),
        "min_executions": min(executions),
        "max_executions": max(executions),
        "mean_executions": round(mean, 3),
        "imbalance": round(max(executions) / mean, 3) if mean else 1.0,
        "min_elapsed": round(min(elapsed), 6),
        "max_elapsed": round(max(elapsed), 6),
    }


def _fold_worker_traces(observer, indexed_paths: list[tuple[int, str]]) -> None:
    """Re-emit each worker's trace records into the coordinator trace.

    Records keep their type and fields, gain a ``worker`` index, and are
    re-stamped with the coordinator's ``seq``/``ts`` (per-worker files
    stay on disk for debugging).  ``trace_start`` records are skipped so
    the merged file has a single header.  Only the *winning* attempt of
    each task is folded — failed attempts' partial traces would make
    ``trace-summary`` disagree with the merged result — and a file cut
    off mid-record (worker terminated while writing) contributes its
    valid prefix plus a ``trace_truncated`` marker instead of being
    discarded wholesale.
    """
    for index, path in sorted(indexed_paths):
        try:
            records, truncated = read_trace_prefix(path)
        except OSError:
            continue  # a cancelled worker may have left nothing behind
        for record in records:
            type_ = record.pop("t")
            if type_ == "trace_start":
                continue
            record.pop("seq", None)
            record.pop("ts", None)
            observer.emit(type_, worker=index, **record)
        if truncated:
            observer.emit("trace_truncated", worker=index, kept=len(records))
