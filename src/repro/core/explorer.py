"""The HMC exploration algorithm.

A depth-first search over execution graphs.  Each step picks the first
thread with a pending event (the scheduler is deterministic — the
graph alone determines the continuation) and branches:

* a **read** branches over every consistent reads-from source among
  the writes already in the graph (forward revisit);
* a **write** branches over every consistent coherence position, and
  additionally *backward-revisits* reads added earlier (see
  :mod:`repro.core.revisits`) — this is how executions in which an
  early read observes a late write are discovered;
* fences and thread-local steps do not branch.

Completed graphs are classified as consistent executions, blocked
(failed ``assume``/unsatisfiable RMW) or erroneous (failed
``assert``).  Near-optimality comes from three cooperating mechanisms
(see DESIGN.md §3): the maximality filter on revisits, memoisation of
revisit states (which also guarantees termination of RMW revisit
chains), and canonical-hash deduplication of completions — duplicates
are suppressed and *reported*, and measure zero on the litmus corpus
for every porf-acyclic model.
"""

from __future__ import annotations

import os
import time

from ..events import FenceLabel, Label, ReadLabel, WriteLabel
from ..graphs import ExecutionGraph, canonical_key, final_state
from ..lang import Program, ReplayStatus, ThreadReplay, replay
from ..graphs.incremental import configure_from_env
from ..models import MemoryModel, get_model
from ..obs import NULL_OBSERVER
from ..obs.profile import activation as profile_activation
from .config import ExplorationOptions, resolve_options
from .result import ErrorReport, ExecutionRecord, VerificationResult
from .revisits import backward_revisits


class _SearchLimit(Exception):
    """Internal: a configured exploration limit was reached."""


class Explorer:
    """One verification run of ``program`` against ``model``."""

    def __init__(
        self,
        program: Program,
        model: MemoryModel | str,
        options: ExplorationOptions | None = None,
        observer=NULL_OBSERVER,
        root: ExecutionGraph | None = None,
        budget=None,
    ) -> None:
        self.program = program
        self.model = get_model(model) if isinstance(model, str) else model
        self.options = options or ExplorationOptions()
        self.obs = observer
        #: resume point: explore only the subtree below this graph
        #: (parallel workers receive their subtree prefix here)
        self.root = root
        #: shared cross-process budget (repro.core.parallel.GlobalBudget)
        #: enforcing max_executions/max_explored over a *merged* parallel
        #: run; None for serial runs, which use the local option limits
        self._budget = budget
        #: cached so the hot path pays one attribute load, not a
        #: no-op context-manager / kwargs construction, when disabled
        self._timed = observer.enabled
        dedup = self.options.deduplicate
        self._dedup = True if dedup is None else dedup
        self._collect_keys = self.options.collect_keys
        self._seen: set = set()
        #: revisit-produced states already scheduled.  Exploration is a
        #: pure function of (graph, stamps), so a repeated state has an
        #: identical future and is skipped; since stamps are compacted
        #: after every revisit the state space is finite, which is what
        #: makes revisit chains between RMWs terminate.
        self._revisit_seen: set = set()
        self.result = VerificationResult(
            program=program.name, model=self.model.name
        )

    # -- public API ------------------------------------------------------

    def run(self) -> VerificationResult:
        start = time.perf_counter()
        # the environment is authoritative per run — this also makes
        # REPRO_INCREMENTAL / REPRO_CHECK_INCREMENTAL work inside pool
        # workers, which inherit the variables but not module state
        configure_from_env()
        obs = self.obs
        if obs.trace_enabled:
            obs.emit(
                "run_start",
                program=self.program.name,
                model=self.model.name,
                threads=self.program.num_threads,
            )
        root = (
            self.root.copy()
            if self.root is not None
            else ExecutionGraph(self.program.location_bases())
        )
        stack: list[ExecutionGraph] = [root]
        # models are registry singletons: attach the observer for this
        # run only, and always detach it again.  The profile activation
        # makes the same registry visible to the observer-less hot
        # paths (derived relations) for exactly the same window.
        self.model.set_observer(obs)
        try:
            with profile_activation(obs):
                while stack:
                    graph = stack.pop()
                    while True:
                        successors = self._step(graph)
                        if successors is None:
                            break
                        if len(successors) == 1:
                            graph = successors[0]
                            continue
                        stack.extend(reversed(successors))
                        break
        except _SearchLimit:
            self.result.truncated = True
        finally:
            self.model.set_observer(NULL_OBSERVER)
        self.result.elapsed = time.perf_counter() - start
        if obs.enabled:
            self.result.phase_times = obs.phase_report()
            obs.emit(
                "run_end",
                executions=self.result.executions,
                blocked=self.result.blocked,
                duplicates=self.result.duplicates,
                errors=len(self.result.errors),
                truncated=self.result.truncated,
                elapsed=round(self.result.elapsed, 6),
                stats=self.result.stats.as_dict(),
                phases=self.result.phase_times,
            )
            obs.finish(
                executions=self.result.executions, blocked=self.result.blocked
            )
        return self.result

    # -- one exploration step ------------------------------------------------

    def _step(self, graph: ExecutionGraph) -> list[ExecutionGraph] | None:
        """Extend ``graph`` by one event.

        Returns the successor graphs, or None when the graph is
        complete or a dead end (both are accounted for here).
        """
        replays: dict[int, ThreadReplay] = {}
        for tid in range(self.program.num_threads):
            n = graph.thread_size(tid)
            if self._timed:
                with self.obs.phase("replay"):
                    rep = replay(
                        self.program.threads[tid],
                        tid,
                        graph.read_values(tid),
                        max_events=n + 1,
                    )
            else:
                rep = replay(
                    self.program.threads[tid],
                    tid,
                    graph.read_values(tid),
                    max_events=n + 1,
                )
            replays[tid] = rep
            next_label = self._next_label(rep, n)
            if next_label is None:
                continue
            successors = self._add_event(graph, tid, next_label)
            if not successors:
                self._record_blocked()
                return None
            return successors
        self._complete(graph, replays)
        return None

    @staticmethod
    def _next_label(rep: ThreadReplay, existing: int) -> Label | None:
        """The thread's next event label, or None when it is terminal."""
        if len(rep.labels) > existing:
            return rep.labels[existing]
        if rep.status is ReplayStatus.NEEDS_VALUE and rep.pending is not None:
            return rep.pending
        return None

    # -- event addition --------------------------------------------------------

    def _add_event(
        self, graph: ExecutionGraph, tid: int, label: Label
    ) -> list[ExecutionGraph]:
        self.result.stats.events_added += 1
        if len(graph) >= self.options.max_events:
            raise _SearchLimit
        if self._budget is not None and self._budget.limit_hit:
            # another worker drained the shared budget: stop mid-subtree
            # instead of exploring graphs whose completions can no
            # longer be recorded
            raise _SearchLimit
        if self.obs.trace_enabled:
            self.obs.emit(
                "event_added",
                tid=tid,
                kind=type(label).__name__.removesuffix("Label").lower(),
                loc=getattr(label, "loc", None),
            )
        if isinstance(label, ReadLabel):
            if self._timed:
                with self.obs.phase("rf_enumeration"):
                    return self._add_read(graph, tid, label)
            return self._add_read(graph, tid, label)
        if isinstance(label, WriteLabel):
            return self._add_write(graph, tid, label)
        if isinstance(label, FenceLabel):
            extended = graph.copy()
            extended.add_fence(tid, label)
            return [extended]
        raise TypeError(f"cannot add label {label!r}")  # pragma: no cover

    def _add_read(
        self, graph: ExecutionGraph, tid: int, label: ReadLabel
    ) -> list[ExecutionGraph]:
        self.result.stats.reads_added += 1
        graph.ensure_location(label.loc)
        successors = []
        candidates = 0
        # coherence-maximal candidate first: it is always consistent
        # (extensibility) and is the canonical choice for maximality
        for write in reversed(graph.co_order(label.loc)):
            self.result.stats.rf_candidates += 1
            candidates += 1
            extended = graph.copy()
            extended.add_read(tid, label, write)
            if self._consistent_step(extended):
                successors.append(extended)
        if self._timed:
            self.obs.observe("rf_fanout", len(successors))
            if self.obs.trace_enabled:
                self.obs.emit(
                    "rf_branch",
                    tid=tid,
                    loc=label.loc,
                    candidates=candidates,
                    consistent=len(successors),
                )
        return successors

    def _add_write(
        self, graph: ExecutionGraph, tid: int, label: WriteLabel
    ) -> list[ExecutionGraph]:
        self.result.stats.writes_added += 1
        graph.ensure_location(label.loc)
        if self._timed:
            with self.obs.phase("co_placement"):
                placements = self._co_placements(graph, tid, label)
        else:
            placements = self._co_placements(graph, tid, label)
        successors = [g for g, _, ok in placements if ok]
        if self._timed:
            self.obs.observe("co_fanout", len(successors))
            if self.obs.trace_enabled:
                self.obs.emit(
                    "co_branch",
                    tid=tid,
                    loc=label.loc,
                    positions=len(placements),
                    consistent=len(successors),
                )
        if self.options.backward_revisits:
            if self._timed:
                with self.obs.phase("revisit"):
                    self._collect_revisits(placements, successors)
            else:
                self._collect_revisits(placements, successors)
        return successors

    def _co_placements(
        self, graph: ExecutionGraph, tid: int, label: WriteLabel
    ) -> list[tuple[ExecutionGraph, object, bool]]:
        placements = []
        n_writes = len(graph.co_order(label.loc))
        # coherence-maximal position first (canonical choice)
        for index in range(n_writes, 0, -1):
            self.result.stats.co_positions += 1
            extended = graph.copy()
            event = extended.add_write(tid, label, index)
            placements.append(
                (extended, event, self._consistent_step(extended))
            )
        return placements

    def _collect_revisits(self, placements, successors) -> None:
        # Revisits are generated from *every* placement, including
        # ones inconsistent in the full graph: a revisit deletes
        # events, and the restricted graph can be consistent even
        # when the full one is not (e.g. a second RMW that cannot
        # be placed atomically until the conflicting RMW is
        # deleted).  The restricted graph is checked on its own.
        for extended, event, _ok in placements:
            for revisited in backward_revisits(
                extended,
                event,
                self.program,
                self.model,
                self.options,
                self.result.stats,
                self.obs,
            ):
                key = (
                    canonical_key(revisited),
                    tuple(
                        (e.tid, e.index)
                        for e in revisited.events_by_stamp()
                    ),
                )
                if key in self._revisit_seen:
                    continue
                self._revisit_seen.add(key)
                successors.append(revisited)

    def _consistent_step(self, graph: ExecutionGraph) -> bool:
        if not self.options.incremental_checks:
            # still need coherence to keep the co-position enumeration
            # finite and meaningful
            return self.model.coherence_ok(graph)
        self.result.stats.consistency_checks += 1
        return self.model.is_consistent(graph)

    # -- completion -----------------------------------------------------------

    def _complete(
        self, graph: ExecutionGraph, replays: dict[int, ThreadReplay]
    ) -> None:
        if self._timed:
            with self.obs.phase("completion"):
                self._complete_inner(graph, replays)
        else:
            self._complete_inner(graph, replays)

    def _complete_inner(
        self, graph: ExecutionGraph, replays: dict[int, ThreadReplay]
    ) -> None:
        if not self.options.incremental_checks and not self.model.is_consistent(
            graph
        ):
            return
        statuses = {tid: rep.status for tid, rep in replays.items()}
        errored = [
            tid for tid, s in statuses.items() if s is ReplayStatus.ERROR
        ]
        if errored:
            tid = errored[0]
            self.result.errors.append(
                ErrorReport(
                    message=replays[tid].error or "assertion failed",
                    thread=tid,
                    witness=graph.pretty(),
                    graph=graph,
                )
            )
            if self.obs.trace_enabled:
                self.obs.emit(
                    "error",
                    thread=tid,
                    message=replays[tid].error or "assertion failed",
                )
            if self.options.stop_on_error:
                raise _SearchLimit
            return
        if any(s is ReplayStatus.BLOCKED for s in statuses.values()):
            self._record_blocked()
            return
        key = None
        if (
            self._dedup
            or self.options.collect_executions
            or self._collect_keys
        ):
            key = canonical_key(graph)
            if key in self._seen:
                if self._budget is not None and not self._budget.take_explored():
                    raise _SearchLimit
                self.result.duplicates += 1
                if self._timed:
                    if self.obs.trace_enabled:
                        self.obs.emit("graph_duplicate", events=len(graph))
                    self.obs.tick(
                        executions=self.result.executions,
                        blocked=self.result.blocked,
                    )
                return
            self._seen.add(key)
        if self._budget is not None and not (
            self._budget.take_execution() and self._budget.take_explored()
        ):
            raise _SearchLimit  # global budget drained; don't record
        self.result.executions += 1
        if self._timed:
            self.obs.observe("graph_events", len(graph))
            if self.obs.trace_enabled:
                self.obs.emit("graph_complete", events=len(graph))
            self.obs.tick(
                executions=self.result.executions, blocked=self.result.blocked
            )
        outcome, state = self._record_outcome(graph, replays)
        if self.options.collect_executions:
            self.result.execution_graphs.append(graph)
        if self._collect_keys:
            self.result.execution_records.append(
                ExecutionRecord(
                    key=key,
                    outcome=outcome,
                    final_state=state,
                    graph=graph if self.options.collect_executions else None,
                )
            )
        if (
            self.options.max_executions is not None
            and self.result.executions >= self.options.max_executions
        ):
            raise _SearchLimit
        if (
            self.options.max_explored is not None
            and self.result.explored >= self.options.max_explored
        ):
            raise _SearchLimit
        if self._budget is not None and self._budget.limit_hit:
            raise _SearchLimit

    def _record_blocked(self) -> None:
        self.result.blocked += 1
        if self._timed:
            if self.obs.trace_enabled:
                self.obs.emit("graph_blocked")
            self.obs.tick(
                executions=self.result.executions, blocked=self.result.blocked
            )

    def _record_outcome(
        self, graph: ExecutionGraph, replays: dict[int, ThreadReplay]
    ) -> tuple[tuple, tuple]:
        outcome = []
        for tid, reg in self.program.observables:
            value = replays[tid].registers.get(reg)
            if value is not None:
                outcome.append((f"{reg}@{tid}", value))
        observed = tuple(sorted(outcome))
        state = final_state(graph)
        self.result.outcomes[observed] += 1
        self.result.final_states[state] += 1
        return observed, state


def effective_jobs(options: ExplorationOptions) -> int:
    """The worker-process count a run of ``options`` should use.

    ``options.jobs`` wins when set; otherwise the ``REPRO_JOBS``
    environment variable supplies a process-wide default.  0 (either
    way) means one worker per CPU; anything unset means serial (1).
    """
    jobs = options.jobs
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}")
        if jobs < 0:
            raise ValueError(f"REPRO_JOBS must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def verify(
    program: Program,
    model: MemoryModel | str = "sc",
    *,
    options: ExplorationOptions | None = None,
    observer=NULL_OBSERVER,
    **option_overrides,
) -> VerificationResult:
    """Verify ``program`` against ``model`` and return the result.

    Everything after the model argument is keyword-only.  Keyword
    overrides are forwarded to :class:`ExplorationOptions`,
    e.g. ``verify(p, "tso", stop_on_error=False)``; alternatively pass
    a full ``options=ExplorationOptions(...)`` (never both).  Pass a
    :class:`repro.obs.Observer` to collect phase timings and a trace.

    With ``jobs=N`` (N > 1, or 0 for one worker per CPU) the search is
    sharded over a process pool (see :mod:`repro.core.parallel`);
    exhaustive parallel runs report the same ``executions``/``blocked``
    /``outcomes`` as serial ones.  Runs bounded by ``max_executions``
    or ``max_explored`` shard too: the workers share one global budget,
    so the merged result never exceeds the limit (which executions fill
    the budget depends on worker scheduling, unlike the serial run's
    DFS-order prefix).
    """
    options = resolve_options(options, option_overrides)
    if (
        effective_jobs(options) > 1
        # the merge reconciles by canonical key, so a run that
        # explicitly disabled deduplication must stay serial
        and options.deduplicate is not False
    ):
        from .parallel import verify_parallel

        result = verify_parallel(program, model, options, observer=observer)
        if not options.collect_keys:
            # the records existed for merge reconciliation; strip them
            # at the API boundary unless the caller asked for them
            result.execution_records = []
        return result
    return Explorer(program, model, options, observer=observer).run()


def count_executions(
    program: Program,
    model: MemoryModel | str = "sc",
    *,
    options: ExplorationOptions | None = None,
    observer=NULL_OBSERVER,
    **option_overrides,
) -> int:
    """The number of distinct consistent executions of ``program``.

    Accepts the same ``options``/keyword-override convention as
    :func:`verify` (keyword-only after the model argument) and
    forwards ``observer`` to it, so counting runs can be traced and
    timed like verifying ones.
    """
    options = resolve_options(options, option_overrides, stop_on_error=False)
    return verify(
        program, model, options=options, observer=observer
    ).executions
