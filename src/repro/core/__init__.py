"""The HMC core: stateless model checking parametric in the memory model."""

from .config import ExplorationOptions
from .report import to_dict, to_json
from .estimate import Estimate, estimate_explorations
from .explorer import Explorer, count_executions, verify
from .result import ErrorReport, Stats, VerificationResult
from .revisits import backward_revisits, maximally_added, replay_matches

__all__ = [
    "ErrorReport",
    "Estimate",
    "estimate_explorations",
    "ExplorationOptions",
    "Explorer",
    "Stats",
    "VerificationResult",
    "backward_revisits",
    "count_executions",
    "maximally_added",
    "replay_matches",
    "to_dict",
    "to_json",
    "verify",
]
