"""The HMC core: stateless model checking parametric in the memory model."""

from .config import ExplorationOptions, resolve_options
from .report import from_dict, from_json, to_dict, to_json
from .estimate import Estimate, estimate_explorations
from .explorer import Explorer, count_executions, effective_jobs, verify
from .parallel import (
    GlobalBudget,
    PoolSupervisor,
    split_frontier,
    verify_parallel,
)
from .result import (
    ErrorReport,
    ExecutionRecord,
    Stats,
    VerificationResult,
    merge_phase_times,
)
from .revisits import backward_revisits, maximally_added, replay_matches

__all__ = [
    "ErrorReport",
    "Estimate",
    "estimate_explorations",
    "ExecutionRecord",
    "ExplorationOptions",
    "Explorer",
    "GlobalBudget",
    "PoolSupervisor",
    "resolve_options",
    "Stats",
    "VerificationResult",
    "backward_revisits",
    "count_executions",
    "effective_jobs",
    "from_dict",
    "from_json",
    "maximally_added",
    "merge_phase_times",
    "replay_matches",
    "split_frontier",
    "to_dict",
    "to_json",
    "verify",
    "verify_parallel",
]
