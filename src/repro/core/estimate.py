"""Statistical estimation of the exploration size.

Before committing to an exhaustive run, the GenMC-family tools offer
an *estimation mode*: repeated random descents through the exploration
tree, each multiplying the branching factors it sees (Knuth's 1975
unbiased tree-size estimator).  The mean over walks estimates the
number of complete explorations (consistent + blocked + duplicates
alike reach leaves, so the estimate tracks total exploration work);
the spread indicates how lopsided the tree is.

This reuses the exact production `Explorer._step`, so the estimated
tree is the real one — including revisits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..lang import Program
from ..models import MemoryModel, get_model
from .config import ExplorationOptions
from .explorer import Explorer, _SearchLimit


@dataclass(frozen=True)
class Estimate:
    """The result of an estimation run."""

    program: str
    model: str
    walks: int
    #: Knuth estimate of the number of complete explorations (leaves)
    mean: float
    #: sample standard deviation of the per-walk estimates
    std: float
    #: deepest exploration seen, in events
    max_depth: int

    def __str__(self) -> str:
        return (
            f"{self.program} under {self.model}: ≈{self.mean:.1f} "
            f"explorations (σ={self.std:.1f}, {self.walks} walks, "
            f"depth ≤ {self.max_depth})"
        )


def _one_walk(explorer: Explorer, rng: random.Random) -> tuple[float, int]:
    """One random descent; returns (leaf-count estimate, depth)."""
    from ..graphs import ExecutionGraph

    graph = ExecutionGraph(explorer.program.location_bases())
    weight = 1.0
    depth = 0
    while True:
        try:
            successors = explorer._step(graph)
        except _SearchLimit:
            return weight, depth
        if successors is None:
            return weight, depth
        weight *= len(successors)
        graph = rng.choice(successors)
        depth = len(graph)


def estimate_explorations(
    program: Program,
    model: MemoryModel | str,
    walks: int = 50,
    seed: int = 0,
) -> Estimate:
    """Estimate the size of the exploration tree by random descents."""
    model = get_model(model) if isinstance(model, str) else model
    rng = random.Random(seed)
    samples = []
    max_depth = 0
    for _ in range(walks):
        explorer = Explorer(
            program,
            model,
            # leaves must not abort the walk
            ExplorationOptions(stop_on_error=False),
        )
        weight, depth = _one_walk(explorer, rng)
        samples.append(weight)
        max_depth = max(max_depth, depth)
    mean = sum(samples) / len(samples)
    variance = sum((s - mean) ** 2 for s in samples) / max(1, len(samples) - 1)
    return Estimate(
        program=program.name,
        model=model.name,
        walks=walks,
        mean=mean,
        std=variance**0.5,
        max_depth=max_depth,
    )
