"""Versioned wire protocol for the verification service.

Everything that crosses the HTTP boundary is defined here: the submit
payload schema (with byte-size caps and a strict field whitelist, so a
malformed or hostile request dies with a 400 before it touches the
engine), the job lifecycle state machine, and the :class:`Job` record
the server keeps per submission.

A submit payload is a JSON object::

    {
      "v": 1,                      # protocol version (optional)
      "kind": "verify" | "litmus" | "suite",
      "priority": "high" | "normal" | "low",      # or 0 / 1 / 2
      "task_timeout": 30.0,        # per-job hang recovery (optional)

      # kind == "verify": one program under one model
      "program": {"litmus": "SB"}            # catalog program
               | {"family": "sb", "n": 3}    # workload family
               | {"source": "<litmus text>"} # column-format source
      "model": "tso" | {"cat": "<.cat source>", "name": "mine"},
      "options": {"max_executions": 100, ...},    # whitelisted knobs

      # kind == "litmus": one probe verdict
      "test": "SB" | {"source": "<litmus text>"},
      "model": ...as above...,

      # kind == "suite": a tests x models matrix
      "tests": ["SB", "MP"] | null,           # null = whole corpus
      "models": ["sc", "tso", {"cat": ...}],
    }

Validation resolves names and parses sources eagerly, so an unknown
litmus test or a broken ``.cat`` model is a 400 at submit time, never
a failed job.  The jobs the validator builds are exactly the
:class:`~repro.suite.scheduler.SuiteTask` objects the direct API uses,
which is what makes service results bit-identical to in-process calls.
"""

from __future__ import annotations

import threading
import time
import uuid

from ..core.config import ExplorationOptions
from ..obs.spans import make_span, new_trace_id

#: bump on incompatible changes to the submit/status/result schemas
PROTOCOL_VERSION = 1

#: hard cap on a request body (the server rejects larger with 413)
MAX_BODY_BYTES = 1 << 20

#: cap on any embedded source text (litmus or .cat)
MAX_SOURCE_BYTES = 256 << 10

#: cap on tests x models in one suite submission
MAX_SUITE_TASKS = 1024

#: cap on a workload family's size parameter
MAX_WORKLOAD_N = 64

#: per-job ring buffer of progress events (oldest dropped beyond this)
MAX_JOB_EVENTS = 4096

# -- job lifecycle ----------------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: states a job can never leave
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: the legal state machine (see docs/SERVICE.md)
TRANSITIONS = {
    QUEUED: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({DONE, FAILED, CANCELLED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}

PRIORITIES = {"high": 0, "normal": 1, "low": 2}
PRIORITY_NAMES = {value: name for name, value in PRIORITIES.items()}

#: exploration knobs a remote caller may set; scheduling fields stay
#: server-owned (the pool belongs to the server, not the request)
ALLOWED_OPTION_FIELDS = frozenset(
    {
        "max_executions",
        "max_explored",
        "max_events",
        "stop_on_error",
        "deduplicate",
        "backward_revisits",
        "maximality_check",
        "incremental_checks",
    }
)

VALID_KINDS = ("verify", "litmus", "suite")


class ProtocolError(ValueError):
    """A request the protocol rejects; carries the HTTP status."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def parse_priority(value) -> int:
    if value is None:
        return PRIORITIES["normal"]
    if isinstance(value, str):
        try:
            return PRIORITIES[value]
        except KeyError:
            raise ProtocolError(
                f"unknown priority {value!r}; "
                f"use {'/'.join(PRIORITIES)} or 0..2"
            ) from None
    if isinstance(value, int) and not isinstance(value, bool):
        if value in PRIORITY_NAMES:
            return value
        raise ProtocolError(f"priority must be 0..2, got {value}")
    raise ProtocolError(f"priority must be a name or 0..2, got {value!r}")


def parse_options(raw) -> dict:
    """Validate the ``options`` object into keyword overrides."""
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ProtocolError("options must be an object")
    unknown = sorted(set(raw) - ALLOWED_OPTION_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown option field(s): {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(ALLOWED_OPTION_FIELDS))}"
        )
    overrides = dict(raw)
    try:
        # borrow ExplorationOptions' own range validation
        ExplorationOptions(**overrides)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid options: {exc}") from None
    return overrides


def parse_task_timeout(value) -> float | None:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError("task_timeout must be a number of seconds")
    if value <= 0:
        raise ProtocolError("task_timeout must be positive")
    return float(value)


def _source_text(value, what: str) -> str:
    if not isinstance(value, str) or not value.strip():
        raise ProtocolError(f"{what} source must be a non-empty string")
    if len(value.encode()) > MAX_SOURCE_BYTES:
        raise ProtocolError(
            f"{what} source exceeds {MAX_SOURCE_BYTES} bytes", status=413
        )
    return value


def resolve_model(spec):
    """A model name or ``{"cat": source}`` into something the suite
    constructors accept (a name string or a loaded CatModel)."""
    if isinstance(spec, str):
        from ..models import get_model

        try:
            get_model(spec)
        except (KeyError, TypeError) as exc:
            raise ProtocolError(str(exc)) from None
        return spec
    if isinstance(spec, dict) and "cat" in spec:
        from ..cat import CatError, CatModel
        from ..cat.lint import lint_source

        source = _source_text(spec["cat"], ".cat model")
        name = spec.get("name")
        if name is not None and not isinstance(name, str):
            raise ProtocolError("model name must be a string")
        try:
            for diag in lint_source(source):
                if diag.severity == "error":
                    raise ProtocolError(f".cat model: {diag.message}")
            return CatModel.from_source(source, name=name)
        except CatError as exc:
            raise ProtocolError(f".cat model: {exc}") from None
    raise ProtocolError(
        'model must be a registered name or {"cat": "<source>"}'
    )


def resolve_litmus(spec):
    """A test name or ``{"source": text}`` into a LitmusTest."""
    from ..litmus import get_litmus
    from ..litmus.parser import LitmusParseError, parse_litmus

    if isinstance(spec, str):
        try:
            return get_litmus(spec)
        except KeyError:
            from ..litmus import litmus_names

            raise ProtocolError(
                f"unknown litmus test {spec!r}; "
                f"known: {', '.join(litmus_names())}"
            ) from None
    if isinstance(spec, dict) and "source" in spec:
        source = _source_text(spec["source"], "litmus")
        try:
            return parse_litmus(source)
        except LitmusParseError as exc:
            raise ProtocolError(f"litmus source: {exc}") from None
    raise ProtocolError(
        'test must be a catalog name or {"source": "<litmus text>"}'
    )


def resolve_program(spec):
    """A program spec into a Program (see the module docstring)."""
    if not isinstance(spec, dict):
        raise ProtocolError("program must be an object")
    if "litmus" in spec:
        return resolve_litmus(spec["litmus"]).program
    if "source" in spec:
        return resolve_litmus({"source": spec["source"]}).program
    if "family" in spec:
        family = spec["family"]
        n = spec.get("n", 2)
        if not isinstance(family, str):
            raise ProtocolError("program family must be a string")
        if (
            isinstance(n, bool)
            or not isinstance(n, int)
            or not 1 <= n <= MAX_WORKLOAD_N
        ):
            raise ProtocolError(f"program n must be 1..{MAX_WORKLOAD_N}")
        from ..bench import workloads
        from ..bench.datastructures import DATA_STRUCTURES

        factory = workloads.FAMILIES.get(family) or DATA_STRUCTURES.get(
            family
        )
        if factory is None:
            known = sorted(
                list(workloads.FAMILIES) + list(DATA_STRUCTURES)
            )
            raise ProtocolError(
                f"unknown family {family!r}; known: {', '.join(known)}"
            )
        return factory(n)
    raise ProtocolError(
        'program must carry "litmus", "family" or "source"'
    )


class Submission:
    """A validated submit payload, resolved to runnable suite tasks."""

    __slots__ = ("kind", "priority", "task_timeout", "label", "tasks")

    def __init__(self, kind, priority, task_timeout, label, tasks):
        self.kind = kind
        self.priority = priority
        self.task_timeout = task_timeout
        self.label = label
        self.tasks = tasks


def validate_submit(payload) -> Submission:
    """Validate one submit payload into a :class:`Submission`.

    Raises :class:`ProtocolError` (status 400/413) on anything that is
    not a well-formed, in-bounds request.
    """
    from ..suite import litmus_matrix, litmus_task, program_task

    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    version = payload.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this server speaks v{PROTOCOL_VERSION})"
        )
    kind = payload.get("kind")
    if kind not in VALID_KINDS:
        raise ProtocolError(
            f"kind must be one of {'/'.join(VALID_KINDS)}, got {kind!r}"
        )
    known_fields = {
        "v", "kind", "priority", "task_timeout", "options",
        "program", "test", "model", "tests", "models",
    }
    unknown = sorted(set(payload) - known_fields)
    if unknown:
        raise ProtocolError(f"unknown field(s): {', '.join(unknown)}")
    priority = parse_priority(payload.get("priority"))
    task_timeout = parse_task_timeout(payload.get("task_timeout"))
    overrides = parse_options(payload.get("options"))

    if kind == "verify":
        program = resolve_program(payload.get("program"))
        model = resolve_model(payload.get("model", "sc"))
        task = program_task(program, model, **overrides)
        label = task.id
        tasks = [task]
    elif kind == "litmus":
        test = resolve_litmus(payload.get("test"))
        model = resolve_model(payload.get("model", "sc"))
        try:
            task = litmus_task(test, model, **overrides)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        label = task.id
        tasks = [task]
    else:  # suite
        raw_tests = payload.get("tests")
        if raw_tests is not None:
            if not isinstance(raw_tests, list) or not raw_tests:
                raise ProtocolError("tests must be null or a non-empty list")
            tests = [resolve_litmus(entry) for entry in raw_tests]
        else:
            tests = None
        raw_models = payload.get("models")
        if not isinstance(raw_models, list) or not raw_models:
            raise ProtocolError("models must be a non-empty list")
        models = [resolve_model(entry) for entry in raw_models]
        from ..litmus import litmus_names

        n_tests = len(tests) if tests is not None else len(litmus_names())
        if n_tests * len(models) > MAX_SUITE_TASKS:
            raise ProtocolError(
                f"suite too large: {n_tests} tests x {len(models)} models "
                f"> {MAX_SUITE_TASKS} tasks",
                status=413,
            )
        try:
            tasks = litmus_matrix(tests, models=models, **overrides)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        label = f"suite[{len(tasks)}]"
    return Submission(kind, priority, task_timeout, label, tasks)


# -- the server-side job record ---------------------------------------------


def new_job_id() -> str:
    return uuid.uuid4().hex[:12]


class Job:
    """One accepted submission: state, progress events, final payload.

    Thread-safe: HTTP handler threads read status and wait on events
    while the executor thread drives the state machine.  Events form a
    bounded ring with absolute sequence numbers, so a streaming client
    that falls behind sees an ``events_dropped`` marker instead of
    silently missing records.
    """

    def __init__(self, submission: Submission, job_id: str | None = None):
        self.id = job_id if job_id is not None else new_job_id()
        self.submission = submission
        self.state = QUEUED
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.error: str | None = None
        self.payload: dict | None = None
        #: the job's trace id: every span this job produces — the HTTP
        #: submit span, the executor's job span, suite-task and worker
        #: subtree spans — shares it (see repro.obs.spans)
        self.trace_id = new_trace_id()
        #: the propagation token the executor parents the job span on
        #: (set by note_submit_span)
        self.span_context: dict | None = None
        #: finished span records (the submit span immediately; the full
        #: set once the executor finishes the job)
        self.spans: list[dict] = []
        #: spans lost to the executor tracer's bounded ring
        self.spans_dropped = 0
        #: events lost to the bounded event ring (exported as
        #: repro_service_events_dropped_total)
        self.events_dropped = 0
        #: called with the drop count whenever ring capacity evicts
        #: events (the server wires this to ServiceStats)
        self.on_drop = None
        self._cond = threading.Condition()
        self._events: list[dict] = []
        self._first_seq = 1  # seq of the oldest retained event
        self._next_seq = 1
        self.add_event("job_queued", kind=submission.kind,
                       label=submission.label, priority=submission.priority,
                       trace_id=self.trace_id)

    # -- events -----------------------------------------------------------

    def add_event(self, type_: str, **fields) -> None:
        on_drop = None
        dropped = 0
        with self._cond:
            record = {"seq": self._next_seq, "t": type_, "ts": time.time()}
            record.update(fields)
            self._next_seq += 1
            self._events.append(record)
            if len(self._events) > MAX_JOB_EVENTS:
                dropped = len(self._events) - MAX_JOB_EVENTS
                del self._events[:dropped]
                self._first_seq = self._events[0]["seq"]
                self.events_dropped += dropped
                on_drop = self.on_drop
            self._cond.notify_all()
        if on_drop is not None:
            # outside the lock: the hook takes the stats lock
            on_drop(dropped)

    def note_submit_span(self, started: float) -> None:
        """Record the HTTP submit as this trace's root span (``started``
        is the ``time.time()`` the handler began processing) and derive
        the propagation token the executor adopts."""
        span = make_span(
            "http:submit",
            trace_id=self.trace_id,
            start=started,
            dur=time.time() - started,
            cat="http",
            attrs={"job": self.id, "kind": self.submission.kind,
                   "label": self.submission.label},
        )
        self.span_context = {
            "trace_id": self.trace_id,
            "span_id": span["span_id"],
        }
        self.spans.append(span)
        self.add_event("span", **span)

    def events_since(self, since: int) -> tuple[list[dict], int]:
        """Events with ``seq > since`` plus the new cursor; prefixes an
        ``events_dropped`` marker when the ring already lost some."""
        with self._cond:
            out: list[dict] = []
            if since + 1 < self._first_seq:
                out.append(
                    {
                        "seq": since,
                        "t": "events_dropped",
                        "dropped": self._first_seq - since - 1,
                    }
                )
            out.extend(e for e in self._events if e["seq"] > since)
            return out, self._next_seq - 1

    def wait_event(self, since: int, timeout: float) -> bool:
        """Block until an event newer than ``since`` exists (or the job
        is terminal, or ``timeout`` elapses)."""
        with self._cond:
            if self._next_seq - 1 > since or self.state in TERMINAL_STATES:
                return True
            return self._cond.wait(timeout)

    # -- the state machine ------------------------------------------------

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, state: str, **fields) -> bool:
        """Move to ``state`` if the machine allows it; returns whether
        the move happened (a cancel racing a start simply loses)."""
        with self._cond:
            if state not in TRANSITIONS[self.state]:
                return False
            self.state = state
            now = time.time()
            if state == RUNNING:
                self.started = now
            elif state in TERMINAL_STATES:
                self.finished = now
        self.add_event(f"job_{state}", **fields)
        return True

    def cancel_if_queued(self) -> bool:
        """Atomically cancel a still-queued job.  A job the executor
        already started runs to completion (the worker pool has no
        safe mid-exploration abort), so this is the only cancel path
        the server exposes."""
        with self._cond:
            if self.state != QUEUED:
                return False
            self.state = CANCELLED
            self.finished = time.time()
        self.add_event("job_cancelled")
        return True

    def finish(self, payload: dict) -> None:
        self.payload = payload
        self.transition(DONE)

    def fail(self, error: str) -> None:
        self.error = error
        self.transition(FAILED, error=error)

    # -- rendering --------------------------------------------------------

    def status(self) -> dict:
        with self._cond:
            return {
                "v": PROTOCOL_VERSION,
                "id": self.id,
                "kind": self.submission.kind,
                "label": self.submission.label,
                "state": self.state,
                "priority": PRIORITY_NAMES[self.submission.priority],
                "tasks": len(self.submission.tasks),
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "error": self.error,
                "events": self._next_seq - 1,
                "events_dropped": self.events_dropped,
                "trace_id": self.trace_id,
                "spans": len(self.spans),
                "result_ready": self.payload is not None,
            }
