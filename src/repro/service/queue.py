"""A bounded, thread-safe priority job queue with backpressure.

Ordering is strict priority first (high < normal < low), FIFO within a
priority — a monotonically increasing sequence number breaks ties, so
two normal-priority jobs always run in submission order and a stream
of high-priority work can never reorder itself.

Capacity is a hard bound: :meth:`JobQueue.put` raises
:class:`QueueFull` instead of blocking, and the server turns that into
``429 Too Many Requests`` with a ``Retry-After`` hint.  An HTTP intake
that blocked would tie up handler threads and hide the overload from
clients; rejecting loudly is the backpressure contract.

Cancellation is lazy: a queued job that was cancelled stays in the
heap but is skipped (and not counted) when popped — O(1) cancel, no
heap surgery.
"""

from __future__ import annotations

import heapq
import itertools
import threading

from .protocol import QUEUED


class QueueFull(Exception):
    """The queue is at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, capacity: int, retry_after: float) -> None:
        super().__init__(f"queue full ({capacity} jobs)")
        self.capacity = capacity
        self.retry_after = retry_after


class JobQueue:
    """Bounded priority queue of :class:`~repro.service.protocol.Job`."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._heap: list = []
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return self._depth()

    def _depth(self) -> int:
        # cancelled jobs still sit in the heap but are not queued work
        return sum(1 for _, _, job in self._heap if job.state == QUEUED)

    @property
    def depth(self) -> int:
        return len(self)

    def empty(self) -> bool:
        return len(self) == 0

    def put(self, job, retry_after: float = 1.0) -> None:
        """Enqueue ``job`` or raise :class:`QueueFull`.

        ``retry_after`` is the hint to embed in the rejection — the
        server estimates it from recent job durations.
        """
        with self._cond:
            if self._closed:
                raise QueueFull(self.capacity, retry_after)
            if self._depth() >= self.capacity:
                raise QueueFull(self.capacity, retry_after)
            heapq.heappush(
                self._heap,
                (job.submission.priority, next(self._seq), job),
            )
            self._cond.notify()

    def get(self, timeout: float | None = None):
        """Pop the next queued job, or None on timeout/closed-empty.

        Jobs cancelled while queued are discarded silently here; the
        cancel path already moved their state machine.
        """
        with self._cond:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.state == QUEUED:
                        return job
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None

    def close(self) -> None:
        """Stop intake and wake blocked getters (drain/shutdown)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
