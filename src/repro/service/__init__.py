"""repro.service — a long-running HTTP verification server.

A stdlib-only service layer over the suite engine: a versioned JSON
protocol (:mod:`repro.service.protocol`), a bounded priority queue
with 429 backpressure (:mod:`repro.service.queue`), a single executor
thread driving jobs onto one persistent worker pool
(:mod:`repro.service.worker`), the HTTP server with NDJSON progress
streaming and SIGTERM graceful drain (:mod:`repro.service.server`),
and a urllib client (:mod:`repro.service.client`).

See docs/SERVICE.md for the wire protocol and job lifecycle.
"""

from .client import ServiceClient, ServiceError, default_url
from .protocol import (
    MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    TERMINAL_STATES,
    TRANSITIONS,
    Job,
    ProtocolError,
    Submission,
    validate_submit,
)
from .queue import JobQueue, QueueFull
from .server import DEFAULT_PORT, VerificationService, serve
from .worker import JobExecutor, ServiceStats

__all__ = [
    "ServiceClient",
    "ServiceError",
    "default_url",
    "MAX_BODY_BYTES",
    "PROTOCOL_VERSION",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "Job",
    "ProtocolError",
    "Submission",
    "validate_submit",
    "JobQueue",
    "QueueFull",
    "DEFAULT_PORT",
    "VerificationService",
    "serve",
    "JobExecutor",
    "ServiceStats",
]
