"""The HTTP verification server.

A stdlib-only ``ThreadingHTTPServer`` front end over the job queue and
executor::

    POST   /v1/jobs              submit (202; 429 when the queue is full,
                                 503 while draining, 413 oversized)
    GET    /v1/jobs              recent jobs, newest first
    GET    /v1/jobs/<id>         status document
    GET    /v1/jobs/<id>/events  NDJSON progress stream (?since=&timeout=)
    GET    /v1/jobs/<id>/result  final result (409 until terminal)
    GET    /v1/jobs/<id>/spans   finished trace spans (submit span
                                 immediately; the full tree once done)
    DELETE /v1/jobs/<id>         cancel a queued job (409 once running)
    GET    /metrics              Prometheus text (service job families)
    GET    /healthz              liveness (always 200 while serving)
    GET    /readyz               readiness (503 once draining)

Handler threads only ever touch the queue, the job registry and the
stats — execution happens on the single executor thread, so a slow
exploration can never starve the HTTP plane.

Graceful drain (``SIGTERM``/``SIGINT`` under :func:`serve`): intake
stops (``readyz`` flips to 503, new ``POST`` s get 503), every job
already accepted — in flight *and* queued — runs to completion, run
manifests are flushed to the run store, the pool and listener are torn
down, and the process exits 0.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from ..obs import to_prometheus
from .protocol import (
    CANCELLED,
    MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    Job,
    ProtocolError,
    validate_submit,
)
from .queue import JobQueue, QueueFull
from .worker import JobExecutor, ServiceStats

#: the default service port (override with --port / REPRO_SERVICE_URL)
DEFAULT_PORT = 8321

#: terminal jobs retained for `jobs list` / late result fetches
MAX_JOB_HISTORY = 1024

#: default / maximum client-controlled event-stream duration
DEFAULT_STREAM_TIMEOUT = 300.0
MAX_STREAM_TIMEOUT = 3600.0


class VerificationService:
    """Queue + executor + HTTP listener, wired together.

    Tests drive this in-process (``start(start_executor=False)`` lets
    them freeze the queue); :func:`serve` wraps it with signal-driven
    drain for the CLI.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        jobs: int | None = None,
        queue_size: int = 64,
        cache=None,
        task_timeout: float | None = None,
        task_retries: int = 2,
        runs_dir: str | None = None,
        save_runs: bool = False,
        max_body: int = MAX_BODY_BYTES,
        quiet: bool = True,
    ) -> None:
        self.stats = ServiceStats()
        self.queue = JobQueue(queue_size)
        self.executor = JobExecutor(
            self.queue,
            self.stats,
            jobs=jobs,
            cache=cache,
            task_timeout=task_timeout,
            task_retries=task_retries,
            runs_dir=runs_dir,
            save_runs=save_runs,
        )
        self.max_body = max_body
        self.quiet = quiet
        self.draining = threading.Event()
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = self  # type: ignore[attr-defined]
        self._http_thread: threading.Thread | None = None

    # -- addresses --------------------------------------------------------

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle --------------------------------------------------------

    def start(self, *, start_executor: bool = True) -> None:
        self._http_thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._http_thread.start()
        if start_executor:
            self.executor.start()

    def begin_drain(self) -> None:
        """Stop intake; safe to call from a signal handler."""
        self.draining.set()

    def drain(self) -> None:
        """Finish all accepted jobs, then tear everything down."""
        self.begin_drain()
        if self.executor.is_alive():
            self.executor.request_drain()
            self.executor.join()
        else:
            self.queue.close()
            self.executor._close_pool()
        self.httpd.shutdown()
        self.httpd.server_close()

    def stop(self) -> None:
        """Hard stop: finish only the in-flight job, drop the queue."""
        self.begin_drain()
        if self.executor.is_alive():
            self.executor.request_stop()
            self.executor.join()
        else:
            self.executor._close_pool()
        self.httpd.shutdown()
        self.httpd.server_close()

    # -- job plumbing -----------------------------------------------------

    def retry_after(self) -> int:
        """Seconds a rejected client should back off: the queue's
        expected drain time from recent job durations."""
        pending = len(self.queue) + self.stats.snapshot()["inflight"]
        avg = self.stats.avg_job_seconds() or 1.0
        return max(1, min(600, round(avg * max(1, pending))))

    def submit(self, payload, *, received: float | None = None) -> Job:
        if self.draining.is_set():
            raise ProtocolError("server is draining", status=503)
        if received is None:
            received = time.time()
        submission = validate_submit(payload)
        job = Job(submission)
        job.on_drop = self.stats.record_events_dropped
        job.note_submit_span(received)
        with self._jobs_lock:
            self._jobs[job.id] = job
            self._evict_locked()
        try:
            self.queue.put(job, retry_after=self.retry_after())
        except QueueFull:
            with self._jobs_lock:
                self._jobs.pop(job.id, None)
            self.stats.record_rejected()
            raise
        self.stats.record_submitted()
        return job

    def _evict_locked(self) -> None:
        if len(self._jobs) <= MAX_JOB_HISTORY:
            return
        for job_id, job in list(self._jobs.items()):
            if len(self._jobs) <= MAX_JOB_HISTORY:
                break
            if job.is_terminal:
                del self._jobs[job_id]

    def job(self, job_id: str) -> Job | None:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def list_jobs(self, limit: int = 100) -> list[dict]:
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        jobs.sort(key=lambda j: j.created, reverse=True)
        return [j.status() for j in jobs[:limit]]

    def cancel(self, job: Job) -> tuple[bool, str]:
        """Cancel a queued job; running/terminal jobs refuse."""
        if job.cancel_if_queued():
            self.stats.record_cancelled_queued()
            return True, "cancelled"
        if job.is_terminal:
            return False, f"job already {job.state}"
        return False, "job is running; in-flight jobs run to completion"

    def metrics_text(self) -> str:
        return to_prometheus(
            {}, service=self.stats.snapshot(queue_depth=len(self.queue))
        )


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-service/{__version__}"

    @property
    def service(self) -> VerificationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        if not self.service.quiet:
            sys.stderr.write(
                "%s - %s\n" % (self.address_string(), format % args)
            )

    # -- plumbing ---------------------------------------------------------

    def _send_json(self, status: int, payload: dict, **headers) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name.replace("_", "-"), str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, **headers) -> None:
        self._send_json(status, {"error": message}, **headers)

    def _read_body(self):
        length = self.headers.get("Content-Length")
        if length is None:
            raise ProtocolError("Content-Length required", status=411)
        try:
            length = int(length)
        except ValueError:
            raise ProtocolError("bad Content-Length", status=400) from None
        if length > self.service.max_body:
            raise ProtocolError(
                f"body exceeds {self.service.max_body} bytes", status=413
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError:
            raise ProtocolError("body is not valid JSON") from None

    def _job_or_404(self, job_id: str):
        job = self.service.job(job_id)
        if job is None:
            self._error(404, f"no such job {job_id!r}")
        return job

    # -- routing ----------------------------------------------------------

    def _route(self):
        parts = urlsplit(self.path)
        segments = [s for s in parts.path.split("/") if s]
        query = parse_qs(parts.query)
        return segments, query

    def do_GET(self) -> None:  # noqa: N802 - stdlib convention
        try:
            segments, query = self._route()
            if segments == ["healthz"]:
                return self._send_text(200, "ok\n", "text/plain")
            if segments == ["readyz"]:
                if self.service.draining.is_set():
                    return self._send_text(503, "draining\n", "text/plain")
                return self._send_text(200, "ready\n", "text/plain")
            if segments == ["metrics"]:
                return self._send_text(
                    200,
                    self.service.metrics_text(),
                    "text/plain; version=0.0.4",
                )
            if segments == ["v1", "jobs"]:
                limit = int(query.get("limit", ["100"])[0])
                return self._send_json(
                    200,
                    {
                        "v": PROTOCOL_VERSION,
                        "jobs": self.service.list_jobs(limit),
                    },
                )
            if len(segments) == 3 and segments[:2] == ["v1", "jobs"]:
                job = self._job_or_404(segments[2])
                if job is not None:
                    self._send_json(200, job.status())
                return
            if len(segments) == 4 and segments[:2] == ["v1", "jobs"]:
                job = self._job_or_404(segments[2])
                if job is None:
                    return
                if segments[3] == "result":
                    return self._serve_result(job)
                if segments[3] == "events":
                    return self._serve_events(job, query)
                if segments[3] == "spans":
                    return self._serve_spans(job)
            self._error(404, f"no route for GET {self.path}")
        except ProtocolError as exc:
            self._error(exc.status, str(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_POST(self) -> None:  # noqa: N802
        received = time.time()
        try:
            segments, _query = self._route()
            if segments != ["v1", "jobs"]:
                return self._error(404, f"no route for POST {self.path}")
            payload = self._read_body()
            try:
                job = self.service.submit(payload, received=received)
            except QueueFull as exc:
                return self._error(
                    429,
                    str(exc),
                    Retry_After=max(1, round(exc.retry_after)),
                )
            except ProtocolError as exc:
                headers = (
                    {"Retry_After": 5} if exc.status == 503 else {}
                )
                return self._error(exc.status, str(exc), **headers)
            self._send_json(
                202, job.status(), Location=f"/v1/jobs/{job.id}"
            )
        except ProtocolError as exc:
            self._error(exc.status, str(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_DELETE(self) -> None:  # noqa: N802
        try:
            segments, _query = self._route()
            if len(segments) == 3 and segments[:2] == ["v1", "jobs"]:
                job = self._job_or_404(segments[2])
                if job is None:
                    return
                ok, reason = self.service.cancel(job)
                status = job.status()
                status["cancelled"] = ok
                status["reason"] = reason
                return self._send_json(200 if ok else 409, status)
            self._error(404, f"no route for DELETE {self.path}")
        except (BrokenPipeError, ConnectionResetError):
            pass

    # -- bodies -----------------------------------------------------------

    def _serve_result(self, job) -> None:
        if job.payload is not None:
            return self._send_json(200, job.payload)
        if job.state == CANCELLED:
            return self._error(409, "job was cancelled")
        if job.error is not None:
            return self._send_json(
                500, {"error": job.error, "id": job.id, "state": job.state}
            )
        self._error(
            409, f"job {job.id} is {job.state}; result not ready"
        )

    def _serve_spans(self, job) -> None:
        self._send_json(
            200,
            {
                "v": PROTOCOL_VERSION,
                "id": job.id,
                "trace_id": job.trace_id,
                "state": job.state,
                "spans": list(job.spans),
                "dropped": job.spans_dropped,
            },
        )

    def _serve_events(self, job, query) -> None:
        try:
            since = int(query.get("since", ["0"])[0])
            timeout = float(
                query.get("timeout", [str(DEFAULT_STREAM_TIMEOUT)])[0]
            )
        except ValueError:
            raise ProtocolError("since/timeout must be numbers") from None
        timeout = min(max(0.0, timeout), MAX_STREAM_TIMEOUT)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        deadline = time.monotonic() + timeout
        cursor = since
        while True:
            events, cursor = job.events_since(cursor)
            for event in events:
                line = json.dumps(event, sort_keys=True) + "\n"
                self.wfile.write(line.encode())
            if events:
                self.wfile.flush()
            if job.is_terminal and not events:
                remaining, _ = job.events_since(cursor)
                if not remaining:
                    break
                continue
            remaining_time = deadline - time.monotonic()
            if remaining_time <= 0:
                break
            job.wait_event(cursor, min(0.5, remaining_time))


def _write_port_file(path: str, port: int) -> None:
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        handle.write(f"{port}\n")
    os.replace(tmp, path)


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    jobs: int | None = None,
    queue_size: int = 64,
    cache=None,
    task_timeout: float | None = None,
    task_retries: int = 2,
    runs_dir: str | None = None,
    save_runs: bool = False,
    port_file: str | None = None,
    quiet: bool = False,
    log=print,
) -> int:
    """Run the verification server until SIGTERM/SIGINT, then drain.

    Blocks the calling (main) thread.  Returns 0 after a clean drain:
    intake stopped, every accepted job finished, manifests flushed,
    pool and listener closed.  ``port=0`` binds an ephemeral port;
    ``port_file`` publishes whichever port was bound (written
    atomically, for scripts and the CI smoke leg).
    """
    service = VerificationService(
        host,
        port,
        jobs=jobs,
        queue_size=queue_size,
        cache=cache,
        task_timeout=task_timeout,
        task_retries=task_retries,
        runs_dir=runs_dir,
        save_runs=save_runs,
        quiet=quiet,
    )
    stop = threading.Event()

    def _signal(signum, _frame):
        service.begin_drain()  # readyz flips immediately
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _signal)
    service.start()
    if port_file:
        _write_port_file(port_file, service.port)
    log(
        f"repro-service v{__version__} listening on {service.url} "
        f"(jobs={service.executor.jobs}, queue={service.queue.capacity}, "
        f"cache={'off' if service.executor.cache is False else service.executor.cache.root})"
    )
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    log("draining: intake stopped, finishing accepted jobs ...")
    service.drain()
    snapshot = service.stats.snapshot()
    log(
        "drained cleanly: "
        f"{snapshot['jobs'].get('done', 0)} done, "
        f"{snapshot['jobs'].get('failed', 0)} failed, "
        f"{snapshot['jobs'].get('cancelled', 0)} cancelled, "
        f"{snapshot['cache_hits']} cache hits"
    )
    return 0
