"""The service executor: queued jobs onto one persistent worker pool.

One :class:`JobExecutor` thread owns exactly one persistent
:class:`~repro.core.parallel.PoolSupervisor` and drives every job
through :func:`repro.suite.run_suite` with it — the same engine, the
same pool, the same PR-3 crash/hang/retry semantics as a direct
``run_suite`` call, but with worker processes (and the result cache,
and every model registry) staying hot across requests.  A ``verify``
or ``litmus`` job is simply a one-task suite, so all three kinds share
one execution path and one cache.

Progress streaming rides the existing observer/trace layer: each job
runs under an :class:`~repro.obs.Observer` whose trace sink appends
records straight onto the job's event ring
(``suite_task_cached`` / ``suite_dispatch`` / ``suite_task_done`` /
``run_end`` ...), which ``GET /v1/jobs/<id>/events`` serves as NDJSON.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

from ..core.explorer import effective_jobs
from ..core.config import ExplorationOptions
from ..core.parallel import PoolSupervisor
from ..core.report import to_dict
from ..obs import Observer, TraceWriter
from ..obs.spans import SpanTracer
from ..suite import build_suite_manifest, run_suite
from ..suite.cache import ResultCache
from .protocol import CANCELLED, DONE, FAILED, RUNNING, Job


class ServiceStats:
    """Thread-safe counters behind ``/metrics`` and ``Retry-After``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started = time.time()
        self.submitted = 0
        self.rejected = 0
        self.jobs = {DONE: 0, FAILED: 0, CANCELLED: 0}
        self.cache_hits = 0
        self.executions = 0
        self.job_seconds = 0.0
        self.inflight = 0
        self.events_dropped = 0

    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_started(self) -> None:
        with self._lock:
            self.inflight += 1

    def record_finished(
        self,
        state: str,
        *,
        seconds: float = 0.0,
        cache_hits: int = 0,
        executions: int = 0,
    ) -> None:
        with self._lock:
            self.inflight = max(0, self.inflight - 1)
            self.jobs[state] = self.jobs.get(state, 0) + 1
            self.cache_hits += cache_hits
            self.executions += executions
            self.job_seconds += seconds

    def record_events_dropped(self, count: int) -> None:
        with self._lock:
            self.events_dropped += count

    def record_cancelled_queued(self) -> None:
        with self._lock:
            self.jobs[CANCELLED] = self.jobs.get(CANCELLED, 0) + 1

    def avg_job_seconds(self) -> float:
        with self._lock:
            finished = sum(self.jobs.values())
            return self.job_seconds / finished if finished else 0.0

    def snapshot(self, queue_depth: int = 0) -> dict:
        """The dict :func:`repro.obs.export.service_families` renders."""
        with self._lock:
            return {
                "jobs": dict(self.jobs),
                "queue_depth": queue_depth,
                "inflight": self.inflight,
                "submitted": self.submitted,
                "rejected": self.rejected,
                "cache_hits": self.cache_hits,
                "executions": self.executions,
                "events_dropped": self.events_dropped,
                "uptime_seconds": time.time() - self.started,
            }


class _JobEventSink:
    """A trace sink that appends records to a job's event ring.

    Plugged into a :class:`~repro.obs.TraceWriter`, so the exact
    records the JSONL trace layer would write to disk become the job's
    streamable progress events (minus the writer's own seq/ts stamps —
    the ring re-stamps with job-level sequence numbers).
    """

    def __init__(self, job: Job) -> None:
        self.job = job

    def write(self, record: dict) -> None:
        fields = {
            k: v for k, v in record.items() if k not in ("t", "seq", "ts")
        }
        self.job.add_event(record.get("t", "trace"), **fields)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class JobExecutor(threading.Thread):
    """The single thread that executes queued jobs, in order.

    One executor means jobs never compete for the pool: parallelism
    lives *inside* a job (``jobs`` worker processes exploring its
    subtrees), which is the right shape for a verification server —
    latency of the job at the head of the queue beats fairness games.
    """

    daemon = True

    def __init__(
        self,
        queue,
        stats: ServiceStats,
        *,
        jobs: int | None = None,
        cache=None,
        task_timeout: float | None = None,
        task_retries: int = 2,
        runs_dir: str | None = None,
        save_runs: bool = False,
    ) -> None:
        super().__init__(name="repro-service-executor")
        self.queue = queue
        self.stats = stats
        self.jobs = effective_jobs(ExplorationOptions(jobs=jobs))
        if cache is False:
            self.cache = False
        elif isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.task_timeout = task_timeout
        self.task_retries = task_retries
        self.runs_dir = runs_dir
        self.save_runs = save_runs
        self._supervisor: PoolSupervisor | None = None
        self._halt = threading.Event()
        self._drain = threading.Event()

    # -- lifecycle --------------------------------------------------------

    def request_drain(self) -> None:
        """Finish everything already accepted, then exit the loop."""
        self._drain.set()
        self.queue.close()

    def request_stop(self) -> None:
        """Exit as soon as the in-flight job (if any) completes."""
        self._halt.set()
        self.queue.close()

    def run(self) -> None:
        try:
            while not self._halt.is_set():
                job = self.queue.get(timeout=0.1)
                if job is None:
                    if self._drain.is_set() and self.queue.empty():
                        break
                    continue
                self._execute(job)
        finally:
            self._close_pool()

    def _close_pool(self) -> None:
        if self._supervisor is not None:
            self._supervisor.close()
            self._supervisor = None

    def _pool(self) -> PoolSupervisor | None:
        """The one persistent supervisor, created on first parallel
        job and kept warm until shutdown."""
        if self.jobs <= 1:
            return None
        if self._supervisor is None:
            self._supervisor = PoolSupervisor(
                multiprocessing.get_context(),
                processes=self.jobs,
                task_timeout=self.task_timeout,
                task_retries=self.task_retries,
                persistent=True,
            )
        return self._supervisor

    # -- execution --------------------------------------------------------

    def _execute(self, job: Job) -> None:
        if not job.transition(RUNNING):
            return  # cancelled while queued, between pop and start
        self.stats.record_started()
        started = time.perf_counter()
        writer = TraceWriter(_JobEventSink(job))
        # every finished span — the job span, suite-task spans, absorbed
        # worker spans — streams onto the event ring as a t="span" record
        tracer = SpanTracer(
            trace_id=job.trace_id,
            remote_parent=(
                job.span_context.get("span_id")
                if job.span_context is not None
                else None
            ),
            on_finish=lambda span: writer.emit("span", **span),
        )
        observer = Observer(trace=writer, tracer=tracer)
        try:
            timeout = (
                job.submission.task_timeout
                if job.submission.task_timeout is not None
                else self.task_timeout
            )
            with tracer.span(
                f"job:{job.submission.kind}", cat="job", job=job.id
            ):
                suite = run_suite(
                    job.submission.tasks,
                    jobs=self.jobs,
                    cache=self.cache,
                    task_timeout=timeout,
                    task_retries=self.task_retries,
                    observer=observer,
                    supervisor=self._pool(),
                )
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.spans.extend(tracer.snapshot())
            job.spans_dropped = tracer.dropped
            self.stats.record_finished(
                FAILED, seconds=time.perf_counter() - started
            )
            job.fail(f"{type(exc).__name__}: {exc}")
            return
        finally:
            observer.close()
        job.spans.extend(tracer.snapshot())
        job.spans_dropped = tracer.dropped
        payload = self._payload(job, suite)
        self._maybe_save_run(job, suite)
        self.stats.record_finished(
            DONE,
            seconds=time.perf_counter() - started,
            cache_hits=suite.cache_hits,
            executions=sum(t.result.executions for t in suite.tasks),
        )
        job.finish(payload)

    def _payload(self, job: Job, suite) -> dict:
        """The result document ``GET /v1/jobs/<id>/result`` serves."""
        kind = job.submission.kind
        payload: dict = {
            "kind": kind,
            "job": job.id,
            "elapsed": round(suite.elapsed, 6),
            "cache_hits": suite.cache_hits,
            "jobs": suite.jobs,
        }
        if kind == "suite":
            payload["manifest"] = build_suite_manifest(
                suite, command=f"service job {job.id}"
            )
            return payload
        task = suite.tasks[0]
        payload["cached"] = task.cached
        payload["result"] = to_dict(task.result)
        if task.verdict is not None:
            verdict = task.verdict
            payload["verdict"] = {
                "test": verdict.test,
                "model": verdict.model,
                "observed": verdict.observed,
                "executions": verdict.executions,
                "duplicates": verdict.duplicates,
                "elapsed": round(verdict.elapsed, 6),
            }
            payload["expected"] = task.expected
        return payload

    def _maybe_save_run(self, job: Job, suite) -> None:
        if not self.save_runs:
            return
        from ..obs import RunStore

        try:
            manifest = build_suite_manifest(
                suite, command=f"service job {job.id} ({job.submission.label})"
            )
            path = RunStore(self.runs_dir).save(manifest)
            job.add_event("run_saved", path=path)
        except OSError as exc:  # pragma: no cover - disk trouble
            job.add_event("run_save_failed", error=str(exc))
