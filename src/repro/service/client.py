"""A stdlib (urllib) client for the verification service.

>>> client = ServiceClient("http://127.0.0.1:8321")
>>> job = client.submit({"kind": "litmus", "test": "SB", "model": "tso"})
>>> result = client.wait(job["id"])
>>> result["verdict"]["observed"]
True

``wait`` rides the NDJSON event stream when it can (one long-poll
connection, live progress via the ``on_event`` callback) and falls
back to status polling if the stream drops.  Errors surface as
:class:`ServiceError` carrying the HTTP status — a 429 also carries
the server's ``Retry-After`` hint as ``retry_after``.
"""

from __future__ import annotations

import json
import os
import time

from datetime import timezone
from email.utils import parsedate_to_datetime
from urllib import error as urlerror
from urllib import request as urlrequest

#: environment override for the default service URL
SERVICE_URL_ENV = "REPRO_SERVICE_URL"

DEFAULT_URL = "http://127.0.0.1:8321"


def default_url() -> str:
    return os.environ.get(SERVICE_URL_ENV, DEFAULT_URL)


def _parse_retry_after(value: str | None) -> float | None:
    """RFC 7231 Retry-After: delta-seconds or an HTTP-date, both of
    which proxies are free to rewrite — anything unparseable degrades
    to None rather than raising mid-error-handling."""
    if not value:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        pass
    try:
        when = parsedate_to_datetime(value)
    except (TypeError, ValueError):
        return None
    if when is None:
        return None
    if when.tzinfo is None:
        when = when.replace(tzinfo=timezone.utc)
    return max(0.0, when.timestamp() - time.time())


class ServiceError(Exception):
    """An HTTP-level failure; ``status`` is the response code (0 when
    the server was unreachable)."""

    def __init__(
        self,
        message: str,
        status: int = 0,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ServiceClient:
    """Submit, watch and fetch verification jobs over HTTP."""

    def __init__(self, url: str | None = None, timeout: float = 30.0):
        self.url = (url or default_url()).rstrip("/")
        self.timeout = timeout

    # -- transport --------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        timeout: float | None = None,
    ):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urlrequest.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            return urlrequest.urlopen(
                req, timeout=timeout if timeout is not None else self.timeout
            )
        except urlerror.HTTPError as exc:
            raise self._service_error(exc) from None
        except urlerror.URLError as exc:
            raise ServiceError(
                f"service unreachable at {self.url}: {exc.reason}"
            ) from None

    @staticmethod
    def _service_error(exc: urlerror.HTTPError) -> ServiceError:
        try:
            message = json.loads(exc.read()).get("error", str(exc))
        except (ValueError, OSError):
            message = str(exc)
        return ServiceError(
            message,
            status=exc.code,
            retry_after=_parse_retry_after(exc.headers.get("Retry-After")),
        )

    def _json(self, method: str, path: str, body: dict | None = None):
        with self._request(method, path, body) as response:
            return json.loads(response.read())

    def _text(self, path: str) -> str:
        with self._request("GET", path) as response:
            return response.read().decode()

    # -- the API ----------------------------------------------------------

    def submit(self, payload: dict) -> dict:
        """POST a submit payload; returns the job status document."""
        return self._json("POST", "/v1/jobs", payload)

    def status(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The final result document (raises 409 until terminal)."""
        return self._json("GET", f"/v1/jobs/{job_id}/result")

    def spans(self, job_id: str) -> dict:
        """The job's trace spans document (``trace_id`` + finished
        spans; the full tree once the job is terminal)."""
        return self._json("GET", f"/v1/jobs/{job_id}/spans")

    def cancel(self, job_id: str) -> dict:
        return self._json("DELETE", f"/v1/jobs/{job_id}")

    def list_jobs(self, limit: int = 100) -> list[dict]:
        return self._json("GET", f"/v1/jobs?limit={limit}")["jobs"]

    def metrics(self) -> str:
        """The raw Prometheus exposition text."""
        return self._text("/metrics")

    def health(self) -> bool:
        try:
            return self._text("/healthz").strip() == "ok"
        except ServiceError:
            return False

    def ready(self) -> bool:
        """False while the server is draining (or down)."""
        try:
            return self._text("/readyz").strip() == "ready"
        except ServiceError:
            return False

    # -- watching ---------------------------------------------------------

    def stream(self, job_id: str, since: int = 0, timeout: float = 300.0):
        """Yield progress events as dicts (one NDJSON connection).

        The generator ends when the server closes the stream — at job
        completion or at the requested ``timeout``.
        """
        path = f"/v1/jobs/{job_id}/events?since={since}&timeout={timeout}"
        with self._request("GET", path, timeout=timeout + 10.0) as response:
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line)

    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll: float = 0.25,
        on_event=None,
    ) -> dict:
        """Block until the job is terminal; return the result document.

        Streams events (invoking ``on_event(event)`` per record) and
        falls back to polling if the stream breaks.  A failed job
        raises :class:`ServiceError` with the job's error; a cancelled
        one raises with status 409.
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        cursor = 0
        while True:
            remaining = 300.0
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceError(
                        f"timed out waiting for job {job_id}"
                    )
            try:
                for event in self.stream(
                    job_id, since=cursor, timeout=min(remaining, 300.0)
                ):
                    cursor = max(cursor, event.get("seq", cursor))
                    if on_event is not None:
                        on_event(event)
            except (ServiceError, OSError, ValueError):
                time.sleep(poll)  # stream broke; fall back to polling
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                break
        if status["state"] == "done":
            return self.result(job_id)
        if status["state"] == "failed":
            raise ServiceError(
                status.get("error") or f"job {job_id} failed", status=500
            )
        raise ServiceError(f"job {job_id} was cancelled", status=409)
